#include "exec/linearizability.h"

#include <algorithm>
#include <limits>
#include <map>
#include <sstream>
#include <unordered_map>

#include "common/interval.h"
#include "lht/lht_index.h"

namespace lht::exec {

namespace {

constexpr common::u64 kNeverReturned = std::numeric_limits<common::u64>::max();

/// One event of the register search, with values interned to indices.
/// State index 0 is "absent"; writes of "absent" model Remove.
struct Event {
  bool isWrite = false;
  bool droppable = false;  ///< failed write: may never have taken effect
  size_t writeState = 0;   ///< isWrite: the state the write installs
  size_t readState = 0;    ///< !isWrite: the state the read observed
  common::u64 invoke = 0;
  common::u64 ret = 0;  ///< kNeverReturned for failed writes
  size_t sourceIndex = 0;  ///< index into the caller's op vector
};

std::string describeOp(const OpRecord& op) {
  std::ostringstream os;
  switch (op.kind) {
    case OpKind::Put:
      os << "Put(" << op.dhtKey << " = "
         << (op.value ? *op.value : std::string("<none>")) << ")";
      break;
    case OpKind::Get:
      os << "Get(" << op.dhtKey << ") -> "
         << (op.value ? *op.value : std::string("<absent>"));
      break;
    case OpKind::Remove:
      os << "Remove(" << op.dhtKey << ")";
      break;
    default:
      os << "op#" << static_cast<int>(op.kind);
  }
  os << " [client " << op.clientId << ", t=" << op.invokeMs << ".."
     << (op.returnMs == kNeverReturned ? std::string("inf")
                                       : std::to_string(op.returnMs))
     << (op.ok ? "" : ", failed") << "]";
  return os.str();
}

/// Depth-first linearization search over <=64 events with memoization on
/// (linearized-mask, register state): the classic Wing & Gong check. The
/// mask alone does not determine the state because droppable writes may
/// or may not have applied, hence the pair.
class RegisterSearch {
 public:
  explicit RegisterSearch(std::vector<Event> events)
      : events_(std::move(events)) {}

  bool run() {
    const common::u64 full =
        events_.size() == 64 ? ~common::u64{0}
                             : ((common::u64{1} << events_.size()) - 1);
    return dfs(0, /*state=*/0, full);
  }

 private:
  bool dfs(common::u64 mask, size_t state, common::u64 full) {
    if (mask == full) return true;
    if (!visited_[mask].insert(state).second) return false;
    // An op is a legal next linearization point iff no other pending op
    // finished before it started.
    common::u64 minRet = kNeverReturned;
    for (size_t i = 0; i < events_.size(); ++i) {
      if ((mask >> i) & 1) continue;
      minRet = std::min(minRet, events_[i].ret);
    }
    for (size_t i = 0; i < events_.size(); ++i) {
      if ((mask >> i) & 1) continue;
      const Event& e = events_[i];
      if (e.invoke > minRet) continue;  // some pending op precedes it
      const common::u64 next = mask | (common::u64{1} << i);
      if (e.isWrite) {
        if (dfs(next, e.writeState, full)) return true;
        // A failed write may also have evaporated: linearize it as a no-op.
        if (e.droppable && dfs(next, state, full)) return true;
      } else {
        if (e.readState == state && dfs(next, state, full)) return true;
      }
    }
    return false;
  }

  std::vector<Event> events_;
  // mask -> register states already explored (and failed) at that mask.
  std::unordered_map<common::u64, std::set<size_t>> visited_;
};

}  // namespace

CheckResult checkLinearizableRegister(std::vector<OpRecord> ops,
                                      size_t maxOps) {
  maxOps = std::min<size_t>(maxOps, 64);
  // Interned register states; index 0 = absent.
  std::vector<std::string> states{"<absent>"};
  const auto intern = [&](const std::optional<std::string>& v) -> size_t {
    if (!v) return 0;
    for (size_t i = 1; i < states.size(); ++i) {
      if (states[i] == *v) return i;
    }
    states.push_back(*v);
    return states.size() - 1;
  };

  std::vector<Event> events;
  for (size_t i = 0; i < ops.size(); ++i) {
    const OpRecord& op = ops[i];
    if (!ops.empty() && op.dhtKey != ops.front().dhtKey) {
      return {false, "checkLinearizableRegister: mixed keys ('" +
                         ops.front().dhtKey + "' vs '" + op.dhtKey + "')"};
    }
    Event e;
    e.invoke = op.invokeMs;
    e.ret = op.ok ? op.returnMs : kNeverReturned;
    e.sourceIndex = i;
    switch (op.kind) {
      case OpKind::Put:
        e.isWrite = true;
        e.droppable = !op.ok;
        e.writeState = intern(op.value);
        break;
      case OpKind::Remove:
        e.isWrite = true;
        e.droppable = !op.ok;
        e.writeState = 0;  // removal installs "absent"
        break;
      case OpKind::Get:
        if (!op.ok) continue;  // failed read observed nothing
        e.readState = intern(op.value);
        break;
      default:
        return {false, "checkLinearizableRegister: non-register op " +
                           describeOp(op)};
    }
    events.push_back(e);
  }
  if (events.size() > maxOps) {
    return {false, "checkLinearizableRegister: " +
                       std::to_string(events.size()) + " ops on key '" +
                       (ops.empty() ? std::string() : ops.front().dhtKey) +
                       "' exceeds the checker cap of " +
                       std::to_string(maxOps) +
                       " — partition the workload, don't trust a truncated "
                       "check"};
  }
  if (RegisterSearch(events).run()) return {};
  std::ostringstream os;
  os << "history on key '" << (ops.empty() ? std::string() : ops.front().dhtKey)
     << "' is NOT linearizable; ops:";
  for (const auto& e : events) os << "\n  " << describeOp(ops[e.sourceIndex]);
  return {false, os.str()};
}

CheckResult checkSingleKeyHistories(const std::vector<OpRecord>& merged,
                                    size_t maxOpsPerKey) {
  std::map<std::string, std::vector<OpRecord>> byKey;
  for (const auto& op : merged) byKey[op.dhtKey].push_back(op);
  for (auto& [key, ops] : byKey) {
    CheckResult r = checkLinearizableRegister(std::move(ops), maxOpsPerKey);
    if (!r.ok) return r;
  }
  return {};
}

CheckResult checkGrowOnlySet(const std::vector<OpRecord>& merged) {
  // inserts[key] -> (invoke, return, ok) tuples; finds checked against them.
  struct InsertSpan {
    common::u64 invoke = 0;
    common::u64 ret = 0;
    bool ok = false;
  };
  std::map<double, std::vector<InsertSpan>> inserts;
  std::map<double, common::u64> earliestSeenReturn;
  for (const auto& op : merged) {
    switch (op.kind) {
      case OpKind::Insert:
        inserts[op.key].push_back({op.invokeMs, op.returnMs, op.ok});
        break;
      case OpKind::Find:
        if (op.ok && op.value) {
          auto [it, fresh] = earliestSeenReturn.emplace(op.key, op.returnMs);
          if (!fresh) it->second = std::min(it->second, op.returnMs);
        }
        break;
      case OpKind::Erase:
      case OpKind::Range:
        return {false,
                "checkGrowOnlySet: history contains erase/range ops — this "
                "checker covers insert/find workloads only"};
      default:
        return {false, "checkGrowOnlySet: unexpected DHT-level op " +
                           describeOp(op)};
    }
  }
  for (const auto& op : merged) {
    if (op.kind != OpKind::Find) continue;
    if (!op.ok) continue;  // the find threw: it observed nothing
    const auto it = inserts.find(op.key);
    if (op.ok && op.value) {
      // A found record needs a justifying insert that started before the
      // find finished (no reads from the future).
      bool justified = false;
      if (it != inserts.end()) {
        for (const auto& ins : it->second) {
          if (ins.invoke < op.returnMs) {
            justified = true;
            break;
          }
        }
      }
      if (!justified) {
        return {false, "checkGrowOnlySet: find observed key " +
                           std::to_string(op.key) +
                           " with no insert invoked before it returned "
                           "(client " +
                           std::to_string(op.clientId) + ", t=" +
                           std::to_string(op.invokeMs) + ")"};
      }
      continue;
    }
    // An absent result must not contradict grow-only visibility: any
    // insert that *completed* before the find began, or any other find
    // that already observed the key before this one began, makes absence
    // a monotonic-read violation.
    if (it != inserts.end()) {
      for (const auto& ins : it->second) {
        if (ins.ok && ins.ret < op.invokeMs) {
          return {false, "checkGrowOnlySet: find missed key " +
                             std::to_string(op.key) +
                             " although an insert completed at t=" +
                             std::to_string(ins.ret) +
                             " before the find began at t=" +
                             std::to_string(op.invokeMs)};
        }
      }
    }
    const auto seen = earliestSeenReturn.find(op.key);
    if (seen != earliestSeenReturn.end() && seen->second < op.invokeMs) {
      return {false, "checkGrowOnlySet: non-monotonic reads on key " +
                         std::to_string(op.key) +
                         " — observed present by t=" +
                         std::to_string(seen->second) +
                         " but absent to a find starting at t=" +
                         std::to_string(op.invokeMs)};
    }
  }
  return {};
}

std::set<double> definiteKeys(const std::vector<OpRecord>& merged) {
  std::set<double> out;
  for (const auto& op : merged) {
    if (op.kind == OpKind::Insert && op.ok) out.insert(op.key);
  }
  return out;
}

std::set<double> maybeKeys(const std::vector<OpRecord>& merged) {
  std::set<double> out;
  for (const auto& op : merged) {
    if (op.kind == OpKind::Insert && !op.ok) out.insert(op.key);
  }
  return out;
}

SplitScanResult scanAtomicSplits(core::LhtIndex& index,
                                 const std::set<double>& definite,
                                 const std::set<double>& maybe) {
  SplitScanResult result;
  struct LeafInfo {
    common::Interval iv;
    std::string label;
    bool clean = true;
  };
  std::vector<LeafInfo> leaves;
  std::set<double> scanned;
  index.forEachBucket([&](const core::LeafBucket& b) {
    leaves.push_back({b.label.interval(), b.label.str(), b.clean()});
    for (const auto& r : b.records) scanned.insert(r.key);
    result.records += b.records.size();
  });
  result.leaves = leaves.size();
  for (const auto& leaf : leaves) {
    if (!leaf.clean) {
      result.ok = false;
      result.explanation = "leaf " + leaf.label +
                           " still carries a split/merge intent (torn "
                           "structural change)";
      return result;
    }
  }
  std::sort(leaves.begin(), leaves.end(),
            [](const LeafInfo& a, const LeafInfo& b) {
              return a.iv.lo < b.iv.lo;
            });
  double cursor = 0.0;
  for (const auto& leaf : leaves) {
    if (leaf.iv.lo != cursor) {
      result.ok = false;
      result.explanation =
          "leaves do not tile [0,1): gap/overlap at " + std::to_string(cursor) +
          " (next leaf " + leaf.label + " starts at " +
          std::to_string(leaf.iv.lo) + ")";
      return result;
    }
    cursor = leaf.iv.hi;
  }
  if (cursor != 1.0) {
    result.ok = false;
    result.explanation =
        "leaves stop at " + std::to_string(cursor) + ", not 1.0";
    return result;
  }
  for (double k : definite) {
    if (scanned.count(k) == 0) {
      result.ok = false;
      result.explanation = "definite key " + std::to_string(k) +
                           " (insert acknowledged) missing after the run";
      return result;
    }
  }
  for (double k : scanned) {
    if (definite.count(k) == 0 && maybe.count(k) == 0) {
      result.ok = false;
      result.explanation = "stored key " + std::to_string(k) +
                           " was never inserted by any client";
      return result;
    }
  }
  return result;
}

}  // namespace lht::exec
