// Operation histories for concurrency checking (DESIGN.md §10).
//
// Each fleet client (or test thread) records one History: an append-only
// log of invoke/return intervals in *simulated* time plus the observed
// outcome. Histories are single-writer during the run and merged/read
// after the threads join, so no synchronization is needed on the append
// path — exactly the same ownership discipline as the per-thread obs
// registries.
//
// Two op vocabularies share the record type:
//  * raw DHT register ops (Put/Get/Remove on one DHT key) — checked by the
//    single-key linearizability checker;
//  * LHT index ops (Insert/Erase/Find/Range) — checked by the grow-only
//    set checker and the atomic-split scan.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace lht::exec {

enum class OpKind : common::u8 {
  // DHT register vocabulary
  Put = 0,
  Get = 1,
  Remove = 2,
  // LHT index vocabulary
  Insert = 10,
  Erase = 11,
  Find = 12,
  Range = 13,
};

struct OpRecord {
  OpKind kind = OpKind::Get;
  /// DHT key (register ops) — empty for index ops.
  std::string dhtKey;
  /// Index-op data key (or range lower bound).
  double key = 0.0;
  double hi = 0.0;  ///< range upper bound
  /// Invocation/response stamps from the process-wide monotonic tick
  /// (nextTick below). Per-client SimClocks advance independently, so
  /// simulated instants are NOT comparable across clients; the global
  /// tick captures true execution order, which is what linearizability's
  /// real-time precedence needs. (Per-op simulated latency lives in the
  /// obs histograms, not here.)
  common::u64 invokeMs = 0;
  common::u64 returnMs = 0;
  /// Whether the op returned successfully. A false write is
  /// *indeterminate*: it may or may not have taken effect (lost reply,
  /// crash) — the checkers treat it as "maybe applied", never "not
  /// applied".
  bool ok = false;
  /// Observed value: Get -> stored value (nullopt = absent); Find ->
  /// payload (nullopt = not found); Put -> the written value.
  std::optional<std::string> value;
  size_t clientId = 0;
};

/// Per-client append-only op log (single writer; read after join).
class History {
 public:
  explicit History(size_t clientId = 0) : clientId_(clientId) {}

  OpRecord& append(OpRecord r) {
    r.clientId = clientId_;
    ops_.push_back(std::move(r));
    return ops_.back();
  }

  [[nodiscard]] const std::vector<OpRecord>& ops() const { return ops_; }
  [[nodiscard]] size_t clientId() const { return clientId_; }
  [[nodiscard]] bool empty() const { return ops_.empty(); }
  [[nodiscard]] size_t size() const { return ops_.size(); }

 private:
  size_t clientId_;
  std::vector<OpRecord> ops_;
};

/// Concatenates several per-client histories (order irrelevant to the
/// checkers — they order by invoke/return times).
std::vector<OpRecord> mergeHistories(const std::vector<History>& histories);

/// Process-wide monotonic stamp (atomic increment): use for OpRecord
/// invoke/return so real-time precedence is meaningful across threads.
common::u64 nextTick();


}  // namespace lht::exec
