// ClientFleet — drives a workload trace through N concurrent LHT clients
// on a work-stealing pool (DESIGN.md §10).
//
// Each logical client owns the full per-client stack: a private SimClock,
// a caller-built decorator chain over the shared substrate, an LhtIndex
// handle (client 0 bootstraps the root leaf; the rest attach), a
// MetricsRegistry/Tracer pair, and an op History. The trace is partitioned
// round-robin across clients; each client executes its slice as a chain of
// chunked, self-resubmitting pool tasks, so per-client op order is
// preserved while different clients interleave freely across workers.
//
// Time: every chunk installs the client's SimClock as the thread's
// ambient clock (net::ThreadClockScope), so decorator latency charges and
// network RTTs advance only that client's simulated time. The fleet's
// elapsed simulated time is the MAX over client clocks — the critical
// path, the same rule ParallelRound applies to batched fan-out. Open-loop
// arrival paces each client by advancing its clock to the op's due time.
//
// Observability: per-chunk ScopedObservability routes all ambient metrics
// and spans to the client's private registry/tracer; at join the fleet
// merges every client's pair into one global registry and tracer
// (counters add, histograms merge bucket-wise, span ids are remapped).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec/history.h"
#include "exec/thread_pool.h"
#include "lht/lht_index.h"
#include "net/sim_clock.h"
#include "obs/obs.h"
#include "workload/trace.h"

namespace lht::exec {

/// The decorator chain a client talks through. `layers` own the chain
/// (inner layers first); `top` is the Dht handed to the client's index —
/// it may point into `layers` or directly at a shared substrate (then
/// `layers` may be empty). The fleet keeps the stack alive for the run.
struct ClientStack {
  std::vector<std::unique_ptr<dht::Dht>> layers;
  dht::Dht* top = nullptr;
};

/// Builds client `index`'s stack over the shared substrate. Runs on the
/// construction thread (not a pool worker), in client order. The clock is
/// the client's private SimClock — wire it into latency/retry decorators.
using StackFactory =
    std::function<ClientStack(size_t index, net::SimClock& clock)>;

struct FleetOptions {
  size_t clients = 2;
  /// Ops executed per scheduled task before resubmitting (the quantum of
  /// interleaving between clients on a worker).
  size_t chunkSize = 32;
  /// > 0: open-loop arrival — client op k becomes due at k*interarrival
  /// on the client's clock (the clock is advanced to the due time before
  /// the op). 0: closed loop, ops back-to-back.
  common::u64 openLoopInterarrivalMs = 0;
  /// Base index options; the fleet overrides clientSeed (base + index)
  /// per client. attachExisting=false lets client 0 bootstrap the root
  /// leaf (clients > 0 always attach); attachExisting=true attaches the
  /// whole fleet to a pre-existing index without touching it. Concurrent
  /// fleets with structural churn should set crashConsistentSplits.
  /// With leasedReads and no explicit leaseClock, each client's index is
  /// wired to that client's private SimClock so leases age with the
  /// client's own simulated time.
  core::LhtIndex::Options index;
  common::u64 clientSeedBase = 1000;
};

struct FleetResult {
  /// All clients' metrics merged (counters add, histograms bucket-wise).
  obs::MetricsRegistry metrics;
  /// All clients' spans on one timeline (ids remapped at merge).
  obs::Tracer trace;
  std::vector<History> histories;  ///< one per client, in client order
  /// Max over client clocks — simulated critical path of the run.
  common::u64 elapsedSimMs = 0;
  double elapsedWallMs = 0.0;
  size_t opsTotal = 0;
  size_t opsFailed = 0;  ///< ops that threw a DhtError (recorded ok=false)
  common::u64 steals = 0;
};

class ClientFleet {
 public:
  /// Eagerly constructs every client (stack, index, sinks) on the calling
  /// thread in index order: client 0 bootstraps the root leaf before any
  /// other client attaches.
  ClientFleet(StackFactory factory, FleetOptions options);
  ~ClientFleet();

  ClientFleet(const ClientFleet&) = delete;
  ClientFleet& operator=(const ClientFleet&) = delete;

  /// Partitions `trace` round-robin over the clients and runs it to
  /// completion on `pool`. DhtError-failures are recorded per-op
  /// (ok=false) and do not abort the run; any non-DhtError propagates.
  FleetResult run(const std::vector<workload::Operation>& trace,
                  WorkStealingPool& pool);

  [[nodiscard]] size_t clientCount() const { return clients_.size(); }
  /// The client's index handle (e.g. for a post-run repairSweep / scan).
  [[nodiscard]] core::LhtIndex& clientIndex(size_t i) {
    return *clients_[i]->index;
  }
  [[nodiscard]] net::SimClock& clientClock(size_t i) {
    return clients_[i]->clock;
  }

 private:
  struct Client {
    size_t id = 0;
    net::SimClock clock;
    ClientStack stack;
    std::unique_ptr<core::LhtIndex> index;
    obs::MetricsRegistry metrics;
    obs::Tracer tracer;
    History history{0};
    std::vector<workload::Operation> ops;
    size_t cursor = 0;
  };

  /// Executes up to chunkSize ops of client `c`, then resubmits itself
  /// while ops remain. Installs the client's clock and sinks for the
  /// chunk's duration.
  void runChunk(Client& c, WorkStealingPool& pool);
  /// Applies one operation to the client's index, appending to its
  /// history. Returns whether the op failed with a DhtError.
  bool runOp(Client& c, const workload::Operation& op);

  FleetOptions opts_;
  std::vector<std::unique_ptr<Client>> clients_;
};

}  // namespace lht::exec
