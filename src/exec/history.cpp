#include "exec/history.h"

#include <atomic>

namespace lht::exec {

std::vector<OpRecord> mergeHistories(const std::vector<History>& histories) {
  std::vector<OpRecord> out;
  size_t total = 0;
  for (const auto& h : histories) total += h.size();
  out.reserve(total);
  for (const auto& h : histories) {
    out.insert(out.end(), h.ops().begin(), h.ops().end());
  }
  return out;
}

common::u64 nextTick() {
  static std::atomic<common::u64> tick{0};
  return tick.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace lht::exec
