// RST — Range Search Tree baseline (Gao & Steenkiste [9]; paper Sec. 2).
//
// The extreme point of the query-vs-maintenance trade-off the paper argues
// against: RST replicates the *tree structural information to all peers*,
// so every client knows the full partition tree. Queries are as cheap as
// they can possibly get — exact match is one DHT-get straight to the right
// leaf, a range query issues all B leaf gets in one parallel step — but
// every structural change (leaf split or merge) must be broadcast to all N
// peers: "a single leaf splitting could lead to a broadcasting to all
// nodes, incurring extremely high bandwidth cost."
//
// The globally replicated structure is modelled as a client-side leaf set
// (every peer has an identical copy); each split/merge charges the
// broadcast: N maintenance DHT-lookups (one structure-update message per
// peer) on top of the data movement.
#pragma once

#include <set>

#include "common/label.h"
#include "dht/dht.h"
#include "index/ordered_index.h"
#include "lht/bucket.h"

namespace lht::rst {

class RstIndex final : public index::OrderedIndex {
 public:
  struct Options {
    common::u32 thetaSplit = 100;
    common::u32 maxDepth = 20;
    bool countLabelSlot = true;
    /// Number of peers the structure is replicated on: the per-split
    /// broadcast cost (the paper's scalability complaint).
    size_t peerCount = 32;
  };

  RstIndex(dht::Dht& dht, Options options);

  index::UpdateResult insert(const index::Record& record) override;
  index::UpdateResult erase(double key) override;
  index::FindResult find(double key) override;
  index::RangeResult rangeQuery(double lo, double hi) override;
  index::FindResult minRecord() override;
  index::FindResult maxRecord() override;
  [[nodiscard]] size_t recordCount() const override { return recordCount_; }

  /// Structure-update broadcast messages sent so far (N per split/merge).
  [[nodiscard]] common::u64 broadcasts() const { return broadcasts_; }

  /// The globally known leaf set (every peer holds this copy).
  [[nodiscard]] const std::set<common::Label>& leaves() const { return leaves_; }

 private:
  [[nodiscard]] const common::Label& leafCovering(double key) const;
  void chargeBroadcast();

  dht::Dht& dht_;
  Options opts_;
  std::set<common::Label> leaves_;  // the replicated structure
  size_t recordCount_ = 0;
  common::u64 broadcasts_ = 0;
};

}  // namespace lht::rst
