#include "rst/rst_index.h"

#include <algorithm>

#include "common/types.h"

namespace lht::rst {

using common::checkInvariant;
using common::Interval;
using common::Label;
using core::LeafBucket;

namespace {

LeafBucket decodeBucket(const dht::Value& v) {
  auto b = LeafBucket::deserialize(v);
  checkInvariant(b.has_value(), "RstIndex: corrupt bucket value in DHT");
  return std::move(*b);
}

}  // namespace

RstIndex::RstIndex(dht::Dht& dht, Options options) : dht_(dht), opts_(options) {
  checkInvariant(opts_.thetaSplit >= 2, "RstIndex: thetaSplit must be >= 2");
  if (opts_.maxDepth > Label::kMaxBits) opts_.maxDepth = Label::kMaxBits;
  checkInvariant(opts_.peerCount >= 1, "RstIndex: peerCount must be >= 1");
  leaves_.insert(Label::root());
  LeafBucket root{Label::root(), {}};
  dht_.storeDirect(root.label.str(), root.serialize());
}

const Label& RstIndex::leafCovering(double key) const {
  // The structure is replicated locally, so this costs no DHT traffic.
  // Leaves are disjoint and sorted in tree (DFS) order, in which the
  // covering leaf is the last one not greater than the key's deepest path.
  const double k = common::clampToUnit(key);
  const Label probe = Label::fromKey(k, opts_.maxDepth);
  auto it = leaves_.upper_bound(probe);
  checkInvariant(it != leaves_.begin(), "RstIndex: no leaf covers key");
  --it;
  checkInvariant(it->covers(k), "RstIndex: structure out of sync");
  return *it;
}

void RstIndex::chargeBroadcast() {
  // Every peer's replica of the tree structure must be updated.
  broadcasts_ += opts_.peerCount;
  meters_.maintenance.dhtLookups += opts_.peerCount;
}

index::UpdateResult RstIndex::insert(const index::Record& record) {
  checkInvariant(record.key >= 0.0 && record.key <= 1.0,
                 "RstIndex::insert: key outside [0,1]");
  const Label leaf = leafCovering(record.key);

  index::UpdateResult result;
  result.ok = true;

  std::optional<LeafBucket> splitOld;
  dht_.apply(leaf.str(), [&](std::optional<dht::Value>& v) {
    checkInvariant(v.has_value(), "RstIndex::insert: bucket vanished");
    LeafBucket b = decodeBucket(*v);
    b.records.push_back(record);
    if (b.effectiveSize(opts_.countLabelSlot) >= opts_.thetaSplit &&
        b.label.length() < opts_.maxDepth) {
      splitOld = std::move(b);
      v.reset();  // both children are re-keyed under their own labels
    } else {
      v = b.serialize();
    }
  });
  meters_.insertion.dhtLookups += 1;
  meters_.insertion.recordsMoved += 1;
  result.stats.dhtLookups += 1;
  result.stats.parallelSteps += 1;
  recordCount_ += 1;

  if (splitOld) {
    const Label oldLabel = splitOld->label;
    const Interval iv = oldLabel.interval();
    const double mid = 0.5 * (iv.lo + iv.hi);
    LeafBucket left{oldLabel.child(0), {}};
    LeafBucket right{oldLabel.child(1), {}};
    for (auto& r : splitOld->records) {
      (r.key < mid ? left : right).records.push_back(std::move(r));
    }
    dht_.put(left.label.str(), left.serialize());
    dht_.put(right.label.str(), right.serialize());
    meters_.maintenance.dhtLookups += 2;
    meters_.maintenance.recordsMoved += left.records.size() + right.records.size();
    meters_.maintenance.splits += 1;
    leaves_.erase(oldLabel);
    leaves_.insert(left.label);
    leaves_.insert(right.label);
    chargeBroadcast();  // every peer must learn the new structure
    result.splitOrMerged = true;
  }
  return result;
}

index::UpdateResult RstIndex::erase(double key) {
  checkInvariant(key >= 0.0 && key <= 1.0, "RstIndex::erase: key outside [0,1]");
  const Label leaf = leafCovering(key);
  index::UpdateResult result;
  size_t removed = 0;
  dht_.apply(leaf.str(), [&](std::optional<dht::Value>& v) {
    checkInvariant(v.has_value(), "RstIndex::erase: bucket vanished");
    LeafBucket b = decodeBucket(*v);
    auto it = std::remove_if(b.records.begin(), b.records.end(),
                             [&](const index::Record& r) { return r.key == key; });
    removed = static_cast<size_t>(b.records.end() - it);
    b.records.erase(it, b.records.end());
    v = b.serialize();
  });
  meters_.insertion.dhtLookups += 1;
  result.stats.dhtLookups += 1;
  result.stats.parallelSteps += 1;
  recordCount_ -= removed;
  result.ok = removed > 0;
  return result;
}

index::FindResult RstIndex::find(double key) {
  checkInvariant(key >= 0.0 && key <= 1.0, "RstIndex::find: key outside [0,1]");
  index::FindResult result;
  // One-hop exact match: the replicated structure names the leaf directly.
  const Label leaf = leafCovering(key);
  result.stats.dhtLookups = 1;
  result.stats.parallelSteps = 1;
  auto v = dht_.get(leaf.str());
  if (v) {
    result.stats.bucketsTouched = 1;
    for (const auto& r : decodeBucket(*v).records) {
      if (r.key == key) {
        result.record = r;
        break;
      }
    }
  }
  meters_.query.dhtLookups += result.stats.dhtLookups;
  return result;
}

index::RangeResult RstIndex::rangeQuery(double lo, double hi) {
  index::RangeResult result;
  if (hi <= lo) return result;
  checkInvariant(lo >= 0.0 && hi <= 1.0, "RstIndex::rangeQuery: bad bounds");
  const Interval range{lo, hi};
  // The client knows every overlapping leaf; all gets go out in parallel.
  for (const auto& leaf : leaves_) {
    if (!leaf.interval().overlaps(range)) continue;
    result.stats.dhtLookups += 1;
    auto v = dht_.get(leaf.str());
    if (!v) continue;
    result.stats.bucketsTouched += 1;
    for (auto& r : decodeBucket(*v).records) {
      if (range.contains(r.key)) result.records.push_back(std::move(r));
    }
  }
  result.stats.parallelSteps = result.stats.dhtLookups == 0 ? 0 : 1;
  meters_.query.dhtLookups += result.stats.dhtLookups;
  std::sort(result.records.begin(), result.records.end(), index::recordLess);
  return result;
}

index::FindResult RstIndex::minRecord() {
  index::FindResult result;
  // Walk the known leaves left to right until one holds a record.
  for (const auto& leaf : leaves_) {
    result.stats.dhtLookups += 1;
    auto v = dht_.get(leaf.str());
    if (!v) continue;
    const LeafBucket b = decodeBucket(*v);
    const index::Record* best = nullptr;
    for (const auto& r : b.records) {
      if (best == nullptr || r.key < best->key) best = &r;
    }
    if (best != nullptr) {
      result.record = *best;
      break;
    }
  }
  result.stats.parallelSteps = result.stats.dhtLookups;
  meters_.query.dhtLookups += result.stats.dhtLookups;
  return result;
}

index::FindResult RstIndex::maxRecord() {
  index::FindResult result;
  for (auto it = leaves_.rbegin(); it != leaves_.rend(); ++it) {
    result.stats.dhtLookups += 1;
    auto v = dht_.get(it->str());
    if (!v) continue;
    const LeafBucket b = decodeBucket(*v);
    const index::Record* best = nullptr;
    for (const auto& r : b.records) {
      if (best == nullptr || r.key > best->key) best = &r;
    }
    if (best != nullptr) {
      result.record = *best;
      break;
    }
  }
  result.stats.parallelSteps = result.stats.dhtLookups;
  meters_.query.dhtLookups += result.stats.dhtLookups;
  return result;
}

}  // namespace lht::rst
