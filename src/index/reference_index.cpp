#include "index/reference_index.h"

namespace lht::index {

UpdateResult ReferenceIndex::insert(const Record& record) {
  store_.emplace(record.key, record.payload);
  return {true, {}, false};
}

UpdateResult ReferenceIndex::erase(double key) {
  return {store_.erase(key) > 0, {}, false};
}

FindResult ReferenceIndex::find(double key) {
  auto it = store_.find(key);
  if (it == store_.end()) return {std::nullopt, {}};
  return {Record{it->first, it->second}, {}};
}

RangeResult ReferenceIndex::rangeQuery(double lo, double hi) {
  RangeResult out;
  for (auto it = store_.lower_bound(lo); it != store_.end() && it->first < hi; ++it) {
    out.records.push_back(Record{it->first, it->second});
  }
  return out;
}

FindResult ReferenceIndex::minRecord() {
  if (store_.empty()) return {std::nullopt, {}};
  auto it = store_.begin();
  return {Record{it->first, it->second}, {}};
}

FindResult ReferenceIndex::maxRecord() {
  if (store_.empty()) return {std::nullopt, {}};
  auto it = std::prev(store_.end());
  return {Record{it->first, it->second}, {}};
}

}  // namespace lht::index
