// In-memory oracle index used by tests: a plain ordered multimap with the
// same interface as the distributed indexes. Every distributed query result
// is checked against this ground truth.
#pragma once

#include <map>

#include "index/ordered_index.h"

namespace lht::index {

class ReferenceIndex final : public OrderedIndex {
 public:
  UpdateResult insert(const Record& record) override;
  UpdateResult erase(double key) override;
  FindResult find(double key) override;
  RangeResult rangeQuery(double lo, double hi) override;
  FindResult minRecord() override;
  FindResult maxRecord() override;
  [[nodiscard]] size_t recordCount() const override { return store_.size(); }

 private:
  std::multimap<double, std::string> store_;
};

}  // namespace lht::index
