// The public interface shared by every distributed ordered index in this
// library (LHT, the PHT baseline, the DST baseline, and the local oracle).
//
// All operations return the records they touched plus OpStats — the
// bandwidth (DHT-lookups) and latency (parallel steps) of that single
// operation — while cumulative category meters accumulate in meters().
#pragma once

#include <optional>
#include <vector>

#include "cost/meter.h"
#include "index/record.h"

namespace lht::index {

/// Result of a find / min / max: the record (if any) plus operation stats.
struct FindResult {
  std::optional<Record> record;
  cost::OpStats stats;
};

/// Result of a range query: all matching records plus operation stats.
struct RangeResult {
  std::vector<Record> records;
  cost::OpStats stats;
};

/// Result of an insert or erase.
struct UpdateResult {
  bool ok = false;        ///< insert: always true; erase: whether found
  cost::OpStats stats;    ///< cost of locating + shipping (not maintenance)
  bool splitOrMerged = false;  ///< whether a structural adjustment happened
};

class OrderedIndex {
 public:
  virtual ~OrderedIndex() = default;

  /// Inserts a record. May trigger at most one leaf split (paper Sec. 5).
  virtual UpdateResult insert(const Record& record) = 0;

  /// Removes all records with exactly this key. May trigger a merge.
  virtual UpdateResult erase(double key) = 0;

  /// Exact-match query: any record with exactly this key.
  virtual FindResult find(double key) = 0;

  /// All records with key in [lo, hi).
  virtual RangeResult rangeQuery(double lo, double hi) = 0;

  /// The record with the smallest / largest key.
  virtual FindResult minRecord() = 0;
  virtual FindResult maxRecord() = 0;

  /// Total records currently indexed.
  [[nodiscard]] virtual size_t recordCount() const = 0;

  /// Cumulative cost meters (insertion / maintenance / query categories).
  [[nodiscard]] const cost::MeterSet& meters() const { return meters_; }
  void resetMeters() { meters_.reset(); }

 protected:
  cost::MeterSet meters_;
};

}  // namespace lht::index
