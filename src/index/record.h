// The data model (paper Sec. 3.1): a record is a data unit identified by a
// distinct numeric data key in [0, 1]; the payload stands for the rest of
// the tuple.
#pragma once

#include <compare>
#include <string>

namespace lht::index {

struct Record {
  double key = 0.0;
  std::string payload;

  friend bool operator==(const Record&, const Record&) = default;
};

/// Orders records by key (ties by payload so sorting is total).
inline bool recordLess(const Record& a, const Record& b) {
  if (a.key != b.key) return a.key < b.key;
  return a.payload < b.payload;
}

}  // namespace lht::index
