// Anti-entropy repair scheduler: drives the system back to full
// replication and a structurally converged index after churn, in bounded
// slices instead of one stop-the-world pass.
//
// Each tick() runs (a) one ChordDht::repairStep slice — excising crashed
// peers on the first slice after a storm, then at most dhtKeysPerTick
// replica fix-ups — and (b) one LhtIndex::repairSweepStep slice of at
// most indexBucketsPerTick leaves, completing any half-finished
// split/merge in its path. The scheduler owns the sweep cursor, so the
// index pass resumes where the previous tick stopped; noteChurn()
// restarts it (new damage may sit behind the cursor).
//
// Convergence = the DHT reports zero replica deficit with no crashes
// pending AND the index sweep has completed a full [0,1) pass since the
// last churn notification. Progress is mirrored into the ambient obs
// registry: counters "repair.ticks" / "repair.dht_actions" /
// "repair.index_repairs", gauge "repair.replica_deficit".
#pragma once

#include "dht/chord.h"
#include "lht/lht_index.h"

namespace lht::sim {

struct RepairSchedulerConfig {
  /// Max replica fix-ups (push/drop) applied per tick on the DHT.
  size_t dhtKeysPerTick = 64;
  /// Max leaf buckets the index sweep visits per tick (0: no index pass).
  size_t indexBucketsPerTick = 8;
  /// Runaway guard for runToConvergence().
  size_t maxTicks = 1u << 16;
};

/// Cumulative work done by the scheduler (since construction).
struct RepairProgress {
  size_t ticks = 0;
  size_t dhtActions = 0;    ///< replica fix-ups applied by repairStep
  size_t indexRepairs = 0;  ///< split/merge intents completed by the sweep
  size_t sweepPasses = 0;   ///< full [0,1) index passes completed
};

class RepairScheduler {
 public:
  /// `index` may be null: DHT-only repair (no LHT client on this node).
  RepairScheduler(dht::ChordDht& dht, core::LhtIndex* index,
                  RepairSchedulerConfig config);

  /// One bounded repair slice; returns the work units done (DHT fix-ups +
  /// index repairs, plus 1 while the sweep is still walking). Zero means
  /// the tick found nothing to do — converged() is then true.
  size_t tick();

  /// Call after churn events land: restarts the index sweep pass (the
  /// DHT side needs no nudge — repairStep rescans on every tick).
  void noteChurn();

  [[nodiscard]] bool converged() const;

  /// Ticks until converged (or maxTicks, which trips an invariant).
  /// Returns the ticks spent in this call.
  size_t runToConvergence();

  [[nodiscard]] const RepairProgress& progress() const { return progress_; }
  [[nodiscard]] double sweepCursor() const { return sweepCursor_; }

 private:
  dht::ChordDht& dht_;
  core::LhtIndex* index_;
  RepairSchedulerConfig cfg_;
  RepairProgress progress_;
  double sweepCursor_ = 0.0;
  bool sweepDone_ = false;
};

}  // namespace lht::sim
