#include "sim/skew_campaign.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "common/random.h"
#include "dht/chord.h"
#include "dht/decorators.h"
#include "exec/client_fleet.h"
#include "exec/history.h"
#include "exec/linearizability.h"
#include "exec/thread_pool.h"
#include "lht/lht_index.h"
#include "net/sim_network.h"
#include "obs/load.h"
#include "sim/repair_scheduler.h"
#include "workload/generators.h"
#include "workload/trace.h"

namespace lht::sim {

namespace {

/// Race-heavy trace for the lease linearizability campaign. Unlike
/// makeSkewedTrace (whose finds only target preloaded cell centers), a
/// third of the finds here target keys THIS trace inserted earlier —
/// executed by a different client, often concurrently — so a lease-served
/// snapshot that is older than a completed insert's epoch would return
/// "absent" for a definite key and fail the grow-only checker.
/// `genSeed` fixes the zipf cell permutation (shared across phases, so
/// both hammer the same hot leaves); `mixSeed` varies the op mix.
std::vector<workload::Operation> makeLeaseRaceTrace(
    const workload::SkewConfig& skew, size_t ops, common::u64 genSeed,
    common::u64 mixSeed, const std::string& tag) {
  common::Pcg32 rng(mixSeed, /*stream=*/0x11cdu);
  workload::SkewedKeyGenerator gen(skew, genSeed);
  const double cellWidth = 1.0 / static_cast<double>(gen.config().universe);
  std::vector<workload::Operation> out;
  out.reserve(ops);
  std::vector<double> inserted;
  for (size_t i = 0; i < ops; ++i) {
    workload::Operation op;
    const double center = gen.next();
    const double pick = rng.nextDouble();
    if (pick < 0.30 || inserted.empty()) {
      op.kind = workload::Operation::Kind::Insert;
      double k = center + (rng.nextDouble() - 0.5) * cellWidth * 0.98;
      if (k == center) k += cellWidth * 0.25;
      op.key = std::min(std::max(k, 0.0), 1.0);
      op.payload = tag + std::to_string(i);
      inserted.push_back(op.key);
    } else if (pick < 0.65) {
      op.kind = workload::Operation::Kind::Find;
      op.key = inserted[rng.below(static_cast<common::u32>(inserted.size()))];
    } else {
      op.kind = workload::Operation::Kind::Find;
      op.key = center;  // preloaded cell center — always a hit
    }
    out.push_back(std::move(op));
  }
  return out;
}

}  // namespace

SkewReport runSkewCampaign(const SkewCampaignConfig& cfg) {
  common::checkInvariant(cfg.seeds >= 1 && cfg.opsPerSeed >= 1,
                         "SkewCampaign: empty workload");
  common::checkInvariant(cfg.skew.universe >= 1,
                         "SkewCampaign: empty key universe");
  SkewReport rep;
  rep.seeds = cfg.seeds;
  exec::WorkStealingPool pool(4);
  double maxOverMeanSum = 0.0;
  double p99Sum = 0.0;

  for (size_t s = 0; s < cfg.seeds; ++s) {
    const common::u64 seed = cfg.baseSeed + s;
    net::SimNetwork net;
    net::SimClock simClock;
    net.attachClock(&simClock, /*perHopLatencyMs=*/1);

    dht::ChordDht::Options co;
    co.initialPeers = cfg.peers;
    co.seed = seed;
    co.replication = cfg.replication;
    co.virtualNodes = cfg.virtualNodes;
    dht::ChordDht chord(net, co);

    auto indexOptions = [&](common::u64 clientSeed, bool attach,
                            bool featured) {
      core::LhtIndex::Options io;
      io.thetaSplit = cfg.thetaSplit;
      io.maxDepth = cfg.maxDepth;
      io.useLeafCache = true;
      io.cacheDecodedBuckets = true;
      io.attachExisting = attach;
      io.clientSeed = clientSeed;
      if (featured) {
        io.crashConsistentSplits = true;  // concurrent structural churn
        io.leasedReads = cfg.leasedReads;
        io.leaseTtlMs = cfg.leaseTtlMs;
        io.adaptiveSplits = cfg.adaptiveSplits;
        io.hotLeafReads = cfg.hotLeafReads;
        io.hotSplitDivisor = cfg.hotSplitDivisor;
      }
      return io;
    };

    // Preload one record per cell. makeSkewedTrace aims its finds at cell
    // centers, so the hot-leaf read traffic hits real records, and the
    // preload doubles as the oracle.
    core::LhtIndex loader(chord, indexOptions(seed * 131, false, false));
    std::vector<index::Record> oracle;
    oracle.reserve(cfg.skew.universe);
    for (common::u32 cell = 0; cell < cfg.skew.universe; ++cell) {
      index::Record r;
      r.key = (static_cast<double>(cell) + 0.5) /
              static_cast<double>(cfg.skew.universe);
      r.payload = "cell-" + std::to_string(cell);
      loader.insert(r);
      oracle.push_back(std::move(r));
    }

    const auto trace =
        workload::makeSkewedTrace(cfg.opsPerSeed, cfg.skew, cfg.mix,
                                  /*seed=*/seed * 7919);

    exec::FleetOptions fo;
    fo.clients = cfg.clients;
    fo.chunkSize = 16;
    fo.clientSeedBase = seed * 10'000;
    fo.index = indexOptions(/*unused: per-client override*/ 1, true, true);
    exec::ClientFleet fleet(
        [&](size_t i, net::SimClock& clock) {
          exec::ClientStack stack;
          auto latency = std::make_unique<dht::LatencyDht>(
              chord, clock,
              dht::LatencyDht::Options{
                  .baseMs = 2, .jitterMs = 1, .seed = seed * 31 + i});
          stack.top = latency.get();
          stack.layers.push_back(std::move(latency));
          return stack;
        },
        fo);

    // Only the measured trace counts toward the load vector.
    chord.resetReadLoad();
    exec::FleetResult result = fleet.run(trace, pool);
    rep.opsTotal += result.opsTotal;
    rep.opsFailed += result.opsFailed;
    if (result.opsFailed != 0) {
      rep.failures.push_back("seed " + std::to_string(seed) + ": " +
                             std::to_string(result.opsFailed) +
                             " ops failed with no faults injected");
    }
    rep.leaseGrants += static_cast<common::u64>(
        result.metrics.counterValue("dht.lease.grants"));
    rep.leaseReads += static_cast<common::u64>(
        result.metrics.counterValue("dht.lease.reads"));
    rep.leaseStale += static_cast<common::u64>(
        result.metrics.counterValue("dht.lease.stale"));
    rep.leaseExpired += static_cast<common::u64>(
        result.metrics.counterValue("dht.lease.expired"));
    rep.leaseDrops += static_cast<common::u64>(
        result.metrics.counterValue("dht.lease.drops"));
    rep.splits += static_cast<common::u64>(
        result.metrics.counterValue("lht.cost.maintenance.splits"));

    const obs::LoadSummary load = obs::summarizeLoad(chord.readLoadByPeer());
    rep.readsTotal += load.total;
    rep.readsMaxSum += load.max;
    maxOverMeanSum += load.maxOverMean;
    p99Sum += load.p99;
    rep.maxOverMeanWorst = std::max(rep.maxOverMeanWorst, load.maxOverMean);

    // The balancing features must not cost correctness: every preloaded
    // record is still reachable and intact through a fresh plain client.
    core::LhtIndex verifier(chord, indexOptions(seed * 4099, true, false));
    for (const index::Record& r : oracle) {
      auto found = verifier.find(r.key);
      if (!found.record.has_value() || found.record->payload != r.payload) {
        rep.failures.push_back("seed " + std::to_string(seed) +
                               ": record at key " + std::to_string(r.key) +
                               (found.record.has_value() ? " corrupted"
                                                         : " missing"));
        break;  // one example per seed keeps the report readable
      }
    }
  }

  rep.maxOverMeanAvg = maxOverMeanSum / static_cast<double>(cfg.seeds);
  rep.p99Avg = p99Sum / static_cast<double>(cfg.seeds);
  rep.effectiveParallelism =
      rep.readsMaxSum == 0
          ? 0.0
          : static_cast<double>(rep.readsTotal) /
                static_cast<double>(rep.readsMaxSum);
  if (cfg.leasedReads && cfg.replication >= 2 && rep.leaseReads == 0) {
    rep.failures.push_back(
        "lease reads never exercised despite leasedReads=on");
  }
  return rep;
}

LeaseLinReport runLeaseLinCampaign(const LeaseLinConfig& cfg) {
  common::checkInvariant(cfg.replication >= 2,
                         "LeaseLinCampaign: replication >= 2 required "
                         "(crashes would lose data)");
  common::checkInvariant(cfg.seeds >= 1 && cfg.opsPerPhase >= 1,
                         "LeaseLinCampaign: empty workload");
  LeaseLinReport rep;
  rep.seeds = cfg.seeds;
  exec::WorkStealingPool pool(4);

  for (size_t s = 0; s < cfg.seeds; ++s) {
    const common::u64 seed = cfg.baseSeed + s;
    net::SimNetwork net;
    net::SimClock simClock;
    net.attachClock(&simClock, /*perHopLatencyMs=*/1);

    dht::ChordDht::Options co;
    co.initialPeers = cfg.peers;
    co.seed = seed;
    co.replication = cfg.replication;
    dht::ChordDht chord(net, co);

    auto indexOptions = [&](common::u64 clientSeed, bool attach,
                            bool featured) {
      core::LhtIndex::Options io;
      io.thetaSplit = cfg.thetaSplit;
      io.maxDepth = cfg.maxDepth;
      io.useLeafCache = true;
      io.cacheDecodedBuckets = true;
      io.attachExisting = attach;
      io.clientSeed = clientSeed;
      if (featured) {
        io.crashConsistentSplits = true;
        io.leasedReads = true;
        io.leaseTtlMs = cfg.leaseTtlMs;
        io.adaptiveSplits = true;
        io.hotLeafReads = cfg.hotLeafReads;
        io.hotSplitDivisor = cfg.hotSplitDivisor;
      }
      return io;
    };

    // Preload one record per cell, and synthesize its insert records into
    // a history of their own: the grow-only checker rejects a find that
    // returns a record no logged insert accounts for, so the preload must
    // be part of the checked history (its ticks precede every fleet op —
    // real-time order is preserved).
    core::LhtIndex loader(chord, indexOptions(seed * 131, false, false));
    exec::History preloadHist(/*clientId=*/cfg.clients);
    std::vector<index::Record> oracle;
    oracle.reserve(cfg.skew.universe);
    for (common::u32 cell = 0; cell < cfg.skew.universe; ++cell) {
      index::Record r;
      r.key = (static_cast<double>(cell) + 0.5) /
              static_cast<double>(cfg.skew.universe);
      r.payload = "cell-" + std::to_string(cell);
      exec::OpRecord pr;
      pr.kind = exec::OpKind::Insert;
      pr.key = r.key;
      pr.value = r.payload;
      pr.invokeMs = exec::nextTick();
      loader.insert(r);
      pr.returnMs = exec::nextTick();
      pr.ok = true;
      preloadHist.append(std::move(pr));
      oracle.push_back(std::move(r));
    }

    const common::u64 genSeed = seed ^ 0x5EEDull;
    const std::string tag = std::to_string(seed);
    const auto traceA = makeLeaseRaceTrace(cfg.skew, cfg.opsPerPhase, genSeed,
                                           seed * 7919 + 1, "ra" + tag + "-");
    const auto traceB = makeLeaseRaceTrace(cfg.skew, cfg.opsPerPhase, genSeed,
                                           seed * 7919 + 2, "rb" + tag + "-");

    exec::FleetOptions fo;
    fo.clients = cfg.clients;
    fo.chunkSize = 8;
    fo.clientSeedBase = seed * 10'000;
    fo.index = indexOptions(/*unused: per-client override*/ 1, true, true);
    exec::ClientFleet fleet(
        [&](size_t i, net::SimClock& clock) {
          exec::ClientStack stack;
          auto latency = std::make_unique<dht::LatencyDht>(
              chord, clock,
              dht::LatencyDht::Options{
                  .baseMs = 2, .jitterMs = 1, .seed = seed * 31 + i});
          // Failover keeps primary reads answerable while the crashed
          // holder is dark; it forwards getReplica untouched, so lease
          // reads still see the dead peer and must drop the lease.
          dht::FailoverDht::Options fopts;
          fopts.failover = true;
          fopts.hedging = false;
          auto failover =
              std::make_unique<dht::FailoverDht>(*latency, clock, fopts);
          stack.top = failover.get();
          stack.layers.push_back(std::move(latency));
          stack.layers.push_back(std::move(failover));
          return stack;
        },
        fo);

    // Phase A: warm the tree, the adaptive splits, and the leases.
    exec::FleetResult resultA = fleet.run(traceA, pool);
    rep.opsTotal += resultA.opsTotal;

    // Crash a replica holder of the hottest leaf while phase-A leases on
    // it are live. With virtualNodes=1 the leaf's replica holders are
    // exactly the next replication-1 ring nodes after its owner.
    if (cfg.crashReplica && chord.peerCount() > 2) {
      workload::SkewedKeyGenerator gen(cfg.skew, genSeed);
      core::LhtIndex hotProbe(chord, indexOptions(seed * 677, true, false));
      const std::string hotLeaf = hotProbe.lookup(gen.keyOfRank(1)).dhtKey;
      const common::u64 ownerId = chord.ownerOf(hotLeaf);
      const auto ids = chord.nodeIds();
      auto it = std::upper_bound(ids.begin(), ids.end(), ownerId);
      for (size_t probe = 0; probe + 1 < ids.size(); ++probe) {
        if (it == ids.end()) it = ids.begin();
        const common::u64 victim = *it;
        ++it;
        if (victim == ownerId) continue;
        if (chord.crashWouldLoseData(victim)) continue;
        chord.crash(victim);
        rep.crashes += 1;
        break;
      }
    }

    // Phase B through the SAME fleet: live leases race the dark holder.
    // Post-crash write failures (dark owners) are expected and recorded
    // ok=false — the checkers treat them as maybe-applied.
    exec::FleetResult resultB = fleet.run(traceB, pool);
    rep.opsTotal += resultB.opsTotal;
    // Per-client metrics and histories accumulate across runs, so the
    // phase-B result already covers phase A.
    rep.opsFailed += resultB.opsFailed;
    rep.leaseGrants += static_cast<common::u64>(
        resultB.metrics.counterValue("dht.lease.grants"));
    rep.leaseReads += static_cast<common::u64>(
        resultB.metrics.counterValue("dht.lease.reads"));
    rep.leaseStale += static_cast<common::u64>(
        resultB.metrics.counterValue("dht.lease.stale"));
    rep.leaseExpired += static_cast<common::u64>(
        resultB.metrics.counterValue("dht.lease.expired"));
    rep.leaseDrops += static_cast<common::u64>(
        resultB.metrics.counterValue("dht.lease.drops"));

    // Repair to convergence: excise the dark peer, re-push replicas,
    // complete any split/merge the crash window aborted.
    core::LhtIndex repairClient(chord, indexOptions(seed * 977, true, false));
    RepairSchedulerConfig rc;
    RepairScheduler sched(chord, &repairClient, rc);
    sched.noteChurn();
    rep.repairTicks += sched.runToConvergence();
    if (!chord.checkReplication()) {
      rep.failures.push_back("seed " + std::to_string(seed) +
                             ": checkReplication failed post-repair");
    }
    if (chord.lostKeys() != 0) {
      rep.failures.push_back("seed " + std::to_string(seed) + ": " +
                             std::to_string(chord.lostKeys()) +
                             " keys lost despite crash spacing");
    }

    // Safety: merged histories (preload + both phases) must be a valid
    // grow-only set under real-time precedence — a lease read that served
    // a snapshot older than a completed insert would surface here as a
    // missed definite key.
    std::vector<exec::History> histories;
    histories.reserve(resultB.histories.size() + 1);
    histories.push_back(preloadHist);
    for (const auto& h : resultB.histories) histories.push_back(h);
    const auto merged = exec::mergeHistories(histories);
    const auto grow = exec::checkGrowOnlySet(merged);
    if (!grow.ok) {
      rep.failures.push_back("seed " + std::to_string(seed) +
                             ": grow-only violation: " + grow.explanation);
    }

    core::LhtIndex verifier(chord, indexOptions(seed * 4099, true, false));
    const auto scan = exec::scanAtomicSplits(verifier, definiteKeys(merged),
                                             maybeKeys(merged));
    if (!scan.ok) {
      rep.failures.push_back("seed " + std::to_string(seed) +
                             ": split scan: " + scan.explanation);
    }
    for (const index::Record& r : oracle) {
      auto found = verifier.find(r.key);
      if (!found.record.has_value() || found.record->payload != r.payload) {
        rep.failures.push_back("seed " + std::to_string(seed) +
                               ": record at key " + std::to_string(r.key) +
                               (found.record.has_value() ? " corrupted"
                                                         : " missing"));
        break;
      }
    }
  }

  if (rep.leaseReads == 0) {
    rep.failures.push_back("lease reads never exercised");
  }
  if (rep.crashes > 0 && rep.leaseDrops == 0) {
    rep.failures.push_back(
        "no lease was dropped on a dead replica holder despite crashes");
  }
  return rep;
}

}  // namespace lht::sim
