// Churn-storm campaign: measures LHT query availability while the
// substrate is actively dark, and time-to-repair-convergence afterwards.
//
// Per seed the campaign preloads a Chord-backed index (replication >= 2),
// then fires `waves` churn storms. Each wave: (1) ChurnDriver::wave()
// applies a burst of joins, graceful leaves, and crash() events — the
// crashed peers stay dark in the ring; (2) a *mid-storm* query-only
// ClientFleet runs against the wounded substrate through a per-client
// Latency + Failover decorator stack (failover / hedged reads are the
// knobs under test — with both off the same stack is the baseline);
// (3) a RepairScheduler ticks bounded anti-entropy slices (replica
// fix-ups + index sweep) until convergence, which is asserted via
// ChordDht::checkReplication(). After the last wave every preloaded
// record is verified against the oracle through a fresh client.
//
// availability = 1 - failed ops / total ops across every mid-storm fleet.
// With replication >= 2, crash spacing (crashWouldLoseData) guarantees a
// live copy of every key exists, so the failover configuration must reach
// availability 1.0; the baseline measurably cannot.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "sim/churn.h"

namespace lht::sim {

struct StormConfig {
  size_t seeds = 16;
  common::u64 baseSeed = 1;

  /// Substrate shape at preload time.
  size_t peers = 24;
  size_t replication = 3;

  /// Index preload: `keys` records under theta_split = `thetaSplit`.
  size_t keys = 160;
  common::u32 thetaSplit = 8;

  /// Storm shape: `waves` bursts of this composition per seed. Keep
  /// crashes per wave <= replication - 1: crashWouldLoseData spaces
  /// crashes so *stored* keys keep a live copy, but LHT's binary search
  /// also probes names that exist nowhere, and those reads are only
  /// guaranteed a live holder (for an authoritative miss) when fewer
  /// peers are dark at once than the key has holders.
  size_t waves = 3;
  WaveConfig wave{/*joins=*/2, /*leaves=*/2, /*crashes=*/2};

  /// Mid-storm load: `queriesPerWave` finds of preloaded keys spread over
  /// `clients` concurrent clients.
  size_t queriesPerWave = 96;
  size_t clients = 3;

  /// Resilience features under test (the campaign's independent variable).
  bool failover = true;
  bool hedging = true;

  /// Anti-entropy slice sizes (see RepairSchedulerConfig).
  size_t dhtKeysPerTick = 64;
  size_t indexBucketsPerTick = 8;
};

struct StormReport {
  size_t seeds = 0;
  size_t waves = 0;            ///< waves executed (seeds * cfg.waves)
  size_t crashesApplied = 0;   ///< crash() events across all waves
  size_t joinsApplied = 0;
  size_t leavesApplied = 0;

  // Mid-storm availability.
  size_t opsTotal = 0;
  size_t opsFailed = 0;
  double availability = 1.0;

  // Failover / hedging accounting (merged fleet metrics).
  common::u64 failoverAttempts = 0;
  common::u64 rescues = 0;
  common::u64 hedgesFired = 0;
  common::u64 hedgeWins = 0;

  // Repair convergence.
  size_t repairTicks = 0;           ///< total scheduler ticks, all waves
  size_t maxTicksToConverge = 0;    ///< worst single wave
  common::u64 dhtRepairActions = 0; ///< replica fix-ups applied
  common::u64 indexRepairs = 0;     ///< split/merge intents completed
  common::u64 lostKeys = 0;         ///< must stay 0 with replication >= 2

  /// Human-readable check failures; empty means every wave converged and
  /// the final index matched the oracle exactly.
  std::vector<std::string> failures;
  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Runs the campaign. Deterministic: identical configs give identical
/// reports (modulo wall-clock fields, of which there are none).
StormReport runStormCampaign(const StormConfig& cfg);

}  // namespace lht::sim
