#include "sim/churn.h"

#include "common/types.h"

namespace lht::sim {

std::string churnJoinName(size_t eventIndex) {
  return "churn-" + std::to_string(eventIndex);
}

ChurnDriver::ChurnDriver(dht::ChordDht& dht, ChurnConfig config)
    : dht_(dht), cfg_(config), rng_(config.seed, /*stream=*/0xC5u) {
  common::checkInvariant(cfg_.period >= 1, "ChurnDriver: period must be >= 1");
  common::checkInvariant(
      cfg_.joinWeight >= 0.0 && cfg_.leaveWeight >= 0.0 && cfg_.failWeight >= 0.0,
      "ChurnDriver: event weights must be non-negative");
  common::checkInvariant(
      cfg_.joinWeight + cfg_.leaveWeight + cfg_.failWeight > 0.0,
      "ChurnDriver: all event weights are zero");
  // An ungraceful fail() on an unreplicated ring silently loses every key
  // the victim owned — a configuration that can only produce a confusing
  // failure far from its cause. Reject it up front.
  common::checkInvariant(
      cfg_.failWeight == 0.0 || dht.replicationFactor() >= 2,
      "ChurnDriver: failWeight > 0 requires Chord replication >= 2 "
      "(ungraceful failures would lose data)");
}

void ChurnDriver::record(ChurnEvent::Type type, common::u64 nodeId) {
  events_.push_back(ChurnEvent{type, nodeId, nowMs()});
}

common::u64 ChurnDriver::applyJoin() {
  const common::u64 id = dht_.join(churnJoinName(events_.size()));
  record(ChurnEvent::Type::Join, id);
  joins_ += 1;
  return id;
}

bool ChurnDriver::maybeChurn() {
  counter_ += 1;
  if (rng_.below(cfg_.period) != 0) return false;
  churnOnce();
  return true;
}

void ChurnDriver::churnOnce() {
  const double total = cfg_.joinWeight + cfg_.leaveWeight + cfg_.failWeight;
  double pick = rng_.nextDouble() * total;
  const auto ids = dht_.nodeIds();
  const bool canShrink = dht_.peerCount() > cfg_.minPeers;

  if (pick < cfg_.joinWeight || !canShrink) {
    applyJoin();
    return;
  }
  pick -= cfg_.joinWeight;
  const common::u64 victim =
      ids[rng_.below(static_cast<common::u32>(ids.size()))];
  if (pick < cfg_.leaveWeight) {
    dht_.leave(victim);
    record(ChurnEvent::Type::Leave, victim);
    leaves_ += 1;
  } else {
    dht_.fail(victim);
    record(ChurnEvent::Type::Fail, victim);
    fails_ += 1;
  }
}

size_t ChurnDriver::wave(const WaveConfig& wave) {
  // Joins and graceful leaves first: ChordDht rejects both while crashes
  // are pending, so a wave's crash burst always comes last.
  for (size_t i = 0; i < wave.joins; ++i) applyJoin();
  for (size_t i = 0; i < wave.leaves; ++i) {
    if (dht_.peerCount() <= cfg_.minPeers) break;
    const auto ids = dht_.nodeIds();
    const common::u64 victim =
        ids[rng_.below(static_cast<common::u32>(ids.size()))];
    dht_.leave(victim);
    record(ChurnEvent::Type::Leave, victim);
    leaves_ += 1;
  }
  size_t crashed = 0;
  for (size_t i = 0; i < wave.crashes; ++i) {
    if (dht_.livePeerCount() <= std::max<size_t>(cfg_.minPeers, 2)) break;
    // Spacing: pick a live victim whose crash (on top of those already
    // dark) still leaves every key at least one live copy. A few random
    // draws suffice; when none qualifies the wave is saturated.
    const auto live = dht_.liveNodeIds();
    common::u64 victim = 0;
    for (size_t tries = 0; tries < live.size() + 8; ++tries) {
      const common::u64 cand =
          live[rng_.below(static_cast<common::u32>(live.size()))];
      if (!dht_.crashWouldLoseData(cand)) {
        victim = cand;
        break;
      }
    }
    if (victim == 0) break;
    dht_.crash(victim);
    record(ChurnEvent::Type::Crash, victim);
    crashes_ += 1;
    crashed += 1;
  }
  return crashed;
}

void ChurnDriver::replay(const std::vector<ChurnEvent>& log) {
  for (const ChurnEvent& ev : log) {
    switch (ev.type) {
      case ChurnEvent::Type::Join: {
        const common::u64 id = dht_.join(churnJoinName(events_.size()));
        common::checkInvariant(id == ev.nodeId,
                               "ChurnDriver::replay: join diverged from log "
                               "(substrate not in the recorded start state?)");
        record(ChurnEvent::Type::Join, id);
        joins_ += 1;
        break;
      }
      case ChurnEvent::Type::Leave:
        dht_.leave(ev.nodeId);
        record(ChurnEvent::Type::Leave, ev.nodeId);
        leaves_ += 1;
        break;
      case ChurnEvent::Type::Fail:
        dht_.fail(ev.nodeId);
        record(ChurnEvent::Type::Fail, ev.nodeId);
        fails_ += 1;
        break;
      case ChurnEvent::Type::Crash:
        dht_.crash(ev.nodeId);
        record(ChurnEvent::Type::Crash, ev.nodeId);
        crashes_ += 1;
        break;
    }
  }
}

}  // namespace lht::sim
