#include "sim/churn.h"

#include "common/types.h"

namespace lht::sim {

ChurnDriver::ChurnDriver(dht::ChordDht& dht, ChurnConfig config)
    : dht_(dht), cfg_(config), rng_(config.seed, /*stream=*/0xC5u) {
  common::checkInvariant(cfg_.period >= 1, "ChurnDriver: period must be >= 1");
  common::checkInvariant(
      cfg_.joinWeight >= 0.0 && cfg_.leaveWeight >= 0.0 && cfg_.failWeight >= 0.0,
      "ChurnDriver: event weights must be non-negative");
  common::checkInvariant(
      cfg_.joinWeight + cfg_.leaveWeight + cfg_.failWeight > 0.0,
      "ChurnDriver: all event weights are zero");
  // An ungraceful fail() on an unreplicated ring silently loses every key
  // the victim owned — a configuration that can only produce a confusing
  // failure far from its cause. Reject it up front.
  common::checkInvariant(
      cfg_.failWeight == 0.0 || dht.replicationFactor() >= 2,
      "ChurnDriver: failWeight > 0 requires Chord replication >= 2 "
      "(ungraceful failures would lose data)");
}

bool ChurnDriver::maybeChurn() {
  counter_ += 1;
  if (rng_.below(cfg_.period) != 0) return false;
  churnOnce();
  return true;
}

void ChurnDriver::churnOnce() {
  const double total = cfg_.joinWeight + cfg_.leaveWeight + cfg_.failWeight;
  double pick = rng_.nextDouble() * total;
  const auto ids = dht_.nodeIds();
  const bool canShrink = dht_.peerCount() > cfg_.minPeers;

  if (pick < cfg_.joinWeight || !canShrink) {
    dht_.join("churn-" + std::to_string(counter_) + "-" + std::to_string(joins_));
    joins_ += 1;
    return;
  }
  pick -= cfg_.joinWeight;
  const common::u64 victim =
      ids[rng_.below(static_cast<common::u32>(ids.size()))];
  if (pick < cfg_.leaveWeight) {
    dht_.leave(victim);
    leaves_ += 1;
  } else {
    dht_.fail(victim);
    fails_ += 1;
  }
}

}  // namespace lht::sim
