// Peer-churn driver (the paper's motivation: "peers frequently join/leave
// the networks"). Interleaves join / graceful-leave / ungraceful-fail
// events with index operations on a Chord substrate, so experiments can
// measure index behaviour and DHT recovery traffic under dynamism.
//
// Every event is appended to a deterministic log (type, node id, sim
// time), so any run is reproducible from its seed — or replayable
// event-for-event onto a fresh identical substrate with replay().
// wave() fires a churn *storm*: a burst of mass joins, leaves and
// crashes (crash() marks peers dark for the anti-entropy repair
// scheduler to excise, unlike fail()'s immediate removal).
#pragma once

#include <string>
#include <vector>

#include "common/random.h"
#include "dht/chord.h"
#include "net/sim_network.h"

namespace lht::sim {

/// One churn event, as applied. `simTimeMs` is the SimClock reading at
/// the moment the event fired (0 when the driver has no clock).
struct ChurnEvent {
  enum class Type { Join, Leave, Fail, Crash };
  Type type = Type::Join;
  common::u64 nodeId = 0;     ///< joined node's first ring id, or the victim
  common::u64 simTimeMs = 0;  ///< simulated time when the event was applied
};

/// Canonical name for the peer added by the log's `eventIndex`-th event
/// (when it is a Join). Join placement is a pure function of the name, so
/// replaying the log with these names reproduces the exact topology.
[[nodiscard]] std::string churnJoinName(size_t eventIndex);

struct ChurnConfig {
  /// Relative weights of the three event types when an event fires.
  double joinWeight = 1.0;
  double leaveWeight = 1.0;
  double failWeight = 0.0;  ///< needs Options::replication >= 2 to be lossless
  /// An event fires once per `period` calls to maybeChurn() on average.
  common::u32 period = 50;
  /// The ring never shrinks below this.
  size_t minPeers = 4;
  common::u64 seed = 1;
  /// Timestamps events in the log when set (SimNetwork::clock()).
  const net::SimClock* clock = nullptr;
};

/// One churn-storm wave for ChurnDriver::wave(): a burst of topology
/// events applied back-to-back. Joins and graceful leaves land first
/// (they are rejected while crashes are pending); the crashes come last
/// and stay dark until an anti-entropy scheduler runs repairStep().
struct WaveConfig {
  size_t joins = 0;
  size_t leaves = 0;
  size_t crashes = 0;
};

class ChurnDriver {
 public:
  ChurnDriver(dht::ChordDht& dht, ChurnConfig config);

  /// Call between index operations; fires an event with probability
  /// 1/period. Returns true when an event fired.
  bool maybeChurn();

  /// Forces one event of a random (weighted) type immediately.
  void churnOnce();

  /// Fires one storm wave: `joins` joins, then `leaves` graceful leaves,
  /// then `crashes` crash() events on randomly chosen live peers. Crash
  /// victims are spaced by crashWouldLoseData(): a victim whose loss (on
  /// top of the crashes already pending) would destroy the last copy of
  /// some key is skipped, so a wave never exceeds what the replication
  /// factor can absorb. Returns the number of crashes actually applied.
  size_t wave(const WaveConfig& wave);

  /// Every event applied by this driver, in order.
  [[nodiscard]] const std::vector<ChurnEvent>& eventLog() const {
    return events_;
  }

  /// Replays `log` event-for-event onto this driver's substrate (which
  /// must be in the same state the recording run started from). Joins use
  /// churnJoinName(i), reproducing the recorded node ids exactly — the
  /// invariant is checked per event. The replayed events are appended to
  /// this driver's own log.
  void replay(const std::vector<ChurnEvent>& log);

  [[nodiscard]] size_t joins() const { return joins_; }
  [[nodiscard]] size_t leaves() const { return leaves_; }
  [[nodiscard]] size_t fails() const { return fails_; }
  [[nodiscard]] size_t crashes() const { return crashes_; }
  [[nodiscard]] size_t events() const {
    return joins_ + leaves_ + fails_ + crashes_;
  }

 private:
  [[nodiscard]] common::u64 nowMs() const {
    return cfg_.clock != nullptr ? cfg_.clock->nowMs() : 0;
  }
  common::u64 applyJoin();
  void record(ChurnEvent::Type type, common::u64 nodeId);

  dht::ChordDht& dht_;
  ChurnConfig cfg_;
  common::Pcg32 rng_;
  std::vector<ChurnEvent> events_;
  size_t joins_ = 0;
  size_t leaves_ = 0;
  size_t fails_ = 0;
  size_t crashes_ = 0;
  size_t counter_ = 0;
};

}  // namespace lht::sim
