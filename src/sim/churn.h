// Peer-churn driver (the paper's motivation: "peers frequently join/leave
// the networks"). Interleaves join / graceful-leave / ungraceful-fail
// events with index operations on a Chord substrate, so experiments can
// measure index behaviour and DHT recovery traffic under dynamism.
#pragma once

#include <string>

#include "common/random.h"
#include "dht/chord.h"

namespace lht::sim {

struct ChurnConfig {
  /// Relative weights of the three event types when an event fires.
  double joinWeight = 1.0;
  double leaveWeight = 1.0;
  double failWeight = 0.0;  ///< needs Options::replication >= 2 to be lossless
  /// An event fires once per `period` calls to maybeChurn() on average.
  common::u32 period = 50;
  /// The ring never shrinks below this.
  size_t minPeers = 4;
  common::u64 seed = 1;
};

class ChurnDriver {
 public:
  ChurnDriver(dht::ChordDht& dht, ChurnConfig config);

  /// Call between index operations; fires an event with probability
  /// 1/period. Returns true when an event fired.
  bool maybeChurn();

  /// Forces one event of a random (weighted) type immediately.
  void churnOnce();

  [[nodiscard]] size_t joins() const { return joins_; }
  [[nodiscard]] size_t leaves() const { return leaves_; }
  [[nodiscard]] size_t fails() const { return fails_; }
  [[nodiscard]] size_t events() const { return joins_ + leaves_ + fails_; }

 private:
  dht::ChordDht& dht_;
  ChurnConfig cfg_;
  common::Pcg32 rng_;
  size_t joins_ = 0;
  size_t leaves_ = 0;
  size_t fails_ = 0;
  size_t counter_ = 0;
};

}  // namespace lht::sim
