#include "sim/repair_scheduler.h"

#include "common/types.h"
#include "obs/obs.h"

namespace lht::sim {

RepairScheduler::RepairScheduler(dht::ChordDht& dht, core::LhtIndex* index,
                                 RepairSchedulerConfig config)
    : dht_(dht), index_(index), cfg_(config) {
  common::checkInvariant(cfg_.dhtKeysPerTick >= 1,
                         "RepairScheduler: dhtKeysPerTick must be >= 1");
  // An index with no sweep budget never converges its half of the check;
  // treat "no index pass" as a null index instead.
  if (cfg_.indexBucketsPerTick == 0) index_ = nullptr;
  sweepDone_ = index_ == nullptr;
}

void RepairScheduler::noteChurn() {
  sweepCursor_ = 0.0;
  sweepDone_ = index_ == nullptr;
}

size_t RepairScheduler::tick() {
  progress_.ticks += 1;
  obs::count("repair.ticks");
  size_t work = 0;

  // DHT side: excise pending crashes (first slice after a storm) and
  // apply a bounded batch of replica fix-ups.
  const size_t applied = dht_.repairStep(cfg_.dhtKeysPerTick);
  progress_.dhtActions += applied;
  work += applied;
  if (applied != 0) obs::count("repair.dht_actions", applied);
  obs::gaugeSet("repair.replica_deficit",
                static_cast<double>(dht_.replicaDeficit()));

  // Index side: resume the bounded sweep where the last tick stopped.
  if (index_ != nullptr && !sweepDone_) {
    const size_t repaired =
        index_->repairSweepStep(sweepCursor_, cfg_.indexBucketsPerTick);
    progress_.indexRepairs += repaired;
    if (repaired != 0) obs::count("repair.index_repairs", repaired);
    work += repaired;
    if (sweepCursor_ >= 1.0) {
      sweepDone_ = true;
      progress_.sweepPasses += 1;
    } else {
      work += 1;  // the walk itself is progress: the pass is not done
    }
  }
  return work;
}

bool RepairScheduler::converged() const {
  return dht_.repairConverged() && sweepDone_;
}

size_t RepairScheduler::runToConvergence() {
  size_t spent = 0;
  while (!converged()) {
    common::checkInvariant(++spent <= cfg_.maxTicks,
                           "RepairScheduler: no convergence within maxTicks");
    tick();
  }
  return spent;
}

}  // namespace lht::sim
