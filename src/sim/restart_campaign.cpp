#include "sim/restart_campaign.h"

#include <filesystem>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <utility>

#include "common/random.h"
#include "dht/local_dht.h"
#include "exec/linearizability.h"
#include "index/reference_index.h"
#include "lht/lht_index.h"
#include "store/durable_engine.h"

namespace lht::sim {

namespace {

namespace fs = std::filesystem;

using common::u32;
using common::u64;

struct Op {
  bool isInsert = false;
  double key = 0.0;
  std::string payload;
};

/// Same shape as the fault campaign's workload: `inserts` distinct keys,
/// then `erases` of a shuffled subset.
std::vector<Op> makeWorkload(const RestartCampaignConfig& cfg, u64 seed) {
  common::Pcg32 rng(seed, /*stream=*/0x2E57A27u);
  std::vector<Op> ops;
  std::vector<double> keys;
  std::set<double> used;
  while (keys.size() < cfg.inserts) {
    const double k = rng.nextDouble();
    if (k <= 0.0 || k >= 1.0 || !used.insert(k).second) continue;
    keys.push_back(k);
    ops.push_back(Op{true, k, "v" + std::to_string(keys.size())});
  }
  for (size_t i = keys.size(); i > 1; --i) {
    std::swap(keys[i - 1], keys[rng.below(static_cast<u32>(i))]);
  }
  for (size_t i = 0; i < std::min(cfg.erases, keys.size()); ++i) {
    ops.push_back(Op{false, keys[i], ""});
  }
  return ops;
}

store::DurableOptions engineOpts(const RestartCampaignConfig& cfg,
                                 const std::string& dir,
                                 store::CrashInjector* injector) {
  store::DurableOptions o;
  o.dir = dir;
  o.segmentBytes = cfg.segmentBytes;
  o.spillValueBytes = cfg.spillValueBytes;
  o.syncEachCommit = true;
  o.physicalFsync = cfg.physicalFsync;
  o.injector = injector;
  return o;
}

core::LhtIndex::Options indexOpts(const RestartCampaignConfig& cfg,
                                  bool attach, u64 clientSeed) {
  core::LhtIndex::Options o;
  o.thetaSplit = cfg.thetaSplit;
  o.crashConsistentSplits = true;
  o.attachExisting = attach;
  o.clientSeed = clientSeed;
  return o;
}

void runOp(core::LhtIndex& idx, const Op& op) {
  if (op.isInsert) {
    idx.insert(index::Record{op.key, op.payload});
  } else {
    idx.erase(op.key);
  }
}

/// Cycle the kill flavor: a clean kill (nothing of the final write lands),
/// then two torn variants persisting different proper prefixes.
double tornFractionFor(u64 boundary) {
  switch (boundary % 3) {
    case 1: return 0.35;
    case 2: return 0.8;
    default: return -1.0;
  }
}

std::string describe(u64 seed, u64 boundary, const std::string& phase) {
  std::ostringstream os;
  os << "seed=" << seed << " boundary=" << boundary << " (" << phase << ")";
  return os.str();
}

/// What the primary (killed) run left behind, logically.
struct PrimaryOutcome {
  bool crashed = false;
  bool bootstrap = false;      ///< killed before the index existed
  bool inCompaction = false;   ///< killed inside compactStorage()
  std::optional<Op> inDoubt;   ///< the op in flight at the kill, if any
  index::ReferenceIndex oracle;
  std::set<double> live;       ///< keys the oracle currently holds
};

/// Replays the workload with `injector` armed; fills `out` with the oracle
/// of every op that definitely completed.
void runPrimary(const RestartCampaignConfig& cfg, const std::string& dir,
                const std::vector<Op>& ops, u64 seed,
                store::CrashInjector& injector, PrimaryOutcome& out) {
  out.bootstrap = true;  // engine construction I/O counts as bootstrap
  try {
    dht::LocalDht store(
        store::makeDurableEngine(engineOpts(cfg, dir, &injector)));
    core::LhtIndex index(store, indexOpts(cfg, /*attach=*/false, seed));
    out.bootstrap = false;
    for (size_t i = 0; i < ops.size(); ++i) {
      out.inDoubt = ops[i];
      runOp(index, ops[i]);
      out.inDoubt.reset();
      if (ops[i].isInsert) {
        out.oracle.insert(index::Record{ops[i].key, ops[i].payload});
        out.live.insert(ops[i].key);
      } else {
        out.oracle.erase(ops[i].key);
        out.live.erase(ops[i].key);
      }
      if (cfg.compactEvery != 0 && (i + 1) % cfg.compactEvery == 0) {
        out.inCompaction = true;
        store.compactStorage();
        out.inCompaction = false;
      }
    }
  } catch (const store::StoreCrashError&) {
    out.crashed = true;
  }
  // A kill landing on the engine's shutdown flush is absorbed by the
  // writer's destructor (best-effort seal); the injector still records it.
  if (injector.crashed()) out.crashed = true;
}

void runSeed(const RestartCampaignConfig& cfg, const std::string& root,
             u64 seed, RestartCampaignReport& report) {
  const std::vector<Op> ops = makeWorkload(cfg, seed);

  // Shadow pass: how many I/O boundaries (writes + fsyncs) the full
  // workload performs. The replay below is deterministic, so boundary k of
  // the shadow run is boundary k of every armed run.
  u64 boundaries = 0;
  {
    const std::string dir = root + "/shadow";
    fs::remove_all(dir);
    store::CrashInjector injector;
    injector.disarm();
    PrimaryOutcome shadow;
    runPrimary(cfg, dir, ops, seed, injector, shadow);
    boundaries = injector.eventsObserved();
    fs::remove_all(dir);
    if (shadow.crashed) {
      report.failures.push_back("seed=" + std::to_string(seed) +
                                ": shadow run crashed with a disarmed injector");
      return;
    }
  }

  for (u64 k = 0; k < boundaries; ++k) {
    const std::string dir = root + "/k" + std::to_string(k);
    fs::remove_all(dir);
    store::CrashInjector injector;
    injector.arm(k, tornFractionFor(k));
    PrimaryOutcome primary;
    runPrimary(cfg, dir, ops, seed, injector, primary);

    const std::string phase =
        primary.bootstrap      ? "bootstrap"
        : primary.inDoubt      ? (primary.inDoubt->isInsert ? "insert"
                                                            : "erase")
        : primary.inCompaction ? "compaction"
                               : "shutdown";
    auto fail = [&](const std::string& what) {
      report.failures.push_back(describe(seed, k, phase) + ": " + what);
    };
    if (!primary.crashed) {
      fail("replay diverged (no crash fired)");
      fs::remove_all(dir);
      continue;
    }
    report.scenarios += 1;
    if (primary.bootstrap) {
      report.bootstrapCrashes += 1;
    } else if (primary.inDoubt) {
      report.opCrashes += 1;
    } else if (primary.inCompaction) {
      report.compactionCrashes += 1;
    } else {
      report.shutdownCrashes += 1;
    }

    // Cold reopen: recovery must repair the directory without help.
    std::unique_ptr<store::DurableEngine> engine;
    try {
      engine = std::make_unique<store::DurableEngine>(
          engineOpts(cfg, dir, nullptr));
    } catch (const store::StoreError& e) {
      fail(std::string("reopen failed: ") + e.what());
      fs::remove_all(dir);
      continue;
    }
    const auto rinfo = engine->recoveryInfo();
    if (rinfo.tornBytesTruncated > 0) report.tornTailRecoveries += 1;
    if (rinfo.usedFallbackSnapshot) report.snapshotFallbacks += 1;
    report.replayedRecords += rinfo.replayedRecords;
    dht::LocalDht store(std::move(engine));

    const u64 salt = (seed << 24) ^ (k << 2) ^ 0x2E57u;
    try {
    if (primary.bootstrap) {
      // The index never finished bootstrapping; a restart legitimately
      // re-bootstraps from scratch (there were no records to lose).
      core::LhtIndex recovered(store, indexOpts(cfg, /*attach=*/false, salt));
      const auto scan = exec::scanAtomicSplits(recovered, {}, {});
      if (!scan.ok) fail("bootstrap rescan: " + scan.explanation);
      fs::remove_all(dir);
      continue;
    }

    core::LhtIndex recovered(store, indexOpts(cfg, /*attach=*/true, salt));

    // Differential check against the oracle. The in-doubt key may have
    // landed either way; every other key must match exactly — and the
    // lookups double as lookup-triggered repair of whatever they touch.
    for (const double key : primary.live) {
      auto expected = primary.oracle.find(key);
      auto got = recovered.find(key);
      if (primary.inDoubt && primary.inDoubt->key == key) {
        if (got.record && expected.record &&
            got.record->payload != expected.record->payload) {
          fail("in-doubt erase left a foreign payload at key " +
               std::to_string(key));
        }
        continue;
      }
      if (!got.record) {
        fail("lost record at key " + std::to_string(key));
      } else if (!expected.record) {
        fail("oracle bookkeeping bug at key " + std::to_string(key));
      } else if (got.record->payload != expected.record->payload) {
        fail("payload mismatch at key " + std::to_string(key));
      }
    }
    if (primary.inDoubt && primary.inDoubt->isInsert &&
        primary.live.count(primary.inDoubt->key) == 0) {
      auto got = recovered.find(primary.inDoubt->key);
      if (got.record && got.record->payload != primary.inDoubt->payload) {
        fail("in-doubt insert resolved to a foreign payload");
      }
    }

    // Converge regions the lookups did not touch, then verify structure:
    // leaves must tile [0, 1) with no intent markers left, and the record
    // set must be bracketed by definite / definite ∪ maybe.
    recovered.repairSweep();
    report.splitRepairs += recovered.repairStats().splitRepairs;
    report.mergeRepairs += recovered.repairStats().mergeRepairs;

    std::set<double> definite = primary.live;
    std::set<double> maybe;
    if (primary.inDoubt) {
      definite.erase(primary.inDoubt->key);
      maybe.insert(primary.inDoubt->key);
    }
    const auto scan = exec::scanAtomicSplits(recovered, definite, maybe);
    if (!scan.ok) fail(scan.explanation);
    } catch (const std::exception& e) {
      fail(std::string("recovery threw: ") + e.what());
    }
    fs::remove_all(dir);
  }
}

}  // namespace

RestartCampaignReport runRestartCampaign(const RestartCampaignConfig& cfg) {
  RestartCampaignReport report;
  const std::string root =
      (cfg.scratchRoot.empty()
           ? (fs::temp_directory_path() / "lht_restart_campaign").string()
           : cfg.scratchRoot);
  for (size_t i = 0; i < cfg.seeds; ++i) {
    const u64 seed = cfg.baseSeed + i;
    const std::string seedRoot = root + "/seed" + std::to_string(seed);
    fs::create_directories(seedRoot);
    runSeed(cfg, seedRoot, seed, report);
    fs::remove_all(seedRoot);
  }
  return report;
}

}  // namespace lht::sim
