// Experiment harness shared by the bench binaries.
//
// One Experiment = one index instance (LHT, PHT-sequential, PHT-parallel,
// or DST) over a fresh substrate, loaded with one generated dataset. The
// bench binaries sweep parameters, average across seeds, and print each
// paper figure as a table. All randomness is seeded: identical flags give
// identical output.
#pragma once

#include <memory>
#include <string>

#include "cost/meter.h"
#include "dht/local_dht.h"
#include "index/ordered_index.h"
#include "workload/generators.h"

namespace lht::sim {

enum class IndexKind { Lht, PhtSequential, PhtParallel, Dst, Rst };

IndexKind parseIndexKind(const std::string& name);
std::string indexKindName(IndexKind k);

struct ExperimentConfig {
  IndexKind kind = IndexKind::Lht;
  workload::Distribution dist = workload::Distribution::Uniform;
  size_t dataSize = 1 << 12;
  common::u32 theta = 100;
  common::u32 maxDepth = 20;
  common::u64 seed = 1;
  bool countLabelSlot = true;
  size_t rstPeerCount = 32;  ///< broadcast fan-out for IndexKind::Rst

  /// LHT client-side performance features (IndexKind::Lht only; the other
  /// indexes ignore them). Default-off, matching LhtIndex::Options.
  bool lhtUseLeafCache = false;
  bool lhtBatchFanout = false;
  bool lhtCacheDecodedBuckets = false;
};

/// Mean per-operation statistics over a measured workload.
struct AvgStats {
  double dhtLookups = 0.0;
  double parallelSteps = 0.0;
  double records = 0.0;  ///< records returned (range) / found (lookup)
};

class Experiment {
 public:
  explicit Experiment(ExperimentConfig cfg);

  /// Inserts the configured dataset (index meters record the cost).
  void build();

  [[nodiscard]] index::OrderedIndex& idx() { return *index_; }
  [[nodiscard]] const cost::MeterSet& meters() const { return index_->meters(); }
  [[nodiscard]] const ExperimentConfig& config() const { return cfg_; }

  /// Runs `count` exact-match finds on uniformly random keys (paper Sec.
  /// 9.3) and averages the per-operation stats.
  AvgStats measureLookups(size_t count);

  /// Runs `count` range queries of fixed `span` with random lower bounds
  /// (paper Sec. 9.4) and averages the per-operation stats.
  AvgStats measureRanges(double span, size_t count);

 private:
  ExperimentConfig cfg_;
  dht::LocalDht dht_;
  std::unique_ptr<index::OrderedIndex> index_;
};

}  // namespace lht::sim
