#include "sim/experiment.h"

#include "common/types.h"
#include "dst/dst_index.h"
#include "lht/lht_index.h"
#include "obs/obs.h"
#include "pht/pht_index.h"
#include "rst/rst_index.h"

namespace lht::sim {

IndexKind parseIndexKind(const std::string& name) {
  if (name == "lht") return IndexKind::Lht;
  if (name == "pht-seq") return IndexKind::PhtSequential;
  if (name == "pht-par") return IndexKind::PhtParallel;
  if (name == "dst") return IndexKind::Dst;
  if (name == "rst") return IndexKind::Rst;
  throw common::InvariantError("unknown index kind: " + name);
}

std::string indexKindName(IndexKind k) {
  switch (k) {
    case IndexKind::Lht: return "LHT";
    case IndexKind::PhtSequential: return "PHT(sequential)";
    case IndexKind::PhtParallel: return "PHT(parallel)";
    case IndexKind::Dst: return "DST";
    case IndexKind::Rst: return "RST";
  }
  return "?";
}

Experiment::Experiment(ExperimentConfig cfg) : cfg_(cfg) {
  switch (cfg_.kind) {
    case IndexKind::Lht: {
      core::LhtIndex::Options o;
      o.thetaSplit = cfg_.theta;
      o.maxDepth = cfg_.maxDepth;
      o.countLabelSlot = cfg_.countLabelSlot;
      o.useLeafCache = cfg_.lhtUseLeafCache;
      o.batchFanout = cfg_.lhtBatchFanout;
      o.cacheDecodedBuckets = cfg_.lhtCacheDecodedBuckets;
      index_ = std::make_unique<core::LhtIndex>(dht_, o);
      break;
    }
    case IndexKind::PhtSequential:
    case IndexKind::PhtParallel: {
      pht::PhtIndex::Options o;
      o.thetaSplit = cfg_.theta;
      o.maxDepth = cfg_.maxDepth;
      o.countLabelSlot = cfg_.countLabelSlot;
      o.rangeMode = cfg_.kind == IndexKind::PhtSequential
                        ? pht::PhtIndex::RangeMode::Sequential
                        : pht::PhtIndex::RangeMode::Parallel;
      index_ = std::make_unique<pht::PhtIndex>(dht_, o);
      break;
    }
    case IndexKind::Dst: {
      dst::DstIndex::Options o;
      o.depth = cfg_.maxDepth;
      index_ = std::make_unique<dst::DstIndex>(dht_, o);
      break;
    }
    case IndexKind::Rst: {
      rst::RstIndex::Options o;
      o.thetaSplit = cfg_.theta;
      o.maxDepth = cfg_.maxDepth;
      o.countLabelSlot = cfg_.countLabelSlot;
      o.peerCount = cfg_.rstPeerCount;
      index_ = std::make_unique<rst::RstIndex>(dht_, o);
      break;
    }
  }
}

void Experiment::build() {
  // Phase spans let a trace of a fig driver attribute every nested DHT/net
  // span to build vs measurement time.
  obs::SpanScope span("sim.build", "sim");
  span.arg("index", indexKindName(cfg_.kind));
  span.arg("n", static_cast<common::u64>(cfg_.dataSize));
  auto dataset = workload::makeDataset(cfg_.dist, cfg_.dataSize, cfg_.seed);
  for (const auto& r : dataset) index_->insert(r);
}

AvgStats Experiment::measureLookups(size_t count) {
  obs::SpanScope span("sim.measureLookups", "sim");
  span.arg("count", static_cast<common::u64>(count));
  common::Pcg32 rng(cfg_.seed ^ 0xF00Dull, /*stream=*/7);
  AvgStats avg;
  for (size_t i = 0; i < count; ++i) {
    auto res = index_->find(rng.nextDouble());
    avg.dhtLookups += static_cast<double>(res.stats.dhtLookups);
    avg.parallelSteps += static_cast<double>(res.stats.parallelSteps);
    avg.records += res.record ? 1.0 : 0.0;
  }
  const double n = static_cast<double>(count);
  avg.dhtLookups /= n;
  avg.parallelSteps /= n;
  avg.records /= n;
  return avg;
}

AvgStats Experiment::measureRanges(double span, size_t count) {
  obs::SpanScope phase("sim.measureRanges", "sim");
  phase.arg("span", span);
  phase.arg("count", static_cast<common::u64>(count));
  common::Pcg32 rng(cfg_.seed ^ 0xBEEFull, /*stream=*/11);
  AvgStats avg;
  for (size_t i = 0; i < count; ++i) {
    auto spec = workload::makeRange(span, rng);
    auto res = index_->rangeQuery(spec.lo, spec.hi);
    avg.dhtLookups += static_cast<double>(res.stats.dhtLookups);
    avg.parallelSteps += static_cast<double>(res.stats.parallelSteps);
    avg.records += static_cast<double>(res.records.size());
  }
  const double n = static_cast<double>(count);
  avg.dhtLookups /= n;
  avg.parallelSteps /= n;
  avg.records /= n;
  return avg;
}

}  // namespace lht::sim
