#include "sim/storm_campaign.h"

#include <memory>
#include <utility>

#include "common/random.h"
#include "dht/chord.h"
#include "dht/decorators.h"
#include "exec/client_fleet.h"
#include "exec/thread_pool.h"
#include "lht/lht_index.h"
#include "net/sim_network.h"
#include "sim/repair_scheduler.h"
#include "workload/trace.h"

namespace lht::sim {

namespace {

core::LhtIndex::Options indexOptions(const StormConfig& cfg, common::u64 seed,
                                     bool attach) {
  core::LhtIndex::Options io;
  io.thetaSplit = cfg.thetaSplit;
  io.useLeafCache = true;  // the PR2 cache must compose with failover reads
  io.attachExisting = attach;
  io.clientSeed = seed;
  return io;
}

}  // namespace

StormReport runStormCampaign(const StormConfig& cfg) {
  common::checkInvariant(cfg.replication >= 2,
                         "StormCampaign: replication >= 2 required "
                         "(crashes would lose data)");
  common::checkInvariant(cfg.keys >= 1 && cfg.queriesPerWave >= 1,
                         "StormCampaign: empty workload");
  StormReport rep;
  rep.seeds = cfg.seeds;
  exec::WorkStealingPool pool(4);

  for (size_t s = 0; s < cfg.seeds; ++s) {
    const common::u64 seed = cfg.baseSeed + s;
    net::SimNetwork net;
    net::SimClock simClock;
    net.attachClock(&simClock, /*perHopLatencyMs=*/1);

    dht::ChordDht::Options co;
    co.initialPeers = cfg.peers;
    co.seed = seed;
    co.replication = cfg.replication;
    dht::ChordDht chord(net, co);

    // Preload through a plain client; the oracle is the inserted set.
    core::LhtIndex loader(chord, indexOptions(cfg, seed * 131, false));
    common::Pcg32 rng(seed, /*stream=*/0x5708u);
    std::vector<index::Record> oracle;
    oracle.reserve(cfg.keys);
    for (size_t i = 0; i < cfg.keys; ++i) {
      index::Record r;
      // Stratified keys: distinct by construction, uniform in [0, 1).
      r.key = (static_cast<double>(i) + rng.nextDouble()) /
              static_cast<double>(cfg.keys);
      r.payload = "storm-" + std::to_string(i);
      loader.insert(r);
      oracle.push_back(std::move(r));
    }

    ChurnConfig cc;
    cc.seed = seed;
    cc.minPeers = 4;
    cc.clock = net.clock();
    ChurnDriver driver(chord, cc);

    for (size_t w = 0; w < cfg.waves; ++w) {
      const size_t joinsBefore = driver.joins();
      const size_t leavesBefore = driver.leaves();
      rep.crashesApplied += driver.wave(cfg.wave);
      rep.joinsApplied += driver.joins() - joinsBefore;
      rep.leavesApplied += driver.leaves() - leavesBefore;
      rep.waves += 1;

      // Mid-storm load: query-only trace against the wounded substrate.
      std::vector<workload::Operation> trace;
      trace.reserve(cfg.queriesPerWave);
      for (size_t q = 0; q < cfg.queriesPerWave; ++q) {
        workload::Operation op;
        op.kind = workload::Operation::Kind::Find;
        op.key =
            oracle[rng.below(static_cast<common::u32>(oracle.size()))].key;
        trace.push_back(std::move(op));
      }

      exec::FleetOptions fo;
      fo.clients = cfg.clients;
      fo.chunkSize = 16;
      fo.clientSeedBase = seed * 10'000 + w * 100;
      fo.index = indexOptions(cfg, /*unused: per-client override*/ 1, true);
      exec::ClientFleet fleet(
          [&](size_t i, net::SimClock& clock) {
            exec::ClientStack stack;
            auto latency = std::make_unique<dht::LatencyDht>(
                chord, clock,
                dht::LatencyDht::Options{
                    .baseMs = 2, .jitterMs = 1, .seed = seed * 31 + w * 7 + i});
            dht::FailoverDht::Options fopts;
            fopts.failover = cfg.failover;
            fopts.hedging = cfg.hedging;
            fopts.hedgeMinMs = 4;
            auto failover = std::make_unique<dht::FailoverDht>(
                *latency, clock, fopts);
            stack.top = failover.get();
            stack.layers.push_back(std::move(latency));
            stack.layers.push_back(std::move(failover));
            return stack;
          },
          fo);
      exec::FleetResult result = fleet.run(trace, pool);
      rep.opsTotal += result.opsTotal;
      rep.opsFailed += result.opsFailed;
      rep.failoverAttempts +=
          result.metrics.counterValue("dht.failover.attempts");
      rep.rescues += result.metrics.counterValue("dht.failover.rescues");
      rep.hedgesFired += result.metrics.counterValue("dht.hedge.fired");
      rep.hedgeWins += result.metrics.counterValue("dht.hedge.wins");

      // Anti-entropy: bounded slices until full replication + a clean
      // index sweep. The scheduler's first slice excises the dark peers.
      core::LhtIndex repairClient(
          chord, indexOptions(cfg, seed * 977 + w + 1, true));
      RepairSchedulerConfig rc;
      rc.dhtKeysPerTick = cfg.dhtKeysPerTick;
      rc.indexBucketsPerTick = cfg.indexBucketsPerTick;
      RepairScheduler sched(chord, &repairClient, rc);
      sched.noteChurn();
      const size_t ticks = sched.runToConvergence();
      rep.repairTicks += ticks;
      rep.maxTicksToConverge = std::max(rep.maxTicksToConverge, ticks);
      rep.dhtRepairActions += sched.progress().dhtActions;
      rep.indexRepairs += sched.progress().indexRepairs;
      if (!chord.checkReplication()) {
        rep.failures.push_back("seed " + std::to_string(seed) + " wave " +
                               std::to_string(w) +
                               ": checkReplication failed post-repair");
      }
      if (sched.progress().sweepPasses == 0) {
        rep.failures.push_back("seed " + std::to_string(seed) + " wave " +
                               std::to_string(w) +
                               ": index sweep never completed a pass");
      }
    }

    rep.lostKeys += chord.lostKeys();
    if (chord.lostKeys() != 0) {
      rep.failures.push_back("seed " + std::to_string(seed) + ": " +
                             std::to_string(chord.lostKeys()) +
                             " keys lost despite crash spacing");
    }

    // Post-storm verification: every preloaded record is reachable and
    // intact through a fresh client.
    core::LhtIndex verifier(chord, indexOptions(cfg, seed * 4099, true));
    for (const index::Record& r : oracle) {
      auto found = verifier.find(r.key);
      if (!found.record.has_value() || found.record->payload != r.payload) {
        rep.failures.push_back("seed " + std::to_string(seed) +
                               ": record at key " + std::to_string(r.key) +
                               (found.record.has_value() ? " corrupted"
                                                         : " missing"));
        break;  // one example per seed keeps the report readable
      }
    }
  }

  rep.availability =
      rep.opsTotal == 0
          ? 1.0
          : 1.0 - static_cast<double>(rep.opsFailed) /
                      static_cast<double>(rep.opsTotal);
  return rep;
}

}  // namespace lht::sim
