// Fault campaign: exhaustive crash testing of LHT's structural protocols.
//
// A campaign (per seed) first shadow-runs a deterministic insert/erase
// workload on a crash-consistent LHT client and records every operation
// that performed a structural change (split or merge) together with its
// DHT-write footprint W. It then replays the workload once per
// (structural op, crash step k < W) pair, killing the client — via
// CrashDht — after exactly k completed writes of that operation, so every
// intermediate state of the split and merge state machines is actually
// reached and abandoned. Lost replies are injected throughout (LostReplyDht
// under RetryingDht), so retries and re-executed mutators are part of every
// scenario, not a separate test.
//
// After each crash a *fresh* client (attachExisting, a different token
// stream) recovers purely through the public interface: it looks up every
// live key (exercising lookup-triggered repair), runs repairSweep() to
// converge regions holding no records, then walks all leaves and verifies
// the surviving index against an oracle std::map — zero lost records, zero
// duplicated records, no intent markers left behind.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace lht::sim {

struct FaultCampaignConfig {
  /// Independent workloads; every scenario below runs for each seed.
  size_t seeds = 16;
  common::u64 baseSeed = 1;

  /// Workload shape: `inserts` distinct keys, then `erases` of a random
  /// subset (erases drive merges; inserts drive splits).
  size_t inserts = 48;
  size_t erases = 36;
  common::u32 thetaSplit = 6;

  /// Probability that any routed DHT operation executes but its reply is
  /// dropped (forcing a retry of an already-applied mutation).
  double lostReplyRate = 0.10;
  size_t maxAttempts = 12;

  /// Client-side performance features under test (both the crashing client
  /// and the recovering client run with them): the leaf-location cache,
  /// batched multi-key rounds, and the decoded-bucket store. Default-off,
  /// matching the index defaults; the campaign must pass either way.
  bool useLeafCache = false;
  bool batchFanout = false;
  bool cacheDecodedBuckets = false;
};

struct FaultCampaignReport {
  size_t scenarios = 0;      ///< (structural op, crash step) pairs executed
  size_t splitCrashes = 0;   ///< scenarios that killed a split mid-flight
  size_t mergeCrashes = 0;   ///< scenarios that killed a merge mid-flight
  size_t splitRepairs = 0;   ///< half-finished splits completed by recovery
  size_t mergeRepairs = 0;   ///< half-finished merges completed by recovery
  size_t lostRepliesInjected = 0;
  /// Human-readable verification failures; empty means every scenario
  /// recovered to exactly the oracle's contents.
  std::vector<std::string> failures;

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Runs the full campaign. Deterministic: identical configs give identical
/// reports.
FaultCampaignReport runFaultCampaign(const FaultCampaignConfig& cfg);

}  // namespace lht::sim
