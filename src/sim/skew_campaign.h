// Zipfian skew campaign (DESIGN.md §13): measures how hot-leaf read
// traffic concentrates on the DHT's physical peers, and whether the
// lease-based replicated-read protocol plus access-adaptive splits
// actually flatten it.
//
// runSkewCampaign — the load-balance measurement. Per seed it preloads
// one record per key-space cell on a replicated Chord ring, zeroes the
// per-peer served-read counters, then drives a zipfian find/insert trace
// (workload::makeSkewedTrace) through a concurrent ClientFleet. The
// independent variable is {leasedReads, adaptiveSplits}: the bench runs
// the campaign twice on identical traces and compares
// ChordDht::readLoadByPeer() summaries (max/mean/p99) between the arms.
// Every seed is oracle-verified through a fresh client afterwards — the
// balancing features must not cost correctness.
//
// runLeaseLinCampaign — the safety side. Per seed, concurrent clients run
// a race-heavy trace (finds of keys other clients are concurrently
// inserting into the same hot leaves, which bump epochs and invalidate
// leases) with leases and adaptive splits ON; mid-campaign one replica
// holder of the hottest leaf is crash()ed, so lease reads hit a dark
// peer and must drop the lease rather than hang or lie. After repair
// convergence the merged histories (including synthesized records for the
// preload, so finds of preloaded keys are justified) must pass the
// Wing&Gong-style grow-only-set checker — a lease-served read that
// returned a snapshot older than a completed insert would violate its
// real-time staleness bound — plus the atomic-split scan and the oracle.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "workload/generators.h"
#include "workload/trace.h"

namespace lht::sim {

struct SkewCampaignConfig {
  size_t seeds = 8;
  common::u64 baseSeed = 1;

  /// Substrate shape. Replication >= 2 is what gives leases replicas to
  /// read; the OFF arm keeps the same ring so the comparison is fair.
  /// Virtual nodes (the paper's load-spreading lever, also compared in
  /// table_load_balance) smooth arc-length ownership in BOTH arms — they
  /// scatter a leaf's replica successors across random peers, but cannot
  /// split one hot name's primary traffic, which is the leases' job.
  size_t peers = 16;
  size_t replication = 4;
  size_t virtualNodes = 8;

  /// Index shape. A theta_split comfortably above the per-leaf preload
  /// leaves the initial tree coarse — several cells per leaf — which is
  /// exactly the regime where a hot cell pins one peer.
  common::u32 thetaSplit = 96;
  common::u32 maxDepth = 18;

  /// Workload: zipf(s) popularity over `universe` cells, find-heavy.
  workload::SkewConfig skew{/*s=*/0.99, /*universe=*/64,
                            /*flashEvery=*/0, /*flashJump=*/0};
  workload::SkewMix mix{/*find=*/0.94, /*insert=*/0.06};
  size_t opsPerSeed = 4000;
  size_t clients = 4;

  /// The features under test (the campaign's independent variable).
  bool leasedReads = true;
  bool adaptiveSplits = true;
  /// Generous TTL relative to the simulated run length: epoch bumps (not
  /// expiry) are the interesting invalidation path under a split-heavy
  /// zipfian load; expiry hygiene is covered by the lease unit tests.
  common::u64 leaseTtlMs = 20'000;
  common::u32 hotLeafReads = 48;
  common::u32 hotSplitDivisor = 12;
};

struct SkewReport {
  size_t seeds = 0;
  size_t opsTotal = 0;
  size_t opsFailed = 0;

  // Read-load over physical peers, measurement window only (preload and
  // fleet construction excluded via resetReadLoad).
  common::u64 readsTotal = 0;
  /// Sum over seeds of the per-seed busiest peer's reads — the bottleneck
  /// work the slowest server performs.
  common::u64 readsMaxSum = 0;
  double maxOverMeanAvg = 0.0;    ///< mean over seeds of max/mean imbalance
  double maxOverMeanWorst = 0.0;  ///< worst single seed
  double p99Avg = 0.0;            ///< mean over seeds of p99 peer load
  /// readsTotal / readsMaxSum: how many peers' worth of parallel read
  /// service the ring effectively delivered (upper bound: peers).
  double effectiveParallelism = 0.0;

  // Lease-protocol accounting (merged fleet metrics across seeds).
  common::u64 leaseGrants = 0;
  common::u64 leaseReads = 0;
  common::u64 leaseStale = 0;
  common::u64 leaseExpired = 0;
  common::u64 leaseDrops = 0;
  common::u64 splits = 0;

  /// Human-readable check failures; empty means every seed verified
  /// against the oracle with zero failed ops.
  std::vector<std::string> failures;
  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Runs the campaign. Deterministic: identical configs give identical
/// reports.
SkewReport runSkewCampaign(const SkewCampaignConfig& cfg);

struct LeaseLinConfig {
  size_t seeds = 16;
  common::u64 baseSeed = 1;

  size_t peers = 12;
  size_t replication = 3;
  common::u32 thetaSplit = 12;
  common::u32 maxDepth = 18;

  /// No flash crowds here: a stable hot cell keeps lease traffic pinned
  /// on the leaf whose replica holder the campaign crashes.
  workload::SkewConfig skew{/*s=*/0.99, /*universe=*/48,
                            /*flashEvery=*/0, /*flashJump=*/0};
  /// Ops per fleet phase; each seed runs two phases (pre- and post-crash)
  /// through the SAME fleet, so phase-A leases are live when the holder
  /// goes dark.
  size_t opsPerPhase = 600;
  size_t clients = 4;

  common::u64 leaseTtlMs = 300;
  common::u32 hotLeafReads = 24;
  common::u32 hotSplitDivisor = 4;

  /// Crash a replica holder of the hottest leaf between the phases.
  bool crashReplica = true;
};

struct LeaseLinReport {
  size_t seeds = 0;
  size_t opsTotal = 0;
  /// Ops that failed with a DhtError. Non-zero is EXPECTED post-crash
  /// (writes whose owner or replica holder is dark fail loudly); the
  /// checkers treat them as maybe-applied.
  size_t opsFailed = 0;

  common::u64 leaseGrants = 0;
  common::u64 leaseReads = 0;
  common::u64 leaseStale = 0;
  common::u64 leaseExpired = 0;
  /// Leases dropped on dead-peer read errors — must be > 0 when crashes
  /// were applied (the campaign's reason for crashing a lease holder).
  common::u64 leaseDrops = 0;

  size_t crashes = 0;
  size_t repairTicks = 0;

  std::vector<std::string> failures;
  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Runs the lease linearizability campaign. Deterministic.
LeaseLinReport runLeaseLinCampaign(const LeaseLinConfig& cfg);

}  // namespace lht::sim
