// Restart campaign: exhaustive crash-restart testing of the durable bucket
// store under the full LHT stack (DESIGN.md §11).
//
// Where the fault campaign kills the *client* between DHT writes, this
// campaign kills the *storage engine* at I/O boundaries: a per-seed shadow
// run over a DurableEngine-backed LocalDht counts every write/fsync the
// workload performs (index traffic plus periodic compactStorage calls),
// then the workload is replayed once per boundary with a CrashInjector
// armed to die exactly there — alternating clean kills with torn writes
// that persist only a proper prefix of the final buffer, so torn WAL
// tails, half-written segments, and half-finished snapshot compactions are
// all actually produced on disk.
//
// After each kill the directory is reopened cold: a fresh DurableEngine
// recovers (snapshot + WAL replay, checksum verification, torn-tail
// truncation), and a fresh attaching client verifies the rebuilt index
// differentially against a ReferenceIndex oracle — the one operation in
// flight at the kill is "in doubt" (its effect may or may not have reached
// the log) and may land either way; everything else must match exactly.
// Lookup-triggered repair plus repairSweep() must then leave no intent
// markers behind, checked structurally with exec::scanAtomicSplits.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace lht::sim {

struct RestartCampaignConfig {
  /// Independent workloads; every I/O boundary below is hit for each seed.
  size_t seeds = 16;
  common::u64 baseSeed = 1;

  /// Workload shape (inserts drive splits, erases drive merges).
  size_t inserts = 16;
  size_t erases = 8;
  common::u32 thetaSplit = 4;

  /// Snapshot + log-truncation compaction runs after every this many
  /// workload ops, so kills land inside compactions too. 0 disables.
  size_t compactEvery = 6;

  /// Engine shape: a small segment size forces WAL rotation mid-workload,
  /// and a small spill threshold keeps most bucket values on disk behind
  /// the mmap reader while the crashes happen.
  common::u64 segmentBytes = 2048;
  common::u64 spillValueBytes = 96;

  /// Fsync boundaries are counted (and crashed at) either way; issuing the
  /// physical syscall only costs time in a campaign, so default off.
  bool physicalFsync = false;

  /// Scratch directory root; empty means the system temp directory. The
  /// campaign wipes and recreates per-scenario subdirectories under it.
  std::string scratchRoot;
};

struct RestartCampaignReport {
  size_t scenarios = 0;          ///< boundaries killed and recovered
  size_t opCrashes = 0;          ///< kills inside an index operation
  size_t compactionCrashes = 0;  ///< kills inside compactStorage()
  size_t bootstrapCrashes = 0;   ///< kills before the index existed
  size_t shutdownCrashes = 0;    ///< kills on the engine's shutdown flush
  size_t tornTailRecoveries = 0; ///< reopens that truncated a torn tail
  size_t snapshotFallbacks = 0;  ///< reopens that used an older snapshot
  common::u64 replayedRecords = 0;  ///< WAL records replayed across reopens
  size_t splitRepairs = 0;
  size_t mergeRepairs = 0;
  /// Human-readable verification failures; empty means every kill
  /// recovered to a state consistent with the oracle.
  std::vector<std::string> failures;

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Runs the full campaign. Deterministic: identical configs give identical
/// reports (scratch I/O aside).
RestartCampaignReport runRestartCampaign(const RestartCampaignConfig& cfg);

}  // namespace lht::sim
