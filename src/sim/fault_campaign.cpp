#include "sim/fault_campaign.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "common/random.h"
#include "dht/decorators.h"
#include "dht/local_dht.h"
#include "lht/lht_index.h"

namespace lht::sim {

namespace {

using common::u32;
using common::u64;

struct Op {
  bool isInsert = false;
  double key = 0.0;
  std::string payload;
};

/// `inserts` distinct keys, then `erases` of a shuffled subset — enough
/// erases concentrated by shuffling that sibling leaves drain and merge.
std::vector<Op> makeWorkload(const FaultCampaignConfig& cfg, u64 seed) {
  common::Pcg32 rng(seed, /*stream=*/0xFA17u);
  std::vector<Op> ops;
  std::vector<double> keys;
  std::set<double> used;
  while (keys.size() < cfg.inserts) {
    const double k = rng.nextDouble();
    if (k <= 0.0 || k >= 1.0 || !used.insert(k).second) continue;
    keys.push_back(k);
    ops.push_back(Op{true, k, "v" + std::to_string(keys.size())});
  }
  for (size_t i = keys.size(); i > 1; --i) {
    std::swap(keys[i - 1], keys[rng.below(static_cast<u32>(i))]);
  }
  for (size_t i = 0; i < std::min(cfg.erases, keys.size()); ++i) {
    ops.push_back(Op{false, keys[i], ""});
  }
  return ops;
}

core::LhtIndex::Options indexOpts(const FaultCampaignConfig& cfg, bool attach,
                                  u64 clientSeed) {
  core::LhtIndex::Options o;
  o.thetaSplit = cfg.thetaSplit;
  o.crashConsistentSplits = true;
  o.attachExisting = attach;
  o.clientSeed = clientSeed;
  o.useLeafCache = cfg.useLeafCache;
  o.batchFanout = cfg.batchFanout;
  o.cacheDecodedBuckets = cfg.cacheDecodedBuckets;
  return o;
}

dht::RetryingDht::Options retryOpts(const FaultCampaignConfig& cfg, u64 seed) {
  dht::RetryingDht::Options o;
  o.maxAttempts = cfg.maxAttempts;
  o.seed = seed;
  return o;
}

/// The client under test: lost replies injected under the retry layer,
/// CrashDht outermost so a "write" means one completed index protocol step
/// regardless of how many retries it took underneath.
struct ClientStack {
  dht::LostReplyDht lossy;
  dht::RetryingDht retrying;
  dht::CrashDht crash;
  core::LhtIndex index;

  ClientStack(dht::Dht& store, const FaultCampaignConfig& cfg, u64 lossSeed,
              core::LhtIndex::Options opts)
      : lossy(store, cfg.lostReplyRate, lossSeed),
        retrying(lossy, retryOpts(cfg, lossSeed ^ 0x5EEDu)),
        crash(retrying),
        index(crash, opts) {}
};

void runOp(core::LhtIndex& idx, const Op& op) {
  if (op.isInsert) {
    idx.insert(index::Record{op.key, op.payload});
  } else {
    idx.erase(op.key);
  }
}

void applyToOracle(std::map<double, std::string>& oracle, const Op& op) {
  if (op.isInsert) {
    oracle[op.key] = op.payload;
  } else {
    oracle.erase(op.key);
  }
}

struct Scenario {
  size_t opIdx = 0;
  size_t crashStep = 0;  ///< writes allowed before the client dies
  bool isSplit = false;  ///< split vs merge in flight at the kill
};

std::string describe(u64 seed, const Scenario& s) {
  std::ostringstream os;
  os << "seed=" << seed << " op=" << s.opIdx << " ("
     << (s.isSplit ? "split" : "merge") << ") crashStep=" << s.crashStep;
  return os.str();
}

/// Recovers with a fresh client and verifies the index against the oracle.
/// Appends failure descriptions to `report`.
void recoverAndVerify(dht::LocalDht& store, const FaultCampaignConfig& cfg,
                      const std::map<double, std::string>& oracle, u64 seed,
                      const Scenario& s, u64 scenarioSalt,
                      FaultCampaignReport& report) {
  dht::LostReplyDht lossy(store, cfg.lostReplyRate, scenarioSalt ^ 0xDEADu);
  dht::RetryingDht retrying(lossy, retryOpts(cfg, scenarioSalt ^ 0xBEEFu));
  core::LhtIndex recovered(
      retrying, indexOpts(cfg, /*attach=*/true,
                          /*clientSeed=*/scenarioSalt ^ 0xC0FFEEu));

  auto fail = [&](const std::string& what) {
    report.failures.push_back(describe(seed, s) + ": " + what);
  };

  // Ordinary traffic first: every live key must be findable, and the
  // lookups opportunistically repair whatever they touch.
  for (const auto& [key, payload] : oracle) {
    auto found = recovered.find(key);
    if (!found.record) {
      fail("lost record at key " + std::to_string(key));
    } else if (found.record->payload != payload) {
      fail("wrong payload at key " + std::to_string(key));
    }
  }

  // Then converge the rest of the key space (regions with no records to
  // look up still may hold a half-finished structural change).
  recovered.repairSweep();
  report.splitRepairs += recovered.repairStats().splitRepairs;
  report.mergeRepairs += recovered.repairStats().mergeRepairs;
  report.lostRepliesInjected += lossy.injectedLostReplies();

  // Exhaustive walk: exactly the oracle's records, each exactly once, and
  // no intent marker left anywhere.
  std::map<double, std::vector<std::string>> walked;
  recovered.forEachBucket([&](const core::LeafBucket& b) {
    if (!b.clean()) fail("unclean bucket " + b.label.str() + " after repair");
    for (const auto& r : b.records) walked[r.key].push_back(r.payload);
  });
  for (const auto& [key, payloads] : walked) {
    auto it = oracle.find(key);
    if (it == oracle.end()) {
      fail("resurrected/duplicated key " + std::to_string(key));
    } else if (payloads.size() != 1) {
      fail("key " + std::to_string(key) + " stored " +
           std::to_string(payloads.size()) + " times");
    } else if (payloads.front() != it->second) {
      fail("payload mismatch at key " + std::to_string(key));
    }
  }
  if (walked.size() != oracle.size()) {
    fail("index holds " + std::to_string(walked.size()) + " keys, oracle " +
         std::to_string(oracle.size()));
  }
}

void runSeed(const FaultCampaignConfig& cfg, u64 seed,
             FaultCampaignReport& report) {
  const std::vector<Op> ops = makeWorkload(cfg, seed);

  // Shadow pass: which ops change structure, and how many client-visible
  // DHT writes each of them takes.
  std::vector<Scenario> scenarios;
  {
    dht::LocalDht store;
    ClientStack client(store, cfg, /*lossSeed=*/seed,
                       indexOpts(cfg, /*attach=*/false, /*clientSeed=*/seed));
    for (size_t i = 0; i < ops.size(); ++i) {
      const auto before = client.index.meters().maintenance;
      client.crash.resetWriteCount();
      runOp(client.index, ops[i]);
      const auto& after = client.index.meters().maintenance;
      const size_t writes = client.crash.writesCompleted();
      const bool split = after.splits > before.splits;
      const bool merge = after.merges > before.merges;
      if (!split && !merge) continue;
      for (size_t k = 0; k < writes; ++k) {
        scenarios.push_back(Scenario{i, k, split});
      }
    }
    report.lostRepliesInjected += client.lossy.injectedLostReplies();
  }

  // Crash pass: one full deterministic replay per scenario, killed at the
  // chosen step, recovered by a different client, verified.
  for (const Scenario& s : scenarios) {
    dht::LocalDht store;
    ClientStack client(store, cfg, /*lossSeed=*/seed,
                       indexOpts(cfg, /*attach=*/false, /*clientSeed=*/seed));
    std::map<double, std::string> oracle;
    for (size_t i = 0; i < s.opIdx; ++i) {
      runOp(client.index, ops[i]);
      applyToOracle(oracle, ops[i]);
    }

    client.crash.armAfterWrites(s.crashStep);
    bool crashed = false;
    try {
      runOp(client.index, ops[s.opIdx]);
    } catch (const dht::CrashError&) {
      crashed = true;
    }
    if (!crashed) {
      report.failures.push_back(describe(seed, s) +
                                ": replay diverged (no crash fired)");
      continue;
    }
    // The operation's own record effect rides on its *first* write; with
    // at least one write through, the logical op is applied even though
    // the structural change is stranded mid-protocol.
    if (s.crashStep >= 1) applyToOracle(oracle, ops[s.opIdx]);

    report.scenarios += 1;
    (s.isSplit ? report.splitCrashes : report.mergeCrashes) += 1;
    report.lostRepliesInjected += client.lossy.injectedLostReplies();

    const u64 salt = (seed << 20) ^ (static_cast<u64>(s.opIdx) << 8) ^
                     static_cast<u64>(s.crashStep) ^ 0x5A17u;
    recoverAndVerify(store, cfg, oracle, seed, s, salt, report);
  }
}

}  // namespace

FaultCampaignReport runFaultCampaign(const FaultCampaignConfig& cfg) {
  FaultCampaignReport report;
  for (size_t i = 0; i < cfg.seeds; ++i) {
    runSeed(cfg, cfg.baseSeed + i, report);
  }
  return report;
}

}  // namespace lht::sim
