// Message-level network simulator.
//
// The DHT substrates route over this: every overlay hop is one message, and
// the simulator accounts messages and bytes globally and per peer. The
// paper's cost metrics (DHT-lookup counts, records moved) are network-scale
// independent, but the hop/byte accounting lets us report the physical
// bandwidth behind the cost-model constants i and j.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "net/sim_clock.h"

namespace lht::net {

using common::u32;
using common::u64;

/// Identifies a peer process in the simulation.
using PeerId = u32;
inline constexpr PeerId kInvalidPeer = ~0u;

/// Global traffic counters.
struct NetStats {
  u64 messages = 0;
  u64 bytes = 0;
  void reset() { *this = NetStats{}; }
};

/// Per-peer traffic counters (for load-balance analysis).
struct PeerStats {
  u64 messagesIn = 0;
  u64 messagesOut = 0;
  u64 bytesIn = 0;
  u64 bytesOut = 0;
};

/// Registry of peers plus synchronous message accounting. Peers can be
/// marked offline (churn); sending to an offline peer is reported to the
/// caller so substrates can exercise failure handling.
class SimNetwork {
 public:
  /// Adds a peer and returns its id.
  PeerId addPeer(std::string name);

  /// Marks a peer offline/online (simulated churn).
  void setOnline(PeerId id, bool online);
  [[nodiscard]] bool isOnline(PeerId id) const;

  /// Accounts one message of `bytes` payload from `from` to `to`.
  /// Returns false (message dropped) when the destination is offline.
  bool send(PeerId from, PeerId to, u64 bytes);

  /// Latency hook: when a clock is attached, every delivered message
  /// advances it by `perHopLatencyMs`, so substrate routing (one message
  /// per overlay hop) accrues simulated time that timeout/backoff
  /// decorators can observe. Detach by passing nullptr.
  void attachClock(SimClock* clock, u64 perHopLatencyMs);
  [[nodiscard]] SimClock* clock() const { return clock_; }

  [[nodiscard]] size_t peerCount() const { return peers_.size(); }
  [[nodiscard]] const std::string& peerName(PeerId id) const;
  [[nodiscard]] const NetStats& stats() const { return stats_; }
  [[nodiscard]] const PeerStats& peerStats(PeerId id) const;
  void resetStats();

  /// Mean / max messages handled per online peer (load balance measure).
  [[nodiscard]] double meanPeerLoad() const;
  [[nodiscard]] u64 maxPeerLoad() const;

  /// Scoped parallel round: while one is alive, per-hop clock advances are
  /// deferred and accumulated per entry; on destruction the clock advances
  /// by the LONGEST entry's total hop latency (the critical path). This is
  /// how a batch of independent requests costs one round-trip of simulated
  /// time while bandwidth accounting (messages/bytes) stays per hop.
  /// Rounds do not nest.
  class ParallelRound {
   public:
    explicit ParallelRound(SimNetwork& net);
    ~ParallelRound();
    ParallelRound(const ParallelRound&) = delete;
    ParallelRound& operator=(const ParallelRound&) = delete;

    /// Starts the next entry of the round: the current entry's accumulated
    /// latency is folded into the round maximum.
    void nextEntry();

   private:
    SimNetwork& net_;
  };

 private:
  void beginParallelRound();
  void endParallelRound();
  void nextRoundEntry();

  friend class ParallelRound;
  struct Peer {
    std::string name;
    bool online = true;
    PeerStats stats;
  };
  std::vector<Peer> peers_;
  NetStats stats_;
  SimClock* clock_ = nullptr;
  u64 perHopLatencyMs_ = 0;
  bool inParallelRound_ = false;
  u64 roundEntryMs_ = 0;  ///< latency accumulated by the current entry
  u64 roundMaxMs_ = 0;    ///< longest entry seen so far in the round
};

}  // namespace lht::net
