// Message-level network simulator.
//
// The DHT substrates route over this: every overlay hop is one message, and
// the simulator accounts messages and bytes globally and per peer. The
// paper's cost metrics (DHT-lookup counts, records moved) are network-scale
// independent, but the hop/byte accounting lets us report the physical
// bandwidth behind the cost-model constants i and j.
//
// Thread safety (DESIGN.md §10): send() may be called from many client
// threads at once. Traffic counters are relaxed atomics; the peer table is
// guarded by a shared mutex (sends take it shared, membership changes
// exclusive); parallel-round deferral state is per thread. Per-hop latency
// charges follow the thread-clock protocol: when the calling thread has a
// ThreadClockScope installed, its own clock advances, otherwise the
// globally attached clock does (atomically).
#pragma once

#include <shared_mutex>
#include <string>
#include <vector>

#include "common/relaxed_counter.h"
#include "common/types.h"
#include "net/sim_clock.h"

namespace lht::net {

using common::u32;
using common::u64;

/// Identifies a peer process in the simulation.
using PeerId = u32;
inline constexpr PeerId kInvalidPeer = ~0u;

/// Global traffic counters (relaxed-atomic; exact totals under concurrency).
struct NetStats {
  common::RelaxedCounter messages;
  common::RelaxedCounter bytes;
  void reset() { *this = NetStats{}; }
};

/// Per-peer traffic counters (for load-balance analysis).
struct PeerStats {
  common::RelaxedCounter messagesIn;
  common::RelaxedCounter messagesOut;
  common::RelaxedCounter bytesIn;
  common::RelaxedCounter bytesOut;
};

/// Installs a simulated clock for the CURRENT THREAD for the scope's
/// lifetime: every per-hop latency charge and parallel-round settlement
/// issued by this thread advances this clock instead of the network's
/// globally attached one. This is how N concurrent clients overlap their
/// simulated waits: each accrues time on its own clock and the fleet's
/// elapsed simulated time is the maximum — the critical path. Scopes nest
/// (the previous installation is restored on destruction).
class ThreadClockScope {
 public:
  explicit ThreadClockScope(SimClock& clock);
  ~ThreadClockScope();
  ThreadClockScope(const ThreadClockScope&) = delete;
  ThreadClockScope& operator=(const ThreadClockScope&) = delete;

 private:
  SimClock* prev_;
};

/// Registry of peers plus synchronous message accounting. Peers can be
/// marked offline (churn); sending to an offline peer is reported to the
/// caller so substrates can exercise failure handling.
class SimNetwork {
 public:
  /// Adds a peer and returns its id.
  PeerId addPeer(std::string name);

  /// Marks a peer offline/online (simulated churn).
  void setOnline(PeerId id, bool online);
  [[nodiscard]] bool isOnline(PeerId id) const;

  /// Accounts one message of `bytes` payload from `from` to `to`.
  /// Returns false (message dropped) when the destination is offline.
  bool send(PeerId from, PeerId to, u64 bytes);

  /// Latency hook: when a clock is attached, every delivered message
  /// advances it by `perHopLatencyMs`, so substrate routing (one message
  /// per overlay hop) accrues simulated time that timeout/backoff
  /// decorators can observe. Detach by passing nullptr. A thread with a
  /// ThreadClockScope installed charges its own clock instead. Not safe
  /// to call concurrently with send().
  void attachClock(SimClock* clock, u64 perHopLatencyMs);
  [[nodiscard]] SimClock* clock() const { return clock_; }

  [[nodiscard]] size_t peerCount() const;
  [[nodiscard]] std::string peerName(PeerId id) const;
  [[nodiscard]] const NetStats& stats() const { return stats_; }
  [[nodiscard]] PeerStats peerStats(PeerId id) const;
  void resetStats();

  /// Mean / max messages handled per online peer (load balance measure).
  [[nodiscard]] double meanPeerLoad() const;
  [[nodiscard]] u64 maxPeerLoad() const;

  /// Scoped parallel round: while one is alive ON THIS THREAD, the calling
  /// thread's per-hop clock advances are deferred and accumulated per
  /// entry; on destruction the clock advances by the LONGEST entry's total
  /// hop latency (the critical path). This is how a batch of independent
  /// requests costs one round-trip of simulated time while bandwidth
  /// accounting (messages/bytes) stays per hop. Rounds do not nest; the
  /// deferral state is per thread, so concurrent threads can each run
  /// their own round against the same network.
  class ParallelRound {
   public:
    explicit ParallelRound(SimNetwork& net);
    ~ParallelRound();
    ParallelRound(const ParallelRound&) = delete;
    ParallelRound& operator=(const ParallelRound&) = delete;

    /// Starts the next entry of the round: the current entry's accumulated
    /// latency is folded into the round maximum.
    void nextEntry();

   private:
    SimNetwork& net_;
  };

 private:
  void beginParallelRound();
  void endParallelRound();
  void nextRoundEntry();
  /// The clock this thread's latency charges go to: the thread-local
  /// override when installed, else the attached global clock (may be null).
  [[nodiscard]] SimClock* chargeClock() const;

  friend class ParallelRound;
  struct Peer {
    std::string name;
    bool online = true;
    PeerStats stats;
  };

  /// Per-thread parallel-round deferral state. A thread runs at most one
  /// round at a time (rounds do not nest), pinned to one network.
  struct RoundState {
    const SimNetwork* net = nullptr;  ///< non-null while a round is open
    u64 entryMs = 0;  ///< latency accumulated by the current entry
    u64 maxMs = 0;    ///< longest entry seen so far in the round
  };
  static thread_local RoundState tlsRound_;

  mutable std::shared_mutex peersMutex_;  ///< membership vs. traffic
  std::vector<Peer> peers_;
  NetStats stats_;
  SimClock* clock_ = nullptr;
  u64 perHopLatencyMs_ = 0;
};

}  // namespace lht::net
