// Simulated wall clock for the resilience layer.
//
// The network simulator is synchronous (a call *is* the round trip), so
// latency, timeouts, and retry backoff cannot be observed from real time.
// SimClock gives every latency-aware component one shared, deterministic
// time source: latency decorators advance it as requests "take" time,
// timeout decorators read it to enforce deadlines, and retry backoff
// advances it while "waiting". Experiments stay exactly reproducible
// because time only moves when a simulated cause moves it.
//
// Thread-safe time-advance protocol (DESIGN.md §10): the counter is a
// relaxed atomic, so a SHARED clock tolerates concurrent advances — time
// never tears and never goes backward. But summing every thread's waits
// into one clock would serialize simulated time that concurrent clients
// actually overlap. The execution engine therefore gives each client
// thread its OWN SimClock (the decorators of that client's stack all share
// it), and the fleet's elapsed simulated time is the MAXIMUM over client
// clocks — the critical path, exactly the rule SimNetwork::ParallelRound
// applies to batched requests, lifted to whole threads. SimNetwork routes
// per-hop charges to the calling thread's clock via ThreadClockScope
// (sim_network.h) so substrate routing obeys the same protocol.
#pragma once

#include <atomic>

#include "common/types.h"

namespace lht::net {

class SimClock {
 public:
  /// Current simulated time in milliseconds since the clock's epoch.
  [[nodiscard]] common::u64 nowMs() const {
    return nowMs_.load(std::memory_order_relaxed);
  }

  /// Moves time forward (never backward). Safe under concurrent callers:
  /// concurrent advances accumulate, none is lost.
  void advance(common::u64 ms) {
    nowMs_.fetch_add(ms, std::memory_order_relaxed);
  }

  /// Moves time forward to at least `ms` (no-op when already past it).
  /// Used by open-loop arrival pacing: a client "waits" until its next
  /// scheduled arrival.
  void advanceTo(common::u64 ms) {
    common::u64 cur = nowMs_.load(std::memory_order_relaxed);
    while (cur < ms &&
           !nowMs_.compare_exchange_weak(cur, ms, std::memory_order_relaxed)) {
    }
  }

  void reset() { nowMs_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<common::u64> nowMs_{0};
};

}  // namespace lht::net
