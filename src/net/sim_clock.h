// Simulated wall clock for the resilience layer.
//
// The network simulator is synchronous (a call *is* the round trip), so
// latency, timeouts, and retry backoff cannot be observed from real time.
// SimClock gives every latency-aware component one shared, deterministic
// time source: latency decorators advance it as requests "take" time,
// timeout decorators read it to enforce deadlines, and retry backoff
// advances it while "waiting". Experiments stay exactly reproducible
// because time only moves when a simulated cause moves it.
#pragma once

#include "common/types.h"

namespace lht::net {

class SimClock {
 public:
  /// Current simulated time in milliseconds since the clock's epoch.
  [[nodiscard]] common::u64 nowMs() const { return nowMs_; }

  /// Moves time forward (never backward).
  void advance(common::u64 ms) { nowMs_ += ms; }

  void reset() { nowMs_ = 0; }

 private:
  common::u64 nowMs_ = 0;
};

}  // namespace lht::net
