#include "net/sim_network.h"

#include <algorithm>

#include "common/types.h"
#include "obs/obs.h"

namespace lht::net {

PeerId SimNetwork::addPeer(std::string name) {
  peers_.push_back(Peer{std::move(name), true, {}});
  return static_cast<PeerId>(peers_.size() - 1);
}

void SimNetwork::setOnline(PeerId id, bool online) {
  common::checkInvariant(id < peers_.size(), "SimNetwork: bad peer id");
  peers_[id].online = online;
}

bool SimNetwork::isOnline(PeerId id) const {
  common::checkInvariant(id < peers_.size(), "SimNetwork: bad peer id");
  return peers_[id].online;
}

bool SimNetwork::send(PeerId from, PeerId to, u64 bytes) {
  common::checkInvariant(from < peers_.size() && to < peers_.size(),
                         "SimNetwork::send: bad peer id");
  if (!peers_[to].online) {
    obs::count("net.drops");
    return false;
  }
  stats_.messages += 1;
  stats_.bytes += bytes;
  if (obs::metrics() != nullptr) {
    obs::count("net.messages");
    obs::count("net.bytes", bytes);
  }
  peers_[from].stats.messagesOut += 1;
  peers_[from].stats.bytesOut += bytes;
  peers_[to].stats.messagesIn += 1;
  peers_[to].stats.bytesIn += bytes;
  if (inParallelRound_) {
    roundEntryMs_ += perHopLatencyMs_;
  } else if (clock_ != nullptr) {
    clock_->advance(perHopLatencyMs_);
  }
  return true;
}

void SimNetwork::beginParallelRound() {
  common::checkInvariant(!inParallelRound_,
                         "SimNetwork: parallel rounds do not nest");
  inParallelRound_ = true;
  roundEntryMs_ = 0;
  roundMaxMs_ = 0;
}

void SimNetwork::nextRoundEntry() {
  roundMaxMs_ = std::max(roundMaxMs_, roundEntryMs_);
  roundEntryMs_ = 0;
}

void SimNetwork::endParallelRound() {
  nextRoundEntry();
  inParallelRound_ = false;
  // Critical-path RTT of the whole round: this is the simulated time the
  // batch actually costs, so it is what the round histogram records.
  obs::observeMs("net.round_rtt_ms", static_cast<double>(roundMaxMs_));
  if (clock_ != nullptr && roundMaxMs_ > 0) clock_->advance(roundMaxMs_);
}

SimNetwork::ParallelRound::ParallelRound(SimNetwork& net) : net_(net) {
  net_.beginParallelRound();
}

SimNetwork::ParallelRound::~ParallelRound() { net_.endParallelRound(); }

void SimNetwork::ParallelRound::nextEntry() { net_.nextRoundEntry(); }

void SimNetwork::attachClock(SimClock* clock, u64 perHopLatencyMs) {
  clock_ = clock;
  perHopLatencyMs_ = perHopLatencyMs;
}

const std::string& SimNetwork::peerName(PeerId id) const {
  common::checkInvariant(id < peers_.size(), "SimNetwork: bad peer id");
  return peers_[id].name;
}

const PeerStats& SimNetwork::peerStats(PeerId id) const {
  common::checkInvariant(id < peers_.size(), "SimNetwork: bad peer id");
  return peers_[id].stats;
}

void SimNetwork::resetStats() {
  stats_.reset();
  for (auto& p : peers_) p.stats = PeerStats{};
}

double SimNetwork::meanPeerLoad() const {
  u64 total = 0;
  u64 online = 0;
  for (const auto& p : peers_) {
    if (!p.online) continue;
    total += p.stats.messagesIn;
    online += 1;
  }
  return online == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(online);
}

u64 SimNetwork::maxPeerLoad() const {
  u64 best = 0;
  for (const auto& p : peers_)
    if (p.online) best = std::max(best, p.stats.messagesIn);
  return best;
}

}  // namespace lht::net
