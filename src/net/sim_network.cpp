#include "net/sim_network.h"

#include <algorithm>
#include <mutex>
#include <shared_mutex>

#include "common/types.h"
#include "obs/obs.h"

namespace lht::net {

namespace {
// Thread-local clock override installed by ThreadClockScope.
thread_local SimClock* tlsClock = nullptr;
}  // namespace

thread_local SimNetwork::RoundState SimNetwork::tlsRound_;

ThreadClockScope::ThreadClockScope(SimClock& clock) : prev_(tlsClock) {
  tlsClock = &clock;
}

ThreadClockScope::~ThreadClockScope() { tlsClock = prev_; }

SimClock* SimNetwork::chargeClock() const {
  return tlsClock != nullptr ? tlsClock : clock_;
}

PeerId SimNetwork::addPeer(std::string name) {
  std::unique_lock lock(peersMutex_);
  peers_.push_back(Peer{std::move(name), true, {}});
  return static_cast<PeerId>(peers_.size() - 1);
}

void SimNetwork::setOnline(PeerId id, bool online) {
  std::unique_lock lock(peersMutex_);
  common::checkInvariant(id < peers_.size(), "SimNetwork: bad peer id");
  peers_[id].online = online;
}

bool SimNetwork::isOnline(PeerId id) const {
  std::shared_lock lock(peersMutex_);
  common::checkInvariant(id < peers_.size(), "SimNetwork: bad peer id");
  return peers_[id].online;
}

bool SimNetwork::send(PeerId from, PeerId to, u64 bytes) {
  {
    std::shared_lock lock(peersMutex_);
    common::checkInvariant(from < peers_.size() && to < peers_.size(),
                           "SimNetwork::send: bad peer id");
    if (!peers_[to].online) {
      obs::count("net.drops");
      return false;
    }
    stats_.messages += 1;
    stats_.bytes += bytes;
    if (obs::metrics() != nullptr) {
      obs::count("net.messages");
      obs::count("net.bytes", bytes);
    }
    peers_[from].stats.messagesOut += 1;
    peers_[from].stats.bytesOut += bytes;
    peers_[to].stats.messagesIn += 1;
    peers_[to].stats.bytesIn += bytes;
  }
  if (tlsRound_.net == this) {
    tlsRound_.entryMs += perHopLatencyMs_;
  } else if (SimClock* c = chargeClock(); c != nullptr) {
    c->advance(perHopLatencyMs_);
  }
  return true;
}

void SimNetwork::beginParallelRound() {
  common::checkInvariant(tlsRound_.net == nullptr,
                         "SimNetwork: parallel rounds do not nest");
  tlsRound_ = RoundState{this, 0, 0};
}

void SimNetwork::nextRoundEntry() {
  tlsRound_.maxMs = std::max(tlsRound_.maxMs, tlsRound_.entryMs);
  tlsRound_.entryMs = 0;
}

void SimNetwork::endParallelRound() {
  nextRoundEntry();
  const u64 maxMs = tlsRound_.maxMs;
  tlsRound_ = RoundState{};
  // Critical-path RTT of the whole round: this is the simulated time the
  // batch actually costs, so it is what the round histogram records.
  obs::observeMs("net.round_rtt_ms", static_cast<double>(maxMs));
  if (SimClock* c = chargeClock(); c != nullptr && maxMs > 0) c->advance(maxMs);
}

SimNetwork::ParallelRound::ParallelRound(SimNetwork& net) : net_(net) {
  net_.beginParallelRound();
}

SimNetwork::ParallelRound::~ParallelRound() { net_.endParallelRound(); }

void SimNetwork::ParallelRound::nextEntry() { net_.nextRoundEntry(); }

void SimNetwork::attachClock(SimClock* clock, u64 perHopLatencyMs) {
  clock_ = clock;
  perHopLatencyMs_ = perHopLatencyMs;
}

size_t SimNetwork::peerCount() const {
  std::shared_lock lock(peersMutex_);
  return peers_.size();
}

std::string SimNetwork::peerName(PeerId id) const {
  std::shared_lock lock(peersMutex_);
  common::checkInvariant(id < peers_.size(), "SimNetwork: bad peer id");
  return peers_[id].name;
}

PeerStats SimNetwork::peerStats(PeerId id) const {
  std::shared_lock lock(peersMutex_);
  common::checkInvariant(id < peers_.size(), "SimNetwork: bad peer id");
  return peers_[id].stats;
}

void SimNetwork::resetStats() {
  std::unique_lock lock(peersMutex_);
  stats_.reset();
  for (auto& p : peers_) p.stats = PeerStats{};
}

double SimNetwork::meanPeerLoad() const {
  std::shared_lock lock(peersMutex_);
  u64 total = 0;
  u64 online = 0;
  for (const auto& p : peers_) {
    if (!p.online) continue;
    total += p.stats.messagesIn;
    online += 1;
  }
  return online == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(online);
}

u64 SimNetwork::maxPeerLoad() const {
  std::shared_lock lock(peersMutex_);
  u64 best = 0;
  for (const auto& p : peers_)
    if (p.online) best = std::max<u64>(best, p.stats.messagesIn);
  return best;
}

}  // namespace lht::net
