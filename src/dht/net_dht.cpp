#include "dht/net_dht.h"

#include <algorithm>

#include "common/types.h"

namespace lht::dht {

using common::u64;
using namespace rpc::wire;  // NOLINT — this file IS the protocol client

// --- Connection pool --------------------------------------------------------

class NetDht::Lease {
 public:
  explicit Lease(const NetDht& dht) : dht_(dht) {
    std::lock_guard<std::mutex> lock(dht_.poolMutex_);
    if (dht_.freeConns_.empty()) {
      auto conn = std::make_unique<Conn>();
      conn->transport = dht_.makeTransport_();
      conn->rpc = std::make_unique<rpc::RpcClient>(*conn->transport,
                                                   dht_.opts_.rpc);
      dht_.conns_.push_back(std::move(conn));
      idx_ = dht_.conns_.size() - 1;
    } else {
      idx_ = dht_.freeConns_.back();
      dht_.freeConns_.pop_back();
    }
    // Resolve the Conn pointer while still holding poolMutex_: a
    // concurrent Lease's push_back may reallocate conns_'s buffer, so
    // rpc() must never re-index it unlocked. The unique_ptr pointee is
    // stable across reallocation, and this slot is ours until ~Lease.
    conn_ = dht_.conns_[idx_].get();
  }
  ~Lease() {
    std::lock_guard<std::mutex> lock(dht_.poolMutex_);
    dht_.freeConns_.push_back(idx_);
  }
  Lease(const Lease&) = delete;
  Lease& operator=(const Lease&) = delete;

  [[nodiscard]] rpc::RpcClient& rpc() { return *conn_->rpc; }

 private:
  const NetDht& dht_;
  size_t idx_;
  Conn* conn_;
};

// --- Construction -----------------------------------------------------------

NetDht::NetDht(Options options, TransportFactory makeTransport)
    : opts_(std::move(options)),
      ring_(opts_.nodes.size(), opts_.virtualNodes),
      makeTransport_(std::move(makeTransport)) {
  common::checkInvariant(!opts_.nodes.empty(), "NetDht: need >= 1 node");
  common::checkInvariant(opts_.replication >= 1, "NetDht: replication >= 1");
  common::checkInvariant(opts_.maxKeysPerDatagram >= 1,
                         "NetDht: maxKeysPerDatagram >= 1");
}

NetDht::~NetDht() = default;

size_t NetDht::replicaFanout() const {
  return std::min(opts_.replication, opts_.nodes.size()) - 1;
}

std::vector<size_t> NetDht::holdersOf(const Key& key) const {
  return ring_.holders(key, replicaFanout());
}

// --- Helpers ----------------------------------------------------------------

namespace {

[[noreturn]] void throwTimeout(const char* op, const Key& key) {
  throw DhtTimeoutError(std::string("NetDht::") + op + ": rpc timeout on \"" +
                        key + "\"");
}

void checkStatus(const rpc::RpcClient::Result& r, const char* op,
                 const Key& key) {
  if (r.timedOut) throwTimeout(op, key);
  if (r.status != Status::Ok) {
    throw DhtError(std::string("NetDht::") + op + ": status " +
                   statusName(r.status) + " on \"" + key + "\"");
  }
}

}  // namespace

void NetDht::replicate(rpc::RpcClient& cli, const std::vector<size_t>& holders,
                       const Key& key, const std::optional<Value>& value,
                       u64 version) {
  if (holders.size() <= 1) return;
  std::vector<rpc::RpcClient::Token> tokens;
  tokens.reserve(holders.size() - 1);
  for (size_t i = 1; i < holders.size(); ++i) {
    if (value.has_value()) {
      tokens.push_back(cli.call(addrOf(holders[i]),
                                ReplicaPutReq{key, *value, version}));
    } else {
      tokens.push_back(cli.call(addrOf(holders[i]), ReplicaRemoveReq{key}));
    }
  }
  cli.settle();
  // Best-effort: the primary already committed. A silent holder shows up
  // in netStats().timeouts; a later read of that replica misses (stale),
  // which failover treats as any other replica miss.
  for (auto t : tokens) (void)cli.take(t);
}

// --- Single-key ops ---------------------------------------------------------

void NetDht::put(const Key& key, Value value) {
  RoutedOpScope scope(*this, "dht.put", key);
  stats_.lookups += 1;
  stats_.puts += 1;
  stats_.hops += 1;  // client -> owner, single-hop by construction
  stats_.valueBytesMoved += value.size();
  Lease lease(*this);
  const auto holders = holdersOf(key);
  auto r = lease.rpc().callOne(addrOf(holders[0]), PutReq{key, value});
  checkStatus(r, "put", key);
  const u64 version = std::get<PutRep>(r.body).version;
  replicate(lease.rpc(), holders, key, value, version);
}

std::optional<Value> NetDht::get(const Key& key) {
  RoutedOpScope scope(*this, "dht.get", key);
  stats_.lookups += 1;
  stats_.gets += 1;
  stats_.hops += 1;
  Lease lease(*this);
  auto r = lease.rpc().callOne(addrOf(ring_.ownerIndex(key)), GetReq{key});
  checkStatus(r, "get", key);
  auto& rep = std::get<GetRep>(r.body);
  if (!rep.present) return std::nullopt;
  stats_.valueBytesMoved += rep.value.size();
  return std::move(rep.value);
}

bool NetDht::remove(const Key& key) {
  RoutedOpScope scope(*this, "dht.remove", key);
  stats_.lookups += 1;
  stats_.removes += 1;
  stats_.hops += 1;
  Lease lease(*this);
  const auto holders = holdersOf(key);
  auto r = lease.rpc().callOne(addrOf(holders[0]), RemoveReq{key});
  checkStatus(r, "remove", key);
  const bool existed = std::get<RemoveRep>(r.body).existed;
  if (existed) replicate(lease.rpc(), holders, key, std::nullopt, 0);
  return existed;
}

bool NetDht::apply(const Key& key, const Mutator& fn) {
  RoutedOpScope scope(*this, "dht.apply", key);
  stats_.lookups += 1;
  stats_.applies += 1;
  stats_.hops += 1;
  Lease lease(*this);
  rpc::RpcClient& cli = lease.rpc();
  const auto holders = holdersOf(key);
  const rpc::NetAddr& owner = addrOf(holders[0]);

  auto g = cli.callOne(owner, GetReq{key});
  checkStatus(g, "apply", key);
  auto& snap = std::get<GetRep>(g.body);
  bool present = snap.present;
  u64 version = snap.version;
  Value current = std::move(snap.value);

  for (size_t attempt = 0; attempt < opts_.casRetries; ++attempt) {
    std::optional<Value> v =
        present ? std::optional<Value>(current) : std::nullopt;
    const bool existedBefore = present;
    fn(v);
    if (!v.has_value() && !present) return false;   // absent -> absent
    if (v.has_value() && present && *v == current) return true;  // no change
    if (v.has_value()) stats_.valueBytesMoved += v->size();

    CasReq cas{key, version, v.has_value(), v.value_or(Value{})};
    auto r = cli.callOne(owner, std::move(cas));
    checkStatus(r, "apply", key);
    auto& rep = std::get<CasRep>(r.body);
    if (rep.applied) {
      replicate(cli, holders, key, v, rep.currentVersion);
      return existedBefore;
    }
    // Conflict: the reply carries the fresh state — retry the mutator
    // against it without another GET round.
    present = rep.currentPresent;
    version = rep.currentVersion;
    current = std::move(rep.currentValue);
  }
  throw DhtError("NetDht::apply: CAS contention exhausted " +
                 std::to_string(opts_.casRetries) + " attempts on \"" + key +
                 "\"");
}

// --- Batch rounds -----------------------------------------------------------

namespace {

/// One outgoing batch datagram: entry indices packed for one node.
struct Chunk {
  size_t node = 0;
  std::vector<size_t> entries;
};

/// Groups entry indices by owner node, splitting whenever a chunk hits
/// the key-count or byte cap. `byteCost(i)` approximates entry i's wire
/// footprint.
template <typename ByteCost>
std::vector<Chunk> packChunks(const std::vector<size_t>& owners,
                              size_t maxKeys, size_t maxBytes,
                              ByteCost byteCost) {
  std::vector<Chunk> chunks;
  std::vector<int> openChunk(
      *std::max_element(owners.begin(), owners.end()) + 1, -1);
  std::vector<size_t> chunkBytes;
  for (size_t i = 0; i < owners.size(); ++i) {
    const size_t node = owners[i];
    int c = openChunk[node];
    const size_t cost = byteCost(i);
    if (c < 0 || chunks[c].entries.size() >= maxKeys ||
        chunkBytes[c] + cost > maxBytes) {
      openChunk[node] = static_cast<int>(chunks.size());
      chunks.push_back(Chunk{node, {}});
      chunkBytes.push_back(0);
      c = openChunk[node];
    }
    chunks[c].entries.push_back(i);
    chunkBytes[c] += cost;
  }
  return chunks;
}

}  // namespace

std::vector<GetOutcome> NetDht::multiGet(const std::vector<Key>& keys) {
  if (keys.empty()) return {};
  obs::SpanScope span("dht.multiGet", "dht");
  stats_.batchRounds += 1;
  stats_.lookups += keys.size();
  stats_.gets += keys.size();
  stats_.hops += keys.size();

  std::vector<size_t> owners(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) owners[i] = ring_.ownerIndex(keys[i]);
  const auto chunks =
      packChunks(owners, opts_.maxKeysPerDatagram, opts_.maxBytesPerDatagram,
                 [&](size_t i) { return keys[i].size() + 8; });

  Lease lease(*this);
  rpc::RpcClient& cli = lease.rpc();
  std::vector<rpc::RpcClient::Token> tokens;
  tokens.reserve(chunks.size());
  for (const Chunk& c : chunks) {
    MultiGetReq req;
    req.entries.reserve(c.entries.size());
    for (size_t i : c.entries) req.entries.push_back(GetReq{keys[i]});
    tokens.push_back(cli.call(addrOf(c.node), std::move(req)));
  }
  cli.settle();

  std::vector<GetOutcome> out(keys.size());
  for (size_t ci = 0; ci < chunks.size(); ++ci) {
    auto r = cli.take(tokens[ci]);
    if (r.timedOut || r.status != Status::Ok) {
      const std::string err = r.timedOut
                                  ? "NetDht::multiGet: rpc timeout"
                                  : std::string("NetDht::multiGet: status ") +
                                        statusName(r.status);
      for (size_t i : chunks[ci].entries) out[i].error = err;
      continue;
    }
    auto& rep = std::get<MultiGetRep>(r.body);
    common::checkInvariant(rep.entries.size() == chunks[ci].entries.size(),
                           "NetDht::multiGet: entry count mismatch");
    for (size_t j = 0; j < rep.entries.size(); ++j) {
      GetOutcome& o = out[chunks[ci].entries[j]];
      o.ok = true;
      if (rep.entries[j].present) {
        stats_.valueBytesMoved += rep.entries[j].value.size();
        o.value = std::move(rep.entries[j].value);
      }
    }
  }
  return out;
}

std::vector<ApplyOutcome> NetDht::multiApply(
    const std::vector<ApplyRequest>& reqs) {
  if (reqs.empty()) return {};
  obs::SpanScope span("dht.multiApply", "dht");
  stats_.batchRounds += 1;
  stats_.lookups += reqs.size();
  stats_.applies += reqs.size();
  stats_.hops += reqs.size();

  std::vector<ApplyOutcome> out(reqs.size());
  Lease lease(*this);
  rpc::RpcClient& cli = lease.rpc();

  // Per-entry CAS state, refreshed by GET rounds / conflict replies.
  struct State {
    bool present = false;
    u64 version = 0;
    Value value;
    bool existedAtFirstCas = false;
  };
  std::vector<State> state(reqs.size());
  std::vector<size_t> owners(reqs.size());
  for (size_t i = 0; i < reqs.size(); ++i) {
    owners[i] = ring_.ownerIndex(reqs[i].key);
  }

  // Round 0: snapshot every key (batched GETs).
  std::vector<size_t> active;
  {
    const auto chunks =
        packChunks(owners, opts_.maxKeysPerDatagram, opts_.maxBytesPerDatagram,
                   [&](size_t i) { return reqs[i].key.size() + 8; });
    std::vector<rpc::RpcClient::Token> tokens;
    tokens.reserve(chunks.size());
    for (const Chunk& c : chunks) {
      MultiGetReq req;
      for (size_t i : c.entries) req.entries.push_back(GetReq{reqs[i].key});
      tokens.push_back(cli.call(addrOf(c.node), std::move(req)));
    }
    cli.settle();
    for (size_t ci = 0; ci < chunks.size(); ++ci) {
      auto r = cli.take(tokens[ci]);
      if (r.timedOut || r.status != Status::Ok) {
        for (size_t i : chunks[ci].entries) {
          out[i].error = "NetDht::multiApply: snapshot rpc timeout";
        }
        continue;
      }
      auto& rep = std::get<MultiGetRep>(r.body);
      for (size_t j = 0; j < rep.entries.size(); ++j) {
        const size_t i = chunks[ci].entries[j];
        state[i].present = rep.entries[j].present;
        state[i].version = rep.entries[j].version;
        state[i].value = std::move(rep.entries[j].value);
        active.push_back(i);
      }
    }
  }

  // CAS rounds: run mutators locally, batch the writes, retry conflicts.
  std::vector<std::pair<Key, std::pair<std::optional<Value>, u64>>> toReplicate;
  for (size_t round = 0; round < opts_.casRetries && !active.empty(); ++round) {
    std::vector<size_t> casEntries;   // indices into reqs
    std::vector<CasReq> casReqs;
    for (size_t i : active) {
      State& s = state[i];
      std::optional<Value> v =
          s.present ? std::optional<Value>(s.value) : std::nullopt;
      reqs[i].fn(v);
      if (!v.has_value() && !s.present) {  // absent -> absent: no-op
        out[i].ok = true;
        out[i].existed = false;
        continue;
      }
      if (v.has_value() && s.present && *v == s.value) {  // no change
        out[i].ok = true;
        out[i].existed = true;
        continue;
      }
      if (v.has_value()) stats_.valueBytesMoved += v->size();
      s.existedAtFirstCas = s.present;
      casEntries.push_back(i);
      casReqs.push_back(
          CasReq{reqs[i].key, s.version, v.has_value(), v.value_or(Value{})});
    }
    active.clear();
    if (casEntries.empty()) break;

    std::vector<size_t> casOwners(casEntries.size());
    for (size_t j = 0; j < casEntries.size(); ++j) {
      casOwners[j] = owners[casEntries[j]];
    }
    const auto chunks = packChunks(
        casOwners, opts_.maxKeysPerDatagram, opts_.maxBytesPerDatagram,
        [&](size_t j) { return casReqs[j].key.size() + casReqs[j].value.size() + 16; });
    std::vector<rpc::RpcClient::Token> tokens;
    tokens.reserve(chunks.size());
    for (const Chunk& c : chunks) {
      MultiCasReq req;
      for (size_t j : c.entries) req.entries.push_back(casReqs[j]);
      tokens.push_back(cli.call(addrOf(c.node), std::move(req)));
    }
    cli.settle();
    for (size_t ci = 0; ci < chunks.size(); ++ci) {
      auto r = cli.take(tokens[ci]);
      if (r.timedOut || r.status != Status::Ok) {
        // Lost reply: the CAS may or may not have executed — exactly the
        // documented lost-reply semantics for a failed apply entry.
        for (size_t j : chunks[ci].entries) {
          out[casEntries[j]].error = "NetDht::multiApply: cas rpc timeout";
        }
        continue;
      }
      auto& rep = std::get<MultiCasRep>(r.body);
      for (size_t k = 0; k < rep.entries.size(); ++k) {
        const size_t j = chunks[ci].entries[k];
        const size_t i = casEntries[j];
        CasRep& cr = rep.entries[k];
        if (cr.applied) {
          out[i].ok = true;
          out[i].existed = state[i].existedAtFirstCas;
          toReplicate.emplace_back(
              reqs[i].key,
              std::make_pair(casReqs[j].present
                                 ? std::optional<Value>(casReqs[j].value)
                                 : std::nullopt,
                             cr.currentVersion));
        } else {
          state[i].present = cr.currentPresent;
          state[i].version = cr.currentVersion;
          state[i].value = std::move(cr.currentValue);
          active.push_back(i);  // conflict: retry next round
        }
      }
    }
  }
  for (size_t i : active) {
    out[i].error = "NetDht::multiApply: CAS contention exhausted";
  }

  // Replica pushes for every applied mutation, all in one settle.
  if (replicaFanout() > 0 && !toReplicate.empty()) {
    std::vector<rpc::RpcClient::Token> tokens;
    for (const auto& [key, vv] : toReplicate) {
      const auto holders = holdersOf(key);
      for (size_t h = 1; h < holders.size(); ++h) {
        if (vv.first.has_value()) {
          tokens.push_back(cli.call(
              addrOf(holders[h]), ReplicaPutReq{key, *vv.first, vv.second}));
        } else {
          tokens.push_back(cli.call(addrOf(holders[h]), ReplicaRemoveReq{key}));
        }
      }
    }
    cli.settle();
    for (auto t : tokens) (void)cli.take(t);
  }
  return out;
}

// --- Unrouted / admin -------------------------------------------------------

void NetDht::unaccountedPut(const Key& key, Value value) {
  Lease lease(*this);
  const auto holders = holdersOf(key);
  auto r = lease.rpc().callOne(addrOf(holders[0]), PutReq{key, value});
  checkStatus(r, "storeDirect", key);
  replicate(lease.rpc(), holders, key, value,
            std::get<PutRep>(r.body).version);
}

void NetDht::storeDirect(const Key& key, Value value) {
  unaccountedPut(key, std::move(value));
}

std::optional<Value> NetDht::getReplica(const Key& key, size_t replicaIndex) {
  RoutedOpScope scope(*this, "dht.get_replica", key);
  stats_.lookups += 1;
  stats_.gets += 1;
  stats_.hops += 1;
  if (replicaIndex >= replicaFanout()) {
    throw DhtError("NetDht::getReplica: no replica " +
                   std::to_string(replicaIndex) + " (fanout " +
                   std::to_string(replicaFanout()) + ")");
  }
  const auto holders = holdersOf(key);
  Lease lease(*this);
  auto r = lease.rpc().callOne(addrOf(holders[replicaIndex + 1]),
                               ReplicaGetReq{key});
  if (r.timedOut) {
    // A holder that stays silent through every retransmit is down, as far
    // as this client can tell — that is the failover decorators' cue.
    throw DhtPeerDownError("NetDht::getReplica: holder " +
                           addrOf(holders[replicaIndex + 1]).str() +
                           " unresponsive for \"" + key + "\"");
  }
  checkStatus(r, "getReplica", key);
  auto& rep = std::get<GetRep>(r.body);
  if (!rep.present) return std::nullopt;
  stats_.valueBytesMoved += rep.value.size();
  return std::move(rep.value);
}

void NetDht::syncStorage() {
  Lease lease(*this);
  std::vector<rpc::RpcClient::Token> tokens;
  for (size_t n = 0; n < opts_.nodes.size(); ++n) {
    tokens.push_back(lease.rpc().call(addrOf(n), SyncReq{}));
  }
  lease.rpc().settle();
  for (auto t : tokens) (void)lease.rpc().take(t);
}

void NetDht::compactStorage() {
  Lease lease(*this);
  std::vector<rpc::RpcClient::Token> tokens;
  for (size_t n = 0; n < opts_.nodes.size(); ++n) {
    tokens.push_back(lease.rpc().call(addrOf(n), CompactReq{}));
  }
  lease.rpc().settle();
  for (auto t : tokens) (void)lease.rpc().take(t);
}

size_t NetDht::size() const {
  Lease lease(*this);
  std::vector<rpc::RpcClient::Token> tokens;
  for (size_t n = 0; n < opts_.nodes.size(); ++n) {
    tokens.push_back(lease.rpc().call(addrOf(n), SizeReq{}));
  }
  lease.rpc().settle();
  size_t total = 0;
  for (auto t : tokens) {
    auto r = lease.rpc().take(t);
    if (r.timedOut) {
      throw DhtTimeoutError("NetDht::size: a node did not answer");
    }
    total += static_cast<size_t>(std::get<SizeRep>(r.body).primaryKeys);
  }
  return total;
}

bool NetDht::pingAll(u64 deadlineMs) {
  Lease lease(*this);
  rpc::RpcClient& cli = lease.rpc();
  const u64 start = cli.transport().nowMs();
  std::vector<bool> up(opts_.nodes.size(), false);
  size_t remaining = opts_.nodes.size();
  while (remaining > 0) {
    // Ping every still-silent node concurrently: a round costs at most
    // one requestDeadline regardless of how many nodes are down, so the
    // overshoot past deadlineMs is bounded by a single request deadline
    // — not one per unresponsive node.
    std::vector<std::pair<size_t, rpc::RpcClient::Token>> round;
    round.reserve(remaining);
    for (size_t n = 0; n < opts_.nodes.size(); ++n) {
      if (!up[n]) round.emplace_back(n, cli.call(addrOf(n), PingReq{}));
    }
    cli.settle();
    for (const auto& [n, t] : round) {
      auto r = cli.take(t);
      if (!r.timedOut && r.status == Status::Ok) {
        up[n] = true;
        remaining -= 1;
      }
    }
    if (remaining == 0) return true;
    if (cli.transport().nowMs() - start >= deadlineMs) return false;
  }
  return true;
}

NetDht::NetStats NetDht::netStats() const {
  NetStats s;
  std::lock_guard<std::mutex> lock(poolMutex_);
  for (const auto& conn : conns_) {
    const auto& t = conn->transport->stats();
    s.datagramsSent += t.datagramsSent;
    s.datagramsReceived += t.datagramsReceived;
    s.bytesSent += t.bytesSent;
    s.bytesReceived += t.bytesReceived;
    const auto& r = conn->rpc->stats();
    s.requestsStarted += r.requestsStarted;
    s.retransmits += r.retransmits;
    s.timeouts += r.timeouts;
  }
  s.connections = conns_.size();
  return s;
}

}  // namespace lht::dht
