#include "dht/local_dht.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "common/codec.h"

namespace lht::dht {

namespace {
constexpr common::u32 kSnapshotMagic = 0x4C444854;  // "LDHT"
}  // namespace

void LocalDht::put(const Key& key, Value value) {
  RoutedOpScope scope(*this, "dht.put", key);
  stats_.lookups += 1;
  stats_.puts += 1;
  stats_.hops += 1;
  stats_.valueBytesMoved += value.size();
  Shard& s = shardFor(key);
  std::lock_guard lock(s.mutex);
  s.store[key] = std::move(value);
}

std::optional<Value> LocalDht::get(const Key& key) {
  RoutedOpScope scope(*this, "dht.get", key);
  stats_.lookups += 1;
  stats_.gets += 1;
  stats_.hops += 1;
  Shard& s = shardFor(key);
  std::lock_guard lock(s.mutex);
  auto it = s.store.find(key);
  if (it == s.store.end()) return std::nullopt;
  stats_.valueBytesMoved += it->second.size();
  return it->second;
}

bool LocalDht::remove(const Key& key) {
  RoutedOpScope scope(*this, "dht.remove", key);
  stats_.lookups += 1;
  stats_.removes += 1;
  stats_.hops += 1;
  Shard& s = shardFor(key);
  std::lock_guard lock(s.mutex);
  return s.store.erase(key) > 0;
}

bool LocalDht::apply(const Key& key, const Mutator& fn) {
  RoutedOpScope scope(*this, "dht.apply", key);
  stats_.lookups += 1;
  stats_.applies += 1;
  stats_.hops += 1;
  Shard& s = shardFor(key);
  std::lock_guard lock(s.mutex);
  auto it = s.store.find(key);
  const bool existed = it != s.store.end();
  std::optional<Value> v;
  if (existed) v = std::move(it->second);
  fn(v);
  if (v.has_value()) {
    s.store[key] = std::move(*v);
  } else if (existed) {
    s.store.erase(key);
  }
  return existed;
}

void LocalDht::storeDirect(const Key& key, Value value) {
  Shard& s = shardFor(key);
  std::lock_guard lock(s.mutex);
  s.store[key] = std::move(value);
}

size_t LocalDht::size() const {
  size_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard lock(s.mutex);
    total += s.store.size();
  }
  return total;
}

bool LocalDht::saveSnapshot(const std::string& path) const {
  // Lock every shard for the duration so the snapshot is a consistent cut.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(kShards);
  for (const auto& s : shards_) locks.emplace_back(s.mutex);
  common::Encoder enc;
  enc.putU32(kSnapshotMagic);
  common::u32 count = 0;
  for (const auto& s : shards_) count += static_cast<common::u32>(s.store.size());
  enc.putU32(count);
  for (const auto& s : shards_) {
    for (const auto& [k, v] : s.store) {
      enc.putString(k);
      enc.putString(v);
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const std::string& bytes = enc.buffer();
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

bool LocalDht::loadSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();
  common::Decoder dec(bytes);
  auto magic = dec.getU32();
  auto count = dec.getU32();
  if (!magic || *magic != kSnapshotMagic || !count) return false;
  std::unordered_map<Key, Value> fresh;
  fresh.reserve(*count);
  for (common::u32 i = 0; i < *count; ++i) {
    auto k = dec.getString();
    auto v = dec.getString();
    if (!k || !v) return false;
    fresh.emplace(std::move(*k), std::move(*v));
  }
  if (!dec.atEnd()) return false;
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(kShards);
  for (auto& s : shards_) locks.emplace_back(s.mutex);
  for (auto& s : shards_) s.store.clear();
  for (auto& [k, v] : fresh) {
    Shard& s = shardFor(k);
    s.store.emplace(std::move(k), std::move(v));
  }
  return true;
}

}  // namespace lht::dht
