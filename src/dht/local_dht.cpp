#include "dht/local_dht.h"

#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "common/codec.h"

namespace lht::dht {

namespace {
constexpr common::u32 kSnapshotMagic = 0x4C444854;  // "LDHT"
}  // namespace

LocalDht::LocalDht() : engine_(store::makeMemEngine()) {}

LocalDht::LocalDht(std::unique_ptr<store::StorageEngine> engine)
    : engine_(std::move(engine)) {}

void LocalDht::put(const Key& key, Value value) {
  RoutedOpScope scope(*this, "dht.put", key);
  stats_.lookups += 1;
  stats_.puts += 1;
  stats_.hops += 1;
  stats_.valueBytesMoved += value.size();
  engine_->put(key, std::move(value));
}

std::optional<Value> LocalDht::get(const Key& key) {
  RoutedOpScope scope(*this, "dht.get", key);
  stats_.lookups += 1;
  stats_.gets += 1;
  stats_.hops += 1;
  auto v = engine_->get(key);
  if (v) stats_.valueBytesMoved += v->size();
  return v;
}

bool LocalDht::remove(const Key& key) {
  RoutedOpScope scope(*this, "dht.remove", key);
  stats_.lookups += 1;
  stats_.removes += 1;
  stats_.hops += 1;
  return engine_->erase(key);
}

bool LocalDht::apply(const Key& key, const Mutator& fn) {
  RoutedOpScope scope(*this, "dht.apply", key);
  stats_.lookups += 1;
  stats_.applies += 1;
  stats_.hops += 1;
  return engine_->apply(key, fn);
}

void LocalDht::storeDirect(const Key& key, Value value) {
  engine_->put(key, std::move(value));
}

size_t LocalDht::size() const { return engine_->size(); }

bool LocalDht::saveSnapshot(const std::string& path) const {
  // The engine's forEach is one consistent cut of the whole store.
  common::Encoder enc;
  enc.putU32(kSnapshotMagic);
  common::Encoder body;
  common::u32 count = 0;
  engine_->forEach([&](const Key& k, const Value& v) {
    body.putString(k);
    body.putString(v);
    ++count;
  });
  enc.putU32(count);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const std::string& head = enc.buffer();
  out.write(head.data(), static_cast<std::streamsize>(head.size()));
  const std::string& bytes = body.buffer();
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

bool LocalDht::loadSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();
  common::Decoder dec(bytes);
  auto magic = dec.getU32();
  auto count = dec.getU32();
  if (!magic || *magic != kSnapshotMagic || !count) return false;
  std::vector<std::pair<Key, Value>> fresh;
  fresh.reserve(*count);
  for (common::u32 i = 0; i < *count; ++i) {
    auto k = dec.getString();
    auto v = dec.getString();
    if (!k || !v) return false;
    fresh.emplace_back(std::move(*k), std::move(*v));
  }
  if (!dec.atEnd()) return false;
  engine_->clear();
  for (auto& [k, v] : fresh) engine_->put(k, std::move(v));
  return true;
}

}  // namespace lht::dht
