// RoutedNetDht: the Dht interface against a self-routing overlay cluster
// (DESIGN.md §15).
//
// Where NetDht is configured with the complete node list up front,
// RoutedNetDht knows only one seed endpoint. It bootstraps by
// gossip-pulling the seed's membership table (GossipSync with senderId 0
// marks a client pull), builds the same ring every overlay node computes
// (MemberRing is a pure function of the table), and from then on routes
// ops directly to owners — warm lookups are one hop, exactly like the
// static client.
//
// The view heals itself three ways, all lazy:
//  * Redirect — an op that lands on the wrong node (stale view during a
//    join/leave) comes back Status::Redirect with the fresh owner
//    endpoint; the client re-pulls the table and retries. When
//    forwarding is enabled server-side the op instead succeeds in one
//    client round trip and only the hint reveals the staleness.
//  * Gossip hints — every overlay reply trailer carries (senderId, table
//    version). A version bump from a node we've heard before means the
//    membership changed; the next op triggers a background-free re-pull.
//  * Timeouts — a silent owner gets one view refresh + retry before the
//    op fails with DhtTimeoutError (a crashed node's range moves to the
//    promoted survivor, so the retry usually lands).
//
// Batched ops group by owner under the current view; a Redirect on any
// chunk refreshes the view and regroups just the affected entries, so a
// single mid-batch topology change costs one extra round for those keys,
// not a failed batch.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "dht/dht.h"
#include "overlay/membership.h"
#include "rpc/rpc_client.h"
#include "rpc/transport.h"

namespace lht::dht {

class RoutedNetDht final : public Dht {
 public:
  using TransportFactory = std::function<std::unique_ptr<rpc::Transport>()>;

  struct Options {
    /// Any live overlay member; everything else is learned.
    rpc::NetAddr seed;
    /// Must match the cluster's overlay options (the ring is a pure
    /// function of table + these).
    size_t virtualNodes = 32;
    size_t replication = 1;
    rpc::RpcClient::Options rpc;
    size_t maxKeysPerDatagram = 32;
    size_t maxBytesPerDatagram = 48 * 1024;
    size_t casRetries = 16;
    /// Client-side attempts per op (each attempt = route + one RPC);
    /// redirects and refresh-retries consume attempts.
    size_t maxAttempts = 4;
    /// Batch regroup rounds after Redirects.
    size_t maxBatchRounds = 4;
  };

  struct RoutedStats {
    common::u64 bootstraps = 0;       ///< successful table pulls
    common::u64 refreshes = 0;        ///< view rebuilds after the first
    common::u64 redirectsFollowed = 0;
    common::u64 staleHints = 0;       ///< hint version bumps observed
    common::u64 retriesAfterTimeout = 0;
    common::u64 connections = 0;
  };

  RoutedNetDht(Options options, TransportFactory makeTransport);
  ~RoutedNetDht() override;

  /// Pulls the membership table from the seed, retrying until it answers
  /// with a non-empty table or `deadlineMs` of transport time passes.
  /// Ops before a successful bootstrap throw DhtTimeoutError. Safe to
  /// call again (acts as a forced refresh).
  bool bootstrap(common::u64 deadlineMs);

  // Dht interface ------------------------------------------------------------
  void put(const Key& key, Value value) override;
  std::optional<Value> get(const Key& key) override;
  bool remove(const Key& key) override;
  bool apply(const Key& key, const Mutator& fn) override;
  std::vector<GetOutcome> multiGet(const std::vector<Key>& keys) override;
  std::vector<ApplyOutcome> multiApply(
      const std::vector<ApplyRequest>& reqs) override;
  void storeDirect(const Key& key, Value value) override;
  [[nodiscard]] size_t replicaFanout() const override;
  std::optional<Value> getReplica(const Key& key,
                                  size_t replicaIndex) override;
  void syncStorage() override;
  void compactStorage() override;
  [[nodiscard]] size_t size() const override;

  [[nodiscard]] RoutedStats routedStats() const;
  /// Members (state <= Suspect) in the current view; 0 = not bootstrapped.
  [[nodiscard]] size_t knownMembers() const;

 private:
  struct Conn {
    std::unique_ptr<rpc::Transport> transport;
    std::unique_ptr<rpc::RpcClient> rpc;
  };
  class Lease;  // RAII borrow of one Conn

  /// Immutable routing view, atomically swapped on refresh. Readers copy
  /// the shared_ptr under a short lock and route lock-free.
  struct View {
    overlay::MemberRing ring;
    std::unordered_map<common::u64, rpc::NetAddr> addrs;  // ring members
    std::vector<rpc::NetAddr> pullTargets;  // members to refresh from
  };

  [[nodiscard]] std::shared_ptr<const View> view() const;
  [[nodiscard]] std::shared_ptr<const View> requireView() const;
  /// Pulls the table from `from` and installs a fresh view on success.
  bool pullView(rpc::RpcClient& cli, const rpc::NetAddr& from);
  /// Re-pulls from any current member (falling back to the seed).
  bool refreshView(rpc::RpcClient& cli);
  /// Tracks per-sender table versions from reply hints; a bump schedules
  /// a refresh before the next routed attempt.
  void noteHint(const std::optional<rpc::wire::GossipHint>& hint);

  /// Routes a single-key op: resolve owner, call, follow one redirect /
  /// refresh-and-retry on timeout, up to maxAttempts. Each attempt adds
  /// one to stats_.hops.
  rpc::RpcClient::Result callRouted(rpc::RpcClient& cli, const Key& key,
                                    const rpc::wire::RequestBody& body,
                                    const char* op);

  void replicate(rpc::RpcClient& cli, const View& v, const Key& key,
                 const std::optional<Value>& value, common::u64 version);
  void unaccountedPut(const Key& key, Value value);

  Options opts_;
  TransportFactory makeTransport_;

  mutable std::mutex viewMutex_;
  std::shared_ptr<const View> view_;
  std::unordered_map<common::u64, common::u64> hintVersions_;
  bool refreshWanted_ = false;

  mutable std::mutex poolMutex_;
  mutable std::vector<std::unique_ptr<Conn>> conns_;
  mutable std::vector<size_t> freeConns_;

  mutable std::mutex statsMutex_;
  RoutedStats routedStats_;
};

}  // namespace lht::dht
