#include "dht/kademlia.h"

#include "dht/batch_round.h"

#include <algorithm>
#include <bit>

#include "common/hash.h"

namespace lht::dht {

using common::u64;

namespace {
/// Index of the highest bit where a and b differ; requires a != b.
int topDifferingBit(u64 a, u64 b) { return 63 - std::countl_zero(a ^ b); }
}  // namespace

KademliaDht::KademliaDht(net::SimNetwork& network, Options options)
    : net_(network), opts_(options), rng_(options.seed, /*stream=*/0x6b6164u) {
  common::checkInvariant(opts_.initialPeers >= 1, "KademliaDht: need >= 1 peer");
  common::checkInvariant(opts_.bucketSize >= 1, "KademliaDht: k must be >= 1");
  for (size_t i = 0; i < opts_.initialPeers; ++i) {
    join("kad-peer-" + std::to_string(i));
  }
}

u64 KademliaDht::join(const std::string& name) {
  std::unique_lock topo(topoMutex_);
  u64 id = common::hash::xxhash64(name, opts_.seed ^ 0x6b61646cull);
  while (nodes_.count(id) != 0) id = common::hash::splitmix64(id);
  Node node;
  node.id = id;
  node.peer = net_.addPeer(name);
  nodes_.emplace(id, std::move(node));
  rebuildBuckets();
  rehomeAllKeys();
  rebuildReplicas();
  return id;
}

void KademliaDht::leave(u64 nodeId) {
  std::unique_lock topo(topoMutex_);
  common::checkInvariant(nodes_.size() >= 2, "KademliaDht::leave: last peer");
  auto it = nodes_.find(nodeId);
  common::checkInvariant(it != nodes_.end(), "KademliaDht::leave: unknown node");
  // Park the departing node's keys, drop it, then re-home.
  auto orphans = it->second.store.drain();
  net::PeerId fromPeer = it->second.peer;
  net_.setOnline(fromPeer, false);
  nodes_.erase(it);
  rebuildBuckets();
  for (auto& [k, v] : orphans) {
    Node& owner = nodeById(ownerOfId(common::hash::xxhash64(k, 0)));
    net_.send(fromPeer, owner.peer, k.size() + v.size());
    owner.store.put(k, std::move(v));
  }
  rehomeAllKeys();
  rebuildReplicas();
}

void KademliaDht::fail(u64 nodeId) {
  std::unique_lock topo(topoMutex_);
  common::checkInvariant(nodes_.size() >= 2, "KademliaDht::fail: last peer");
  auto it = nodes_.find(nodeId);
  common::checkInvariant(it != nodes_.end(), "KademliaDht::fail: unknown node");
  // The peer vanishes with its primaries and replicas; nothing is handed
  // off. (Removal cannot change the XOR-closest node of keys stored on
  // the survivors, so no re-homing is needed.)
  net_.setOnline(it->second.peer, false);
  nodes_.erase(it);
  rebuildBuckets();
  // Promote surviving replicas whose primary died onto the new owners.
  std::vector<std::pair<Key, Value>> recovered;
  for (auto& [id, node] : nodes_) {
    node.replicas.forEach([&](const Key& k, const Value& v) {
      if (!nodeById(ownerOfId(common::hash::xxhash64(k, 0))).store.contains(k)) {
        recovered.emplace_back(k, v);
      }
    });
  }
  for (auto& [k, v] : recovered) {
    Node& owner = nodeById(ownerOfId(common::hash::xxhash64(k, 0)));
    if (!owner.store.contains(k)) owner.store.put(k, std::move(v));
  }
  rebuildReplicas();
}

std::vector<u64> KademliaDht::replicaHoldersOf(u64 ownerId) const {
  std::vector<u64> out;
  if (opts_.replication <= 1) return out;
  const size_t want = std::min(opts_.replication, nodes_.size()) - 1;
  out.reserve(nodes_.size() - 1);
  for (const auto& [id, n] : nodes_) {
    if (id != ownerId) out.push_back(id);
  }
  std::sort(out.begin(), out.end(),
            [ownerId](u64 a, u64 b) { return (a ^ ownerId) < (b ^ ownerId); });
  out.resize(want);
  return out;
}

std::vector<u64> KademliaDht::writeSetOf(u64 ownerId) const {
  std::vector<u64> set{ownerId};
  for (u64 hid : replicaHoldersOf(ownerId)) set.push_back(hid);
  return set;
}

void KademliaDht::pushReplicas(const Node& owner, const Key& key,
                               const Value& value) {
  for (u64 hid : replicaHoldersOf(owner.id)) {
    Node& holder = nodeById(hid);
    net_.send(owner.peer, holder.peer, key.size() + value.size());
    holder.replicas.put(key, value);
  }
}

void KademliaDht::dropReplicas(u64 ownerId, const Key& key) {
  for (u64 hid : replicaHoldersOf(ownerId)) {
    nodeById(hid).replicas.erase(key);
  }
}

void KademliaDht::rebuildReplicas() {
  if (opts_.replication <= 1) return;
  for (auto& [id, node] : nodes_) node.replicas.clear();
  for (auto& [id, node] : nodes_) {
    node.store.forEach(
        [&](const Key& k, const Value& v) { pushReplicas(node, k, v); });
  }
}

std::vector<u64> KademliaDht::nodeIds() const {
  std::shared_lock topo(topoMutex_);
  std::vector<u64> ids;
  ids.reserve(nodes_.size());
  for (const auto& [id, n] : nodes_) ids.push_back(id);
  return ids;
}

u64 KademliaDht::ownerOf(const Key& key) const {
  std::shared_lock topo(topoMutex_);
  return ownerOfId(common::hash::xxhash64(key, 0));
}

KademliaDht::Node& KademliaDht::nodeById(u64 id) {
  auto it = nodes_.find(id);
  common::checkInvariant(it != nodes_.end(), "KademliaDht: unknown node id");
  return it->second;
}

const KademliaDht::Node& KademliaDht::nodeById(u64 id) const {
  auto it = nodes_.find(id);
  common::checkInvariant(it != nodes_.end(), "KademliaDht: unknown node id");
  return it->second;
}

u64 KademliaDht::ownerOfId(u64 keyId) const {
  u64 best = 0;
  u64 bestDist = ~0ull;
  bool first = true;
  for (const auto& [id, n] : nodes_) {
    u64 d = id ^ keyId;
    if (first || d < bestDist) {
      best = id;
      bestDist = d;
      first = false;
    }
  }
  return best;
}

void KademliaDht::rebuildBuckets() {
  for (auto& [id, node] : nodes_) {
    node.buckets.assign(64, {});
    for (const auto& [oid, other] : nodes_) {
      if (oid == id) continue;
      node.buckets[static_cast<size_t>(topDifferingBit(id, oid))].push_back(oid);
    }
    for (auto& bucket : node.buckets) {
      std::sort(bucket.begin(), bucket.end(),
                [id = id](u64 a, u64 b) { return (a ^ id) < (b ^ id); });
      if (bucket.size() > opts_.bucketSize) bucket.resize(opts_.bucketSize);
    }
  }
}

void KademliaDht::rehomeAllKeys() {
  // After membership changes, move any key whose closest node changed.
  std::vector<std::pair<Key, Value>> moving;
  for (auto& [id, node] : nodes_) {
    std::vector<Key> out;
    node.store.forEach([&, nodeId = id](const Key& k, const Value&) {
      if (ownerOfId(common::hash::xxhash64(k, 0)) != nodeId) out.push_back(k);
    });
    for (const auto& k : out) {
      moving.emplace_back(k, std::move(*node.store.take(k)));
    }
  }
  for (auto& [k, v] : moving) {
    nodeById(ownerOfId(common::hash::xxhash64(k, 0))).store.put(k, std::move(v));
  }
}

u64 KademliaDht::route(u64 keyId, u64 requestBytes) {
  common::checkInvariant(!nodes_.empty(), "KademliaDht: no peers");
  stats_.lookups += 1;
  auto it = nodes_.begin();
  if (opts_.randomEntry && nodes_.size() > 1) {
    common::u32 skip;
    {
      std::lock_guard rngLock(rngMutex_);
      skip = rng_.below(static_cast<common::u32>(nodes_.size()));
    }
    std::advance(it, skip);
  }
  u64 cur = it->first;
  stats_.hops += 1;  // client -> entry peer

  // Greedy descent: each node forwards to the contact in its routing table
  // closest to the target, stopping when no contact is strictly closer.
  // This provably terminates at the XOR-closest peer: if a closer peer o
  // exists, the bucket for topDifferingBit(cur, o) is non-empty and every
  // entry in it matches the key at that bit, hence is strictly closer.
  for (;;) {
    if (cur == keyId) return cur;
    const Node& node = nodeById(cur);
    u64 next = cur;
    u64 nextDist = cur ^ keyId;
    for (const auto& bucket : node.buckets) {
      for (u64 cand : bucket) {
        if ((cand ^ keyId) < nextDist) {
          next = cand;
          nextDist = cand ^ keyId;
        }
      }
    }
    if (next == cur) return cur;  // local minimum == global owner
    net_.send(node.peer, nodeById(next).peer, requestBytes);
    stats_.hops += 1;
    cur = next;
  }
}

void KademliaDht::put(const Key& key, Value value) {
  RoutedOpScope scope(*this, "dht.put", key);
  stats_.puts += 1;
  std::shared_lock topo(topoMutex_);
  u64 owner = route(common::hash::xxhash64(key, 0), key.size() + value.size());
  stats_.valueBytesMoved += value.size();
  common::StripedMutex::MultiGuard guard(storeLocks_, writeSetOf(owner));
  Node& node = nodeById(owner);
  pushReplicas(node, key, value);
  node.store.put(key, std::move(value));
}

std::optional<Value> KademliaDht::get(const Key& key) {
  RoutedOpScope scope(*this, "dht.get", key);
  stats_.gets += 1;
  std::shared_lock topo(topoMutex_);
  u64 owner = route(common::hash::xxhash64(key, 0), key.size());
  auto lock = storeLocks_.guard(owner);
  const Node& node = nodeById(owner);
  const Value* v = node.store.find(key);
  if (v == nullptr) return std::nullopt;
  stats_.valueBytesMoved += v->size();
  return *v;
}

bool KademliaDht::remove(const Key& key) {
  RoutedOpScope scope(*this, "dht.remove", key);
  stats_.removes += 1;
  std::shared_lock topo(topoMutex_);
  u64 owner = route(common::hash::xxhash64(key, 0), key.size());
  common::StripedMutex::MultiGuard guard(storeLocks_, writeSetOf(owner));
  const bool existed = nodeById(owner).store.erase(key);
  if (existed) dropReplicas(owner, key);
  return existed;
}

bool KademliaDht::apply(const Key& key, const Mutator& fn) {
  RoutedOpScope scope(*this, "dht.apply", key);
  stats_.applies += 1;
  std::shared_lock topo(topoMutex_);
  u64 owner = route(common::hash::xxhash64(key, 0), key.size());
  // Mutator runs under the owner's stripe: atomic per key.
  common::StripedMutex::MultiGuard guard(storeLocks_, writeSetOf(owner));
  Node& node = nodeById(owner);
  std::optional<Value> v = node.store.take(key);
  const bool existed = v.has_value();
  fn(v);
  if (v.has_value()) {
    stats_.valueBytesMoved += v->size();
    pushReplicas(node, key, *v);
    node.store.put(key, std::move(*v));
  } else if (existed) {
    dropReplicas(owner, key);
  }
  return existed;
}

void KademliaDht::storeDirect(const Key& key, Value value) {
  std::shared_lock topo(topoMutex_);
  const u64 owner = ownerOfId(common::hash::xxhash64(key, 0));
  common::StripedMutex::MultiGuard guard(storeLocks_, writeSetOf(owner));
  Node& node = nodeById(owner);
  pushReplicas(node, key, value);
  node.store.put(key, std::move(value));
}

size_t KademliaDht::size() const {
  std::shared_lock topo(topoMutex_);
  common::StripedMutex::AllGuard guard(storeLocks_);
  size_t n = 0;
  for (const auto& [id, node] : nodes_) n += node.store.size();
  return n;
}

bool KademliaDht::checkTables() const {
  std::shared_lock topo(topoMutex_);
  common::StripedMutex::AllGuard guard(storeLocks_);
  for (const auto& [id, node] : nodes_) {
    bool placed = true;
    node.store.forEach([&, nodeId = id](const Key& k, const Value&) {
      if (ownerOfId(common::hash::xxhash64(k, 0)) != nodeId) placed = false;
    });
    if (!placed) return false;
    if (node.buckets.size() != 64) return false;
    for (size_t b = 0; b < 64; ++b) {
      for (u64 contact : node.buckets[b]) {
        if (nodes_.count(contact) == 0) return false;
        if (static_cast<size_t>(topDifferingBit(id, contact)) != b) return false;
      }
      if (node.buckets[b].size() > opts_.bucketSize) return false;
    }
  }
  return true;
}

std::vector<GetOutcome> KademliaDht::multiGet(const std::vector<Key>& keys) {
  if (keys.empty()) return {};
  stats_.batchRounds += 1;
  return detail::roundMultiGet(*this, net_, keys);
}

std::vector<ApplyOutcome> KademliaDht::multiApply(
    const std::vector<ApplyRequest>& reqs) {
  if (reqs.empty()) return {};
  stats_.batchRounds += 1;
  return detail::roundMultiApply(*this, net_, reqs);
}

}  // namespace lht::dht
