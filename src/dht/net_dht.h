// NetDht: the Dht interface over real datagrams (DESIGN.md §14).
//
// Client-routed, single-hop: every NetDht holds the full consistent-hash
// ring (the launch-time node list), so a routed op is hash → owner →
// one RPC. Nodes are pure KV servers (rpc::NodeServer) with no inter-node
// protocol; replication is client-driven — the writer pushes copies to
// the key's successor holders, mirroring ChordDht's primary/replica
// split so getReplica and the failover decorators behave identically.
//
// apply() over a network: the mutator is an arbitrary client-side
// closure, so it cannot run at the server. NetDht uses versioned CAS —
// GET returns (value, version); the mutator runs locally; CAS applies iff
// the version is unchanged. A conflict reply carries the current
// (version, value), so each retry costs one round, not two. Mutators are
// already required to be idempotent (lost-reply semantics), which is
// exactly the property that makes CAS retries safe.
//
// multiGet/multiApply group keys by owner node and pack them into
// MultiGet/MultiCas datagrams (capped per datagram), so a round costs
// ~one datagram per involved node instead of one per key — the batching
// win bench_net measures.
//
// Transport is injected via factory: UdpTransport for real clusters,
// SimHub endpoints for deterministic tests. Each concurrent caller
// borrows a (transport, RpcClient) connection from an internal pool, so
// a ClientFleet drives one NetDht from many threads.
//
// Failure mapping: an RPC that exhausts its deadline surfaces as
// DhtTimeoutError (getReplica: DhtPeerDownError — a silent holder is a
// down holder), which is what the Retrying/Failover decorators and the
// leaf-cache lease machinery key on.
#pragma once

#include <functional>
#include <memory>
#include <mutex>

#include "dht/dht.h"
#include "rpc/ring.h"
#include "rpc/rpc_client.h"
#include "rpc/transport.h"

namespace lht::dht {

class NetDht final : public Dht {
 public:
  using TransportFactory =
      std::function<std::unique_ptr<rpc::Transport>()>;

  struct Options {
    /// Node addresses, index-aligned with the ring. Fixed for the run.
    std::vector<rpc::NetAddr> nodes;
    /// Total copies of each key (primary + replicas), clamped to the
    /// node count. 1 = no replication.
    size_t replication = 1;
    size_t virtualNodes = 32;
    rpc::RpcClient::Options rpc;
    /// Batch packing caps: keys per MultiGet/MultiCas datagram, and a
    /// soft byte budget per datagram (hard cap is kMaxDatagramBytes).
    size_t maxKeysPerDatagram = 32;
    size_t maxBytesPerDatagram = 48 * 1024;
    /// CAS attempts per apply before giving up (contention bound).
    size_t casRetries = 16;
  };

  struct NetStats {
    common::u64 datagramsSent = 0;
    common::u64 datagramsReceived = 0;
    common::u64 bytesSent = 0;
    common::u64 bytesReceived = 0;
    common::u64 requestsStarted = 0;
    common::u64 retransmits = 0;
    common::u64 timeouts = 0;
    common::u64 connections = 0;
  };

  NetDht(Options options, TransportFactory makeTransport);
  ~NetDht() override;

  // Dht interface ------------------------------------------------------------
  void put(const Key& key, Value value) override;
  std::optional<Value> get(const Key& key) override;
  bool remove(const Key& key) override;
  bool apply(const Key& key, const Mutator& fn) override;
  std::vector<GetOutcome> multiGet(const std::vector<Key>& keys) override;
  std::vector<ApplyOutcome> multiApply(
      const std::vector<ApplyRequest>& reqs) override;
  void storeDirect(const Key& key, Value value) override;
  [[nodiscard]] size_t replicaFanout() const override;
  std::optional<Value> getReplica(const Key& key,
                                  size_t replicaIndex) override;
  void syncStorage() override;
  void compactStorage() override;
  [[nodiscard]] size_t size() const override;

  // Cluster utilities --------------------------------------------------------
  /// Pings every node until all answer or `deadlineMs` of transport time
  /// passes. Returns whether the whole cluster answered. Run this before
  /// traffic: freshly exec'd daemons may not be bound yet.
  bool pingAll(common::u64 deadlineMs);

  /// Transport+RPC totals aggregated across the connection pool.
  [[nodiscard]] NetStats netStats() const;

 private:
  struct Conn {
    std::unique_ptr<rpc::Transport> transport;
    std::unique_ptr<rpc::RpcClient> rpc;
  };
  class Lease;  // RAII borrow of one Conn

  [[nodiscard]] const rpc::NetAddr& addrOf(size_t node) const {
    return opts_.nodes[node];
  }
  /// Owner + replica holders (ring order; holders[0] is the owner).
  [[nodiscard]] std::vector<size_t> holdersOf(const Key& key) const;
  /// Pushes/drops replica copies for a mutated key. Best-effort: a silent
  /// holder is counted (netStats timeouts), not thrown — the write
  /// already committed at the primary.
  void replicate(rpc::RpcClient& cli, const std::vector<size_t>& holders,
                 const Key& key, const std::optional<Value>& value,
                 common::u64 version);
  void unaccountedPut(const Key& key, Value value);

  Options opts_;
  rpc::HashRing ring_;
  TransportFactory makeTransport_;
  mutable std::mutex poolMutex_;
  mutable std::vector<std::unique_ptr<Conn>> conns_;
  mutable std::vector<size_t> freeConns_;
};

}  // namespace lht::dht
