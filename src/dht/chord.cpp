#include "dht/chord.h"

#include "dht/batch_round.h"

#include <algorithm>

#include "common/hash.h"

namespace lht::dht {

using common::u64;

namespace {

/// Whether x lies in the half-open ring interval (a, b] (clockwise).
bool inRangeOpenClosed(u64 x, u64 a, u64 b) {
  if (a == b) return true;  // the whole ring (single-node case)
  if (a < b) return x > a && x <= b;
  return x > a || x <= b;
}

/// Whether x lies in the open ring interval (a, b) (clockwise).
bool inRangeOpen(u64 x, u64 a, u64 b) {
  if (a == b) return x != a;
  if (a < b) return x > a && x < b;
  return x > a || x < b;
}

}  // namespace

ChordDht::ChordDht(net::SimNetwork& network, Options options)
    : net_(network), opts_(options), rng_(options.seed, /*stream=*/0x9E37u) {
  common::checkInvariant(opts_.initialPeers >= 1, "ChordDht: need >= 1 peer");
  common::checkInvariant(opts_.virtualNodes >= 1, "ChordDht: need >= 1 vnode");
  for (size_t i = 0; i < opts_.initialPeers; ++i) {
    join("peer-" + std::to_string(i));
  }
}

u64 ChordDht::join(const std::string& name) {
  std::unique_lock topo(topoMutex_);
  const net::PeerId peer = net_.addPeer(name);
  u64 firstId = 0;
  for (size_t v = 0; v < opts_.virtualNodes; ++v) {
    u64 id = common::hash::xxhash64(name + "#" + std::to_string(v), opts_.seed);
    // Extremely unlikely collision: perturb deterministically until free.
    while (nodes_.count(id) != 0) id = common::hash::splitmix64(id);
    Node node;
    node.id = id;
    node.peer = peer;
    nodes_.emplace(id, std::move(node));
    if (v == 0) firstId = id;
  }
  rebuildFingers();
  // Pull over every key the new ring points now own.
  for (auto& [id, node] : nodes_) {
    if (node.peer == peer) continue;
    std::vector<Key> moving;
    node.store.forEach([&](const Key& k, const Value&) {
      if (nodeById(ownerOfId(common::hash::xxhash64(k, 0))).peer == peer) {
        moving.push_back(k);
      }
    });
    for (const auto& k : moving) {
      auto v = node.store.take(k);
      Node& owner = nodeById(ownerOfId(common::hash::xxhash64(k, 0)));
      net_.send(node.peer, owner.peer, k.size() + v->size());
      owner.store.put(k, std::move(*v));
    }
  }
  rebuildReplicas();
  return firstId;
}

void ChordDht::leave(u64 nodeId) {
  std::unique_lock topo(topoMutex_);
  removePeerLocked(nodeId, /*graceful=*/true);
}

void ChordDht::fail(u64 nodeId) {
  std::unique_lock topo(topoMutex_);
  removePeerLocked(nodeId, /*graceful=*/false);
}

void ChordDht::removePeerLocked(u64 nodeId, bool graceful) {
  common::checkInvariant(peerCountUnlocked() >= 2,
                         "ChordDht::removePeer: last peer");
  const net::PeerId peer = nodeById(nodeId).peer;

  std::vector<u64> ids;
  std::vector<std::pair<Key, Value>> orphans;
  for (auto& [id, node] : nodes_) {
    if (node.peer != peer) continue;
    ids.push_back(id);
    if (graceful) {
      for (auto& kv : node.store.drain()) orphans.push_back(std::move(kv));
    }
  }
  for (u64 id : ids) nodes_.erase(id);
  rebuildFingers();

  if (graceful) {
    // The departing peer pushes its primaries to their new owners.
    for (auto& [k, v] : orphans) {
      Node& owner = nodeById(ownerOfId(common::hash::xxhash64(k, 0)));
      net_.send(peer, owner.peer, k.size() + v.size());
      owner.store.put(k, std::move(v));
    }
  } else {
    // Ungraceful: the peer's primaries and replicas are gone. Promote
    // surviving replicas whose primary died onto the new owners.
    std::vector<std::pair<Key, Value>> recovered;
    for (auto& [id, node] : nodes_) {
      node.replicas.forEach([&](const Key& k, const Value& v) {
        const u64 owner = ownerOfId(common::hash::xxhash64(k, 0));
        if (!nodeById(owner).store.contains(k)) recovered.emplace_back(k, v);
      });
    }
    for (auto& [k, v] : recovered) {
      Node& owner = nodeById(ownerOfId(common::hash::xxhash64(k, 0)));
      owner.store.put(k, std::move(v));
    }
  }
  net_.setOnline(peer, false);
  rebuildReplicas();
}

size_t ChordDht::peerCountUnlocked() const {
  std::vector<net::PeerId> peers;
  for (const auto& [id, node] : nodes_) peers.push_back(node.peer);
  std::sort(peers.begin(), peers.end());
  peers.erase(std::unique(peers.begin(), peers.end()), peers.end());
  return peers.size();
}

size_t ChordDht::peerCount() const {
  std::shared_lock topo(topoMutex_);
  return peerCountUnlocked();
}

std::vector<u64> ChordDht::nodeIds() const {
  std::shared_lock topo(topoMutex_);
  std::vector<u64> ids;
  ids.reserve(nodes_.size());
  for (const auto& [id, n] : nodes_) ids.push_back(id);
  return ids;
}

u64 ChordDht::ownerOf(const Key& key) const {
  std::shared_lock topo(topoMutex_);
  return ownerOfId(common::hash::xxhash64(key, 0));
}

size_t ChordDht::keysOn(u64 nodeId) const {
  std::shared_lock topo(topoMutex_);
  auto lock = storeLocks_.guard(nodeId);
  return nodeById(nodeId).store.size();
}

ChordDht::Node& ChordDht::nodeById(u64 id) {
  auto it = nodes_.find(id);
  common::checkInvariant(it != nodes_.end(), "ChordDht: unknown node id");
  return it->second;
}

const ChordDht::Node& ChordDht::nodeById(u64 id) const {
  auto it = nodes_.find(id);
  common::checkInvariant(it != nodes_.end(), "ChordDht: unknown node id");
  return it->second;
}

u64 ChordDht::successorOf(u64 id) const {
  auto it = nodes_.upper_bound(id);
  if (it == nodes_.end()) it = nodes_.begin();
  return it->first;
}

u64 ChordDht::ownerOfId(u64 keyId) const {
  auto it = nodes_.lower_bound(keyId);  // first node id >= keyId
  if (it == nodes_.end()) it = nodes_.begin();
  return it->first;
}

std::vector<u64> ChordDht::successorsOf(u64 id, size_t count) const {
  // Collect ring points of `count` *distinct other peers*: replicas on the
  // owner's own virtual nodes would die with it.
  std::vector<u64> out;
  std::vector<net::PeerId> seen{nodeById(id).peer};
  const size_t limit = std::min(count, peerCountUnlocked() - 1);
  u64 cur = id;
  while (out.size() < limit) {
    cur = successorOf(cur);
    const net::PeerId p = nodeById(cur).peer;
    if (std::find(seen.begin(), seen.end(), p) == seen.end()) {
      seen.push_back(p);
      out.push_back(cur);
    }
  }
  return out;
}

std::vector<u64> ChordDht::writeSetOf(u64 ownerId) const {
  std::vector<u64> set{ownerId};
  if (opts_.replication > 1) {
    for (u64 sid : successorsOf(ownerId, opts_.replication - 1))
      set.push_back(sid);
  }
  return set;
}

void ChordDht::pushReplicas(const Node& owner, const Key& key, const Value& value) {
  if (opts_.replication <= 1) return;
  for (u64 sid : successorsOf(owner.id, opts_.replication - 1)) {
    Node& holder = nodeById(sid);
    net_.send(owner.peer, holder.peer, key.size() + value.size());
    holder.replicas.put(key, value);
  }
}

void ChordDht::dropReplicas(u64 ownerId, const Key& key) {
  if (opts_.replication <= 1) return;
  // Between membership changes replicas live exactly on the owner's
  // replica holders (rebuildReplicas restores that after every churn
  // event), so the targeted erase is complete.
  for (u64 sid : successorsOf(ownerId, opts_.replication - 1)) {
    nodeById(sid).replicas.erase(key);
  }
}

void ChordDht::rebuildReplicas() {
  if (opts_.replication <= 1) return;
  for (auto& [id, node] : nodes_) node.replicas.clear();
  for (auto& [id, node] : nodes_) {
    node.store.forEach(
        [&](const Key& k, const Value& v) { pushReplicas(node, k, v); });
  }
}

void ChordDht::rebuildFingers() {
  for (auto& [id, node] : nodes_) {
    node.fingers.clear();
    node.fingers.reserve(64);
    for (int k = 0; k < 64; ++k) {
      u64 target = id + (1ull << k);  // wraps naturally mod 2^64
      u64 f = ownerOfId(target);
      if (node.fingers.empty() || node.fingers.back() != f)
        node.fingers.push_back(f);
    }
  }
}

u64 ChordDht::route(u64 keyId, u64 requestBytes) {
  common::checkInvariant(!nodes_.empty(), "ChordDht: empty ring");
  stats_.lookups += 1;

  // Pick the entry peer (the querying client's gateway into the ring).
  auto it = nodes_.begin();
  if (opts_.randomEntry && nodes_.size() > 1) {
    common::u32 skip;
    {
      std::lock_guard rngLock(rngMutex_);
      skip = rng_.below(static_cast<common::u32>(nodes_.size()));
    }
    std::advance(it, skip);
  }
  u64 cur = it->first;
  stats_.hops += 1;  // client -> entry peer

  for (;;) {
    u64 succ = successorOf(cur);
    if (inRangeOpenClosed(keyId, cur, succ)) {
      if (succ != cur) {
        net_.send(nodeById(cur).peer, nodeById(succ).peer, requestBytes);
        stats_.hops += 1;
      }
      return succ;
    }
    // Forward to the closest preceding finger of keyId.
    const Node& node = nodeById(cur);
    u64 next = succ;
    for (auto fit = node.fingers.rbegin(); fit != node.fingers.rend(); ++fit) {
      if (inRangeOpen(*fit, cur, keyId)) {
        next = *fit;
        break;
      }
    }
    if (next == cur) next = succ;  // guarantee progress
    net_.send(node.peer, nodeById(next).peer, requestBytes);
    stats_.hops += 1;
    cur = next;
  }
}

void ChordDht::put(const Key& key, Value value) {
  RoutedOpScope scope(*this, "dht.put", key);
  stats_.puts += 1;
  std::shared_lock topo(topoMutex_);
  u64 owner = route(common::hash::xxhash64(key, 0), key.size() + value.size());
  accountValueBytes(value.size());
  common::StripedMutex::MultiGuard guard(storeLocks_, writeSetOf(owner));
  Node& node = nodeById(owner);
  pushReplicas(node, key, value);
  node.store.put(key, std::move(value));
}

std::optional<Value> ChordDht::get(const Key& key) {
  RoutedOpScope scope(*this, "dht.get", key);
  stats_.gets += 1;
  std::shared_lock topo(topoMutex_);
  u64 owner = route(common::hash::xxhash64(key, 0), key.size());
  auto lock = storeLocks_.guard(owner);
  const Node& node = nodeById(owner);
  const Value* v = node.store.find(key);
  if (v == nullptr) return std::nullopt;
  accountValueBytes(v->size());
  return *v;
}

bool ChordDht::remove(const Key& key) {
  RoutedOpScope scope(*this, "dht.remove", key);
  stats_.removes += 1;
  std::shared_lock topo(topoMutex_);
  u64 owner = route(common::hash::xxhash64(key, 0), key.size());
  common::StripedMutex::MultiGuard guard(storeLocks_, writeSetOf(owner));
  const bool existed = nodeById(owner).store.erase(key);
  if (existed) dropReplicas(owner, key);
  return existed;
}

bool ChordDht::apply(const Key& key, const Mutator& fn) {
  RoutedOpScope scope(*this, "dht.apply", key);
  stats_.applies += 1;
  std::shared_lock topo(topoMutex_);
  u64 owner = route(common::hash::xxhash64(key, 0), key.size());
  // The mutator runs under the owner's stripe: apply() is atomic per key
  // against every other routed op touching that node.
  common::StripedMutex::MultiGuard guard(storeLocks_, writeSetOf(owner));
  Node& node = nodeById(owner);
  std::optional<Value> v = node.store.take(key);
  const bool existed = v.has_value();
  fn(v);
  if (v.has_value()) {
    accountValueBytes(v->size());
    pushReplicas(node, key, *v);
    node.store.put(key, std::move(*v));
  } else if (existed) {
    dropReplicas(owner, key);
  }
  return existed;
}

void ChordDht::storeDirect(const Key& key, Value value) {
  std::shared_lock topo(topoMutex_);
  u64 owner = ownerOfId(common::hash::xxhash64(key, 0));
  common::StripedMutex::MultiGuard guard(storeLocks_, writeSetOf(owner));
  Node& node = nodeById(owner);
  pushReplicas(node, key, value);
  node.store.put(key, std::move(value));
}

size_t ChordDht::size() const {
  std::shared_lock topo(topoMutex_);
  common::StripedMutex::AllGuard guard(storeLocks_);
  size_t n = 0;
  for (const auto& [id, node] : nodes_) n += node.store.size();
  return n;
}

bool ChordDht::checkRing() const {
  std::shared_lock topo(topoMutex_);
  common::StripedMutex::AllGuard guard(storeLocks_);
  // Every stored key must sit on its owner.
  for (const auto& [id, node] : nodes_) {
    bool placed = true;
    node.store.forEach([&, nodeId = id](const Key& k, const Value&) {
      if (ownerOfId(common::hash::xxhash64(k, 0)) != nodeId) placed = false;
    });
    if (!placed) return false;
  }
  // Finger entries must be the true successors of their targets.
  for (const auto& [id, node] : nodes_) {
    size_t fi = 0;
    u64 prev = ~0ull;
    for (int k = 0; k < 64; ++k) {
      u64 expect = ownerOfId(id + (1ull << k));
      if (expect != prev) {
        if (fi >= node.fingers.size() || node.fingers[fi] != expect) return false;
        prev = expect;
        ++fi;
      }
    }
    if (fi != node.fingers.size()) return false;
  }
  return true;
}

bool ChordDht::checkReplication() const {
  std::shared_lock topo(topoMutex_);
  common::StripedMutex::AllGuard guard(storeLocks_);
  if (opts_.replication <= 1) return true;
  const size_t copies = std::min(opts_.replication, peerCountUnlocked()) - 1;
  size_t expectedReplicas = 0;
  size_t actualReplicas = 0;
  for (const auto& [id, node] : nodes_) {
    expectedReplicas += node.store.size() * copies;
    actualReplicas += node.replicas.size();
    // Every primary must be present on each of its owner's successors.
    auto succ = successorsOf(id, copies);
    bool consistent = true;
    node.store.forEach([&](const Key& k, const Value& v) {
      for (u64 sid : succ) {
        const Value* hit = nodeById(sid).replicas.find(k);
        if (hit == nullptr || *hit != v) consistent = false;
      }
    });
    // Every replica must back a live primary somewhere.
    node.replicas.forEach([&](const Key& k, const Value&) {
      const u64 owner = ownerOfId(common::hash::xxhash64(k, 0));
      if (!nodeById(owner).store.contains(k)) consistent = false;
    });
    if (!consistent) return false;
  }
  return expectedReplicas == actualReplicas;
}

std::vector<GetOutcome> ChordDht::multiGet(const std::vector<Key>& keys) {
  if (keys.empty()) return {};
  stats_.batchRounds += 1;
  return detail::roundMultiGet(*this, net_, keys);
}

std::vector<ApplyOutcome> ChordDht::multiApply(
    const std::vector<ApplyRequest>& reqs) {
  if (reqs.empty()) return {};
  stats_.batchRounds += 1;
  return detail::roundMultiApply(*this, net_, reqs);
}

}  // namespace lht::dht
