#include "dht/chord.h"

#include "dht/batch_round.h"

#include <algorithm>

#include "common/hash.h"

namespace lht::dht {

using common::u64;

namespace {

/// Whether x lies in the half-open ring interval (a, b] (clockwise).
bool inRangeOpenClosed(u64 x, u64 a, u64 b) {
  if (a == b) return true;  // the whole ring (single-node case)
  if (a < b) return x > a && x <= b;
  return x > a || x <= b;
}

/// Whether x lies in the open ring interval (a, b) (clockwise).
bool inRangeOpen(u64 x, u64 a, u64 b) {
  if (a == b) return x != a;
  if (a < b) return x > a && x < b;
  return x > a || x < b;
}

}  // namespace

ChordDht::ChordDht(net::SimNetwork& network, Options options)
    : net_(network), opts_(options), rng_(options.seed, /*stream=*/0x9E37u) {
  common::checkInvariant(opts_.initialPeers >= 1, "ChordDht: need >= 1 peer");
  common::checkInvariant(opts_.virtualNodes >= 1, "ChordDht: need >= 1 vnode");
  for (size_t i = 0; i < opts_.initialPeers; ++i) {
    join("peer-" + std::to_string(i));
  }
}

u64 ChordDht::join(const std::string& name) {
  std::unique_lock topo(topoMutex_);
  common::checkInvariant(crashedPeers_.empty(),
                         "ChordDht::join: crashes pending — run repairStep");
  const net::PeerId peer = net_.addPeer(name);
  u64 firstId = 0;
  for (size_t v = 0; v < opts_.virtualNodes; ++v) {
    u64 id = common::hash::xxhash64(name + "#" + std::to_string(v), opts_.seed);
    // Extremely unlikely collision: perturb deterministically until free.
    while (nodes_.count(id) != 0) id = common::hash::splitmix64(id);
    Node node;
    node.id = id;
    node.peer = peer;
    nodes_.emplace(id, std::move(node));
    if (v == 0) firstId = id;
  }
  rebuildFingers();
  // Pull over every key the new ring points now own.
  for (auto& [id, node] : nodes_) {
    if (node.peer == peer) continue;
    std::vector<Key> moving;
    node.store.forEach([&](const Key& k, const Value&) {
      if (nodeById(ownerOfId(common::hash::xxhash64(k, 0))).peer == peer) {
        moving.push_back(k);
      }
    });
    for (const auto& k : moving) {
      auto v = node.store.take(k);
      Node& owner = nodeById(ownerOfId(common::hash::xxhash64(k, 0)));
      net_.send(node.peer, owner.peer, k.size() + v->size());
      owner.store.put(k, std::move(*v));
    }
  }
  rebuildReplicas();
  return firstId;
}

void ChordDht::leave(u64 nodeId) {
  std::unique_lock topo(topoMutex_);
  removePeerLocked(nodeId, /*graceful=*/true);
}

void ChordDht::fail(u64 nodeId) {
  std::unique_lock topo(topoMutex_);
  removePeerLocked(nodeId, /*graceful=*/false);
}

void ChordDht::removePeerLocked(u64 nodeId, bool graceful) {
  common::checkInvariant(peerCountUnlocked() >= 2,
                         "ChordDht::removePeer: last peer");
  // Graceful departures and instant-recovery failures assume a clean ring:
  // with crashes pending, excision must run first so the handoff targets
  // (new owners, replica holders) are all live.
  common::checkInvariant(crashedPeers_.empty(),
                         "ChordDht::removePeer: crashes pending — run repairStep");
  const net::PeerId peer = nodeById(nodeId).peer;

  std::vector<u64> ids;
  std::vector<std::pair<Key, Value>> orphans;
  for (auto& [id, node] : nodes_) {
    if (node.peer != peer) continue;
    ids.push_back(id);
    if (graceful) {
      for (auto& kv : node.store.drain()) orphans.push_back(std::move(kv));
    }
  }
  for (u64 id : ids) nodes_.erase(id);
  rebuildFingers();

  if (graceful) {
    // The departing peer pushes its primaries to their new owners.
    for (auto& [k, v] : orphans) {
      Node& owner = nodeById(ownerOfId(common::hash::xxhash64(k, 0)));
      net_.send(peer, owner.peer, k.size() + v.size());
      owner.store.put(k, std::move(v));
    }
  } else {
    // Ungraceful: the peer's primaries and replicas are gone. Promote
    // surviving replicas whose primary died onto the new owners.
    std::vector<std::pair<Key, Value>> recovered;
    for (auto& [id, node] : nodes_) {
      node.replicas.forEach([&](const Key& k, const Value& v) {
        const u64 owner = ownerOfId(common::hash::xxhash64(k, 0));
        if (!nodeById(owner).store.contains(k)) recovered.emplace_back(k, v);
      });
    }
    for (auto& [k, v] : recovered) {
      Node& owner = nodeById(ownerOfId(common::hash::xxhash64(k, 0)));
      owner.store.put(k, std::move(v));
    }
  }
  net_.setOnline(peer, false);
  rebuildReplicas();
}

size_t ChordDht::peerCountUnlocked() const {
  std::vector<net::PeerId> peers;
  for (const auto& [id, node] : nodes_) peers.push_back(node.peer);
  std::sort(peers.begin(), peers.end());
  peers.erase(std::unique(peers.begin(), peers.end()), peers.end());
  return peers.size();
}

size_t ChordDht::peerCount() const {
  std::shared_lock topo(topoMutex_);
  return peerCountUnlocked();
}

std::vector<u64> ChordDht::nodeIds() const {
  std::shared_lock topo(topoMutex_);
  std::vector<u64> ids;
  ids.reserve(nodes_.size());
  for (const auto& [id, n] : nodes_) ids.push_back(id);
  return ids;
}

u64 ChordDht::ownerOf(const Key& key) const {
  std::shared_lock topo(topoMutex_);
  return ownerOfId(common::hash::xxhash64(key, 0));
}

size_t ChordDht::keysOn(u64 nodeId) const {
  std::shared_lock topo(topoMutex_);
  auto lock = storeLocks_.guard(nodeId);
  return nodeById(nodeId).store.size();
}

ChordDht::Node& ChordDht::nodeById(u64 id) {
  auto it = nodes_.find(id);
  common::checkInvariant(it != nodes_.end(), "ChordDht: unknown node id");
  return it->second;
}

const ChordDht::Node& ChordDht::nodeById(u64 id) const {
  auto it = nodes_.find(id);
  common::checkInvariant(it != nodes_.end(), "ChordDht: unknown node id");
  return it->second;
}

u64 ChordDht::successorOf(u64 id) const {
  auto it = nodes_.upper_bound(id);
  if (it == nodes_.end()) it = nodes_.begin();
  return it->first;
}

u64 ChordDht::ownerOfId(u64 keyId) const {
  auto it = nodes_.lower_bound(keyId);  // first node id >= keyId
  if (it == nodes_.end()) it = nodes_.begin();
  return it->first;
}

std::vector<u64> ChordDht::successorsOf(u64 id, size_t count) const {
  // Collect ring points of `count` *distinct other peers*: replicas on the
  // owner's own virtual nodes would die with it.
  std::vector<u64> out;
  std::vector<net::PeerId> seen{nodeById(id).peer};
  const size_t limit = std::min(count, peerCountUnlocked() - 1);
  u64 cur = id;
  while (out.size() < limit) {
    cur = successorOf(cur);
    const net::PeerId p = nodeById(cur).peer;
    if (std::find(seen.begin(), seen.end(), p) == seen.end()) {
      seen.push_back(p);
      out.push_back(cur);
    }
  }
  return out;
}

std::vector<u64> ChordDht::writeSetOf(u64 ownerId) const {
  std::vector<u64> set{ownerId};
  if (opts_.replication > 1) {
    for (u64 sid : successorsOf(ownerId, opts_.replication - 1))
      set.push_back(sid);
  }
  return set;
}

void ChordDht::pushReplicas(const Node& owner, const Key& key, const Value& value) {
  if (opts_.replication <= 1) return;
  for (u64 sid : successorsOf(owner.id, opts_.replication - 1)) {
    Node& holder = nodeById(sid);
    // A dark holder cannot take the copy; anti-entropy re-pushes it after
    // the crashed peer is excised and placement settles.
    if (nodeDown(holder)) continue;
    net_.send(owner.peer, holder.peer, key.size() + value.size());
    holder.replicas.put(key, value);
  }
}

void ChordDht::dropReplicas(u64 ownerId, const Key& key) {
  if (opts_.replication <= 1) return;
  // Between membership changes replicas live exactly on the owner's
  // replica holders (rebuildReplicas restores that after every churn
  // event), so the targeted erase is complete.
  for (u64 sid : successorsOf(ownerId, opts_.replication - 1)) {
    Node& holder = nodeById(sid);
    // A dark holder keeps its stale copy; it dies with the peer at
    // excision (the copy never rejoins the ring).
    if (nodeDown(holder)) continue;
    holder.replicas.erase(key);
  }
}

void ChordDht::rebuildReplicas() {
  if (opts_.replication <= 1) return;
  for (auto& [id, node] : nodes_) node.replicas.clear();
  for (auto& [id, node] : nodes_) {
    node.store.forEach(
        [&](const Key& k, const Value& v) { pushReplicas(node, k, v); });
  }
}

void ChordDht::rebuildFingers() {
  for (auto& [id, node] : nodes_) {
    node.fingers.clear();
    node.fingers.reserve(64);
    for (int k = 0; k < 64; ++k) {
      u64 target = id + (1ull << k);  // wraps naturally mod 2^64
      u64 f = ownerOfId(target);
      if (node.fingers.empty() || node.fingers.back() != f)
        node.fingers.push_back(f);
    }
  }
}

u64 ChordDht::route(u64 keyId, u64 requestBytes) {
  common::checkInvariant(!nodes_.empty(), "ChordDht: empty ring");
  stats_.lookups += 1;

  // Pick the entry peer (the querying client's gateway into the ring).
  auto it = nodes_.begin();
  if (opts_.randomEntry && nodes_.size() > 1) {
    common::u32 skip;
    {
      std::lock_guard rngLock(rngMutex_);
      skip = rng_.below(static_cast<common::u32>(nodes_.size()));
    }
    std::advance(it, skip);
  }
  // Clients never enter through a dark peer (a gateway that does not
  // answer is re-picked immediately; the fast path costs nothing).
  if (!crashedPeers_.empty()) {
    auto start = it;
    while (nodeDown(it->second)) {
      ++it;
      if (it == nodes_.end()) it = nodes_.begin();
      common::checkInvariant(it != start, "ChordDht::route: no live peer");
    }
  }
  u64 cur = it->first;
  stats_.hops += 1;  // client -> entry peer

  for (;;) {
    u64 succ = successorOf(cur);
    if (inRangeOpenClosed(keyId, cur, succ)) {
      if (succ != cur) {
        net_.send(nodeById(cur).peer, nodeById(succ).peer, requestBytes);
        stats_.hops += 1;
      }
      return succ;
    }
    // Forward to the closest preceding finger of keyId.
    const Node& node = nodeById(cur);
    u64 next = succ;
    for (auto fit = node.fingers.rbegin(); fit != node.fingers.rend(); ++fit) {
      if (inRangeOpen(*fit, cur, keyId)) {
        next = *fit;
        break;
      }
    }
    if (next == cur) next = succ;  // guarantee progress
    net_.send(node.peer, nodeById(next).peer, requestBytes);
    stats_.hops += 1;
    cur = next;
  }
}

void ChordDht::put(const Key& key, Value value) {
  RoutedOpScope scope(*this, "dht.put", key);
  stats_.puts += 1;
  std::shared_lock topo(topoMutex_);
  u64 owner = route(common::hash::xxhash64(key, 0), key.size() + value.size());
  throwIfDown(owner, "put");
  accountValueBytes(value.size());
  common::StripedMutex::MultiGuard guard(storeLocks_, writeSetOf(owner));
  Node& node = nodeById(owner);
  pushReplicas(node, key, value);
  node.store.put(key, std::move(value));
}

std::optional<Value> ChordDht::get(const Key& key) {
  RoutedOpScope scope(*this, "dht.get", key);
  stats_.gets += 1;
  std::shared_lock topo(topoMutex_);
  u64 owner = route(common::hash::xxhash64(key, 0), key.size());
  throwIfDown(owner, "get");
  auto lock = storeLocks_.guard(owner);
  Node& node = nodeById(owner);
  node.servedReads += 1;
  const Value* v = node.store.find(key);
  if (v == nullptr) return std::nullopt;
  accountValueBytes(v->size());
  return *v;
}

bool ChordDht::remove(const Key& key) {
  RoutedOpScope scope(*this, "dht.remove", key);
  stats_.removes += 1;
  std::shared_lock topo(topoMutex_);
  u64 owner = route(common::hash::xxhash64(key, 0), key.size());
  throwIfDown(owner, "remove");
  common::StripedMutex::MultiGuard guard(storeLocks_, writeSetOf(owner));
  const bool existed = nodeById(owner).store.erase(key);
  if (existed) dropReplicas(owner, key);
  return existed;
}

bool ChordDht::apply(const Key& key, const Mutator& fn) {
  RoutedOpScope scope(*this, "dht.apply", key);
  stats_.applies += 1;
  std::shared_lock topo(topoMutex_);
  u64 owner = route(common::hash::xxhash64(key, 0), key.size());
  throwIfDown(owner, "apply");
  // The mutator runs under the owner's stripe: apply() is atomic per key
  // against every other routed op touching that node.
  common::StripedMutex::MultiGuard guard(storeLocks_, writeSetOf(owner));
  Node& node = nodeById(owner);
  std::optional<Value> v = node.store.take(key);
  const bool existed = v.has_value();
  fn(v);
  if (v.has_value()) {
    accountValueBytes(v->size());
    pushReplicas(node, key, *v);
    node.store.put(key, std::move(*v));
  } else if (existed) {
    dropReplicas(owner, key);
  }
  return existed;
}

void ChordDht::storeDirect(const Key& key, Value value) {
  std::shared_lock topo(topoMutex_);
  u64 owner = ownerOfId(common::hash::xxhash64(key, 0));
  common::StripedMutex::MultiGuard guard(storeLocks_, writeSetOf(owner));
  Node& node = nodeById(owner);
  pushReplicas(node, key, value);
  node.store.put(key, std::move(value));
}

size_t ChordDht::size() const {
  std::shared_lock topo(topoMutex_);
  common::StripedMutex::AllGuard guard(storeLocks_);
  size_t n = 0;
  for (const auto& [id, node] : nodes_) n += node.store.size();
  return n;
}

bool ChordDht::checkRing() const {
  std::shared_lock topo(topoMutex_);
  common::StripedMutex::AllGuard guard(storeLocks_);
  // Every stored key must sit on its owner.
  for (const auto& [id, node] : nodes_) {
    bool placed = true;
    node.store.forEach([&, nodeId = id](const Key& k, const Value&) {
      if (ownerOfId(common::hash::xxhash64(k, 0)) != nodeId) placed = false;
    });
    if (!placed) return false;
  }
  // Finger entries must be the true successors of their targets.
  for (const auto& [id, node] : nodes_) {
    size_t fi = 0;
    u64 prev = ~0ull;
    for (int k = 0; k < 64; ++k) {
      u64 expect = ownerOfId(id + (1ull << k));
      if (expect != prev) {
        if (fi >= node.fingers.size() || node.fingers[fi] != expect) return false;
        prev = expect;
        ++fi;
      }
    }
    if (fi != node.fingers.size()) return false;
  }
  return true;
}

bool ChordDht::checkReplication() const {
  std::shared_lock topo(topoMutex_);
  common::StripedMutex::AllGuard guard(storeLocks_);
  if (opts_.replication <= 1) return true;
  const size_t copies = std::min(opts_.replication, peerCountUnlocked()) - 1;
  size_t expectedReplicas = 0;
  size_t actualReplicas = 0;
  for (const auto& [id, node] : nodes_) {
    expectedReplicas += node.store.size() * copies;
    actualReplicas += node.replicas.size();
    // Every primary must be present on each of its owner's successors.
    auto succ = successorsOf(id, copies);
    bool consistent = true;
    node.store.forEach([&](const Key& k, const Value& v) {
      for (u64 sid : succ) {
        const Value* hit = nodeById(sid).replicas.find(k);
        if (hit == nullptr || *hit != v) consistent = false;
      }
    });
    // Every replica must back a live primary somewhere.
    node.replicas.forEach([&](const Key& k, const Value&) {
      const u64 owner = ownerOfId(common::hash::xxhash64(k, 0));
      if (!nodeById(owner).store.contains(k)) consistent = false;
    });
    if (!consistent) return false;
  }
  return expectedReplicas == actualReplicas;
}

// Crash mode ----------------------------------------------------------------

void ChordDht::crash(u64 nodeId) {
  std::unique_lock topo(topoMutex_);
  common::checkInvariant(livePeerCountUnlocked() >= 2,
                         "ChordDht::crash: would take down the last live peer");
  const net::PeerId peer = nodeById(nodeId).peer;
  common::checkInvariant(crashedPeers_.count(peer) == 0,
                         "ChordDht::crash: peer already down");
  crashedPeers_.insert(peer);
  net_.setOnline(peer, false);
}

void ChordDht::throwIfDown(u64 ownerId, const char* op) const {
  const Node& owner = nodeById(ownerId);
  if (nodeDown(owner)) {
    throw DhtPeerDownError(std::string("ChordDht::") + op + ": peer '" +
                           net_.peerName(owner.peer) + "' is down");
  }
}

size_t ChordDht::livePeerCountUnlocked() const {
  return peerCountUnlocked() - crashedPeers_.size();
}

size_t ChordDht::livePeerCount() const {
  std::shared_lock topo(topoMutex_);
  return livePeerCountUnlocked();
}

size_t ChordDht::crashedPeerCount() const {
  std::shared_lock topo(topoMutex_);
  return crashedPeers_.size();
}

std::vector<u64> ChordDht::liveNodeIds() const {
  std::shared_lock topo(topoMutex_);
  std::vector<u64> ids;
  ids.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) {
    if (!nodeDown(node)) ids.push_back(id);
  }
  return ids;
}

bool ChordDht::crashWouldLoseData(u64 nodeId) const {
  std::shared_lock topo(topoMutex_);
  common::StripedMutex::AllGuard guard(storeLocks_);
  std::set<net::PeerId> dead = crashedPeers_;
  dead.insert(nodeById(nodeId).peer);
  const size_t copies =
      opts_.replication > 0
          ? std::min(opts_.replication, peerCountUnlocked()) - 1
          : 0;
  for (const auto& [id, node] : nodes_) {
    if (dead.count(node.peer) == 0) continue;
    const auto holders = successorsOf(id, copies);
    bool unsafe = false;
    node.store.forEach([&](const Key& k, const Value&) {
      if (unsafe) return;
      for (u64 hid : holders) {
        const Node& h = nodeById(hid);
        if (dead.count(h.peer) == 0 && h.replicas.contains(k)) return;
      }
      unsafe = true;
    });
    if (unsafe) return true;
  }
  return false;
}

void ChordDht::exciseCrashedLocked() {
  if (crashedPeers_.empty()) return;
  // Keys whose primary copy dies with the crashed peers — checked against
  // the post-excision ring below to count what no replica resurrected.
  std::vector<Key> atRisk;
  std::vector<u64> deadIds;
  for (auto& [id, node] : nodes_) {
    if (crashedPeers_.count(node.peer) == 0) continue;
    deadIds.push_back(id);
    node.store.forEach(
        [&](const Key& k, const Value&) { atRisk.push_back(k); });
  }
  for (u64 id : deadIds) nodes_.erase(id);
  crashedPeers_.clear();
  rebuildFingers();

  // Promote surviving replicas whose primary died onto the new owners, in
  // the same exclusive section as the excision: between the two, a routed
  // get would report the key absent (a silent miss) instead of failing.
  struct Recovered {
    Key key;
    Value value;
    net::PeerId from;
  };
  std::vector<Recovered> recovered;
  for (auto& [id, node] : nodes_) {
    node.replicas.forEach([&, holder = node.peer](const Key& k, const Value& v) {
      const u64 owner = ownerOfId(common::hash::xxhash64(k, 0));
      if (!nodeById(owner).store.contains(k)) recovered.push_back({k, v, holder});
    });
  }
  for (auto& r : recovered) {
    Node& owner = nodeById(ownerOfId(common::hash::xxhash64(r.key, 0)));
    if (owner.store.contains(r.key)) continue;  // an earlier copy won
    if (owner.peer != r.from) {
      net_.send(r.from, owner.peer, r.key.size() + r.value.size());
    }
    owner.store.put(r.key, std::move(r.value));
  }
  for (const Key& k : atRisk) {
    if (!nodeById(ownerOfId(common::hash::xxhash64(k, 0))).store.contains(k)) {
      lostKeys_ += 1;
    }
  }
}

void ChordDht::collectRepairActions(std::vector<RepairAction>& out) const {
  if (opts_.replication <= 1) return;
  const size_t copies = std::min(opts_.replication, peerCountUnlocked()) - 1;
  for (const auto& [id, node] : nodes_) {
    // Pass 1: primaries missing or stale on a required holder.
    const auto holders = successorsOf(id, copies);
    node.store.forEach([&, ownerId = id](const Key& k, const Value& v) {
      for (u64 hid : holders) {
        const Value* hit = nodeById(hid).replicas.find(k);
        if (hit == nullptr || *hit != v) {
          out.push_back({RepairAction::Kind::Push, ownerId, hid, k});
        }
      }
    });
    // Pass 2: held replicas that back no primary, or sit off-placement
    // (promotion leaves both behind; checkReplication rejects either).
    node.replicas.forEach([&, holderId = id](const Key& k, const Value&) {
      const u64 ownerId = ownerOfId(common::hash::xxhash64(k, 0));
      const auto want = successorsOf(ownerId, copies);
      const bool placed =
          std::find(want.begin(), want.end(), holderId) != want.end();
      if (!placed || !nodeById(ownerId).store.contains(k)) {
        out.push_back({RepairAction::Kind::Drop, ownerId, holderId, k});
      }
    });
  }
}

size_t ChordDht::repairStep(size_t maxKeys) {
  // The exclusive topology lock subsumes every store stripe.
  std::unique_lock topo(topoMutex_);
  exciseCrashedLocked();
  if (opts_.replication <= 1) return 0;
  std::vector<RepairAction> actions;
  collectRepairActions(actions);
  size_t applied = 0;
  for (const RepairAction& a : actions) {
    if (applied >= maxKeys) break;
    if (a.kind == RepairAction::Kind::Push) {
      Node& owner = nodeById(a.ownerId);
      const Value* v = owner.store.find(a.key);
      if (v == nullptr) continue;  // removed since the scan
      Node& holder = nodeById(a.holderId);
      net_.send(owner.peer, holder.peer, a.key.size() + v->size());
      holder.replicas.put(a.key, *v);
    } else {
      nodeById(a.holderId).replicas.erase(a.key);
    }
    ++applied;
  }
  return applied;
}

size_t ChordDht::replicaDeficit() const {
  std::shared_lock topo(topoMutex_);
  common::StripedMutex::AllGuard guard(storeLocks_);
  if (!crashedPeers_.empty()) {
    // Pre-excision the gauge counts the promotions repair owes: every
    // primary stranded on a dark peer. (Post-excision it switches to the
    // re-push backlog, so the value can legitimately rise across the
    // first repairStep as anti-entropy discovers the full fix-up set.)
    size_t owed = 0;
    for (const auto& [id, node] : nodes_) {
      if (crashedPeers_.count(node.peer) != 0) owed += node.store.size();
    }
    return owed;
  }
  if (opts_.replication <= 1) return 0;
  std::vector<RepairAction> actions;
  collectRepairActions(actions);
  return actions.size();
}

bool ChordDht::repairConverged() const {
  {
    std::shared_lock topo(topoMutex_);
    if (!crashedPeers_.empty()) return false;
  }
  return replicaDeficit() == 0;
}

std::optional<Value> ChordDht::getReplica(const Key& key, size_t replicaIndex) {
  RoutedOpScope scope(*this, "dht.get_replica", key);
  stats_.gets += 1;
  std::shared_lock topo(topoMutex_);
  if (opts_.replication <= 1) {
    throw DhtError("ChordDht::getReplica: replication disabled");
  }
  const u64 ownerId = ownerOfId(common::hash::xxhash64(key, 0));
  const auto holders = successorsOf(ownerId, opts_.replication - 1);
  if (replicaIndex >= holders.size()) {
    throw DhtError("ChordDht::getReplica: no replica " +
                   std::to_string(replicaIndex) + " (ring too small)");
  }
  // Route to the holder's own ring id — it is the successor of itself, so
  // the normal lookup machinery (and its accounting) reaches the holder.
  const u64 holderId = holders[replicaIndex];
  route(holderId, key.size());
  throwIfDown(holderId, "getReplica");
  auto lock = storeLocks_.guard(holderId);
  Node& holder = nodeById(holderId);
  holder.servedReads += 1;
  const Value* v = holder.replicas.find(key);
  if (v == nullptr) v = holder.store.find(key);  // promoted home post-repair
  if (v == nullptr) return std::nullopt;
  accountValueBytes(v->size());
  return *v;
}

std::vector<common::u64> ChordDht::readLoadByPeer() const {
  std::shared_lock topo(topoMutex_);
  std::vector<common::u64> out;
  std::map<net::PeerId, size_t> slot;  // peer -> index, ring order of first node
  for (const auto& [id, node] : nodes_) {
    auto [it, fresh] = slot.emplace(node.peer, out.size());
    if (fresh) out.push_back(0);
    auto lock = storeLocks_.guard(id);
    out[it->second] += node.servedReads;
  }
  return out;
}

void ChordDht::resetReadLoad() {
  std::shared_lock topo(topoMutex_);
  for (auto& [id, node] : nodes_) {
    auto lock = storeLocks_.guard(id);
    node.servedReads = 0;
  }
}

std::vector<GetOutcome> ChordDht::multiGet(const std::vector<Key>& keys) {
  if (keys.empty()) return {};
  stats_.batchRounds += 1;
  return detail::roundMultiGet(*this, net_, keys);
}

std::vector<ApplyOutcome> ChordDht::multiApply(
    const std::vector<ApplyRequest>& reqs) {
  if (reqs.empty()) return {};
  stats_.batchRounds += 1;
  return detail::roundMultiApply(*this, net_, reqs);
}

}  // namespace lht::dht
