// Kademlia-style XOR-metric DHT.
//
// Second substrate, included to demonstrate the paper's claim that LHT "is
// adaptable to any DHT substrate": the index layers run unchanged on either
// geometry. Keys live on the peer whose identifier minimizes XOR distance;
// routing greedily fixes the highest differing bit via k-buckets, giving
// O(log N) hops. Buckets are rebuilt from global membership after every
// join/leave (the simulator plays omniscient bootstrap server), which keeps
// routing exact: greedy descent provably terminates at the XOR-closest peer
// because a bucket is empty only when its whole subtree is empty.
// Thread safety (DESIGN.md §10): shared mutex on topology (routed ops
// shared, join/leave exclusive), striped store locks keyed by owner node
// id, a small mutex around the entry-point rng.
#pragma once

#include <map>
#include <shared_mutex>
#include <vector>

#include "common/random.h"
#include "common/striped_mutex.h"
#include "dht/dht.h"
#include "net/sim_network.h"
#include "store/mem_table.h"

namespace lht::dht {

class KademliaDht final : public Dht {
 public:
  struct Options {
    size_t initialPeers = 32;
    common::u64 seed = 1;
    size_t bucketSize = 8;  ///< k: max contacts kept per bucket
    bool randomEntry = true;
    /// Copies of every key (1 = none). With r >= 2 each key is also held
    /// by the r-1 nodes XOR-closest to its owner, so data survives an
    /// ungraceful failure (see fail()).
    size_t replication = 1;
  };

  KademliaDht(net::SimNetwork& network, Options options);

  void put(const Key& key, Value value) override;
  std::optional<Value> get(const Key& key) override;
  bool remove(const Key& key) override;
  bool apply(const Key& key, const Mutator& fn) override;
  void storeDirect(const Key& key, Value value) override;
  [[nodiscard]] size_t size() const override;

  /// One batch = one parallel round on the simulated network: per-entry
  /// routing hops and bytes are accounted normally; simulated time
  /// advances by the longest entry only (critical-path RTT).
  std::vector<GetOutcome> multiGet(const std::vector<Key>& keys) override;
  std::vector<ApplyOutcome> multiApply(
      const std::vector<ApplyRequest>& reqs) override;

  /// Adds a peer; keys now XOR-closest to it move over. Returns its id.
  common::u64 join(const std::string& name);
  /// Removes a peer; its keys re-home to their new closest owners.
  void leave(common::u64 nodeId);
  /// Ungraceful failure: the peer vanishes without handing anything off.
  /// Surviving replicas (Options::replication >= 2) are promoted on the
  /// new owners; without replication its keys are lost.
  void fail(common::u64 nodeId);

  [[nodiscard]] std::vector<common::u64> nodeIds() const;
  [[nodiscard]] common::u64 ownerOf(const Key& key) const;

  /// Validates bucket invariants and key placement; used by tests.
  [[nodiscard]] bool checkTables() const;

 private:
  struct Node {
    common::u64 id = 0;
    net::PeerId peer = net::kInvalidPeer;
    // buckets[b] = up to k contacts whose id differs from ours first at
    // bit b (bit 63 = most significant), ordered by XOR-closeness to us.
    std::vector<std::vector<common::u64>> buckets;
    store::MemTable store;
    store::MemTable replicas;  ///< copies held for other owners
  };

  // Private helpers assume topoMutex_ held; store accesses additionally
  // need the owner's stripe (or the exclusive topology lock).
  Node& nodeById(common::u64 id);
  const Node& nodeById(common::u64 id) const;
  [[nodiscard]] common::u64 ownerOfId(common::u64 keyId) const;
  void rebuildBuckets();
  void rehomeAllKeys();
  /// The replication-1 nodes XOR-closest to `ownerId` (excluding it) —
  /// the holders of its keys' replica copies.
  [[nodiscard]] std::vector<common::u64> replicaHoldersOf(
      common::u64 ownerId) const;
  /// The stripe set a write to `ownerId` must hold: owner plus holders.
  [[nodiscard]] std::vector<common::u64> writeSetOf(common::u64 ownerId) const;
  void pushReplicas(const Node& owner, const Key& key, const Value& value);
  void dropReplicas(common::u64 ownerId, const Key& key);
  /// Recomputes every replica placement from the primaries (after churn).
  /// Requires the exclusive topology lock.
  void rebuildReplicas();
  common::u64 route(common::u64 keyId, u64 requestBytes);

  net::SimNetwork& net_;
  Options opts_;
  common::Pcg32 rng_;
  std::map<common::u64, Node> nodes_;

  mutable std::shared_mutex topoMutex_;
  mutable common::StripedMutex storeLocks_{64};
  mutable std::mutex rngMutex_;
};

}  // namespace lht::dht
