#include "dht/decorators.h"

#include <string>

#include "common/types.h"

namespace lht::dht {

FlakyDht::FlakyDht(Dht& inner, double failProbability, common::u64 seed)
    : inner_(inner), failProbability_(failProbability), rng_(seed, 0xF1A6u) {
  common::checkInvariant(failProbability >= 0.0 && failProbability < 1.0,
                         "FlakyDht: probability must be in [0, 1)");
}

void FlakyDht::maybeFail(const char* op) {
  if (rng_.nextDouble() < failProbability_) {
    injected_ += 1;
    throw DhtError(std::string("FlakyDht: lost ") + op + " request");
  }
}

void FlakyDht::put(const Key& key, Value value) {
  maybeFail("put");
  inner_.put(key, std::move(value));
}

std::optional<Value> FlakyDht::get(const Key& key) {
  maybeFail("get");
  return inner_.get(key);
}

bool FlakyDht::remove(const Key& key) {
  maybeFail("remove");
  return inner_.remove(key);
}

bool FlakyDht::apply(const Key& key, const Mutator& fn) {
  maybeFail("apply");
  return inner_.apply(key, fn);
}

void FlakyDht::storeDirect(const Key& key, Value value) {
  inner_.storeDirect(key, std::move(value));
}

RetryingDht::RetryingDht(Dht& inner, size_t maxAttempts)
    : inner_(inner), maxAttempts_(maxAttempts) {
  common::checkInvariant(maxAttempts >= 1, "RetryingDht: need >= 1 attempt");
}

template <typename F>
auto RetryingDht::withRetries(F&& f) -> decltype(f()) {
  for (size_t attempt = 1;; ++attempt) {
    try {
      return f();
    } catch (const DhtError&) {
      if (attempt >= maxAttempts_) throw;
      retries_ += 1;
    }
  }
}

void RetryingDht::put(const Key& key, Value value) {
  withRetries([&]() -> int {
    inner_.put(key, value);
    return 0;
  });
}

std::optional<Value> RetryingDht::get(const Key& key) {
  return withRetries([&] { return inner_.get(key); });
}

bool RetryingDht::remove(const Key& key) {
  return withRetries([&] { return inner_.remove(key); });
}

bool RetryingDht::apply(const Key& key, const Mutator& fn) {
  return withRetries([&] { return inner_.apply(key, fn); });
}

void RetryingDht::storeDirect(const Key& key, Value value) {
  inner_.storeDirect(key, std::move(value));
}

}  // namespace lht::dht
