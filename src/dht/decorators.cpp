#include "dht/decorators.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <type_traits>

#include "common/types.h"
#include "obs/obs.h"

namespace lht::dht {

const char* dhtOpName(DhtOp op) {
  switch (op) {
    case DhtOp::Put: return "put";
    case DhtOp::Get: return "get";
    case DhtOp::Remove: return "remove";
    case DhtOp::Apply: return "apply";
  }
  return "?";
}

namespace {

// Retry accounting feeds two distinct counter families: "<op>.logical" is
// bumped once per caller-visible operation, "<op>.attempts" once per issue
// of the request. The cost model prices logical operations only — retries
// are resilience overhead, not index cost — so the two must never be mixed.
const char* logicalCounterName(DhtOp op) {
  switch (op) {
    case DhtOp::Put: return "dht.put.logical";
    case DhtOp::Get: return "dht.get.logical";
    case DhtOp::Remove: return "dht.remove.logical";
    case DhtOp::Apply: return "dht.apply.logical";
  }
  return "dht.?.logical";
}

const char* attemptCounterName(DhtOp op) {
  switch (op) {
    case DhtOp::Put: return "dht.put.attempts";
    case DhtOp::Get: return "dht.get.attempts";
    case DhtOp::Remove: return "dht.remove.attempts";
    case DhtOp::Apply: return "dht.apply.attempts";
  }
  return "dht.?.attempts";
}

}  // namespace

// ---------------------------------------------------------------------------
// FlakyDht — lost requests
// ---------------------------------------------------------------------------

FlakyDht::FlakyDht(Dht& inner, double failProbability, common::u64 seed)
    : inner_(inner), failProbability_(failProbability), rng_(seed, 0xF1A6u) {
  common::checkInvariant(failProbability >= 0.0 && failProbability <= 1.0,
                         "FlakyDht: probability must be in [0, 1]");
}

bool FlakyDht::shouldFail() {
  bool fail;
  {
    std::lock_guard<std::mutex> lock(rngMutex_);
    fail = rng_.nextDouble() < failProbability_;
  }
  if (fail) {
    injected_ += 1;
    obs::count("fault.lost_request");
    obs::instantEvent("fault.lost_request", "fault");
  }
  return fail;
}

void FlakyDht::maybeFail(const char* op) {
  if (shouldFail()) {
    throw DhtError(std::string("FlakyDht: lost ") + op + " request");
  }
}

void FlakyDht::put(const Key& key, Value value) {
  maybeFail("put");
  inner_.put(key, std::move(value));
}

std::optional<Value> FlakyDht::get(const Key& key) {
  maybeFail("get");
  return inner_.get(key);
}

bool FlakyDht::remove(const Key& key) {
  maybeFail("remove");
  return inner_.remove(key);
}

bool FlakyDht::apply(const Key& key, const Mutator& fn) {
  maybeFail("apply");
  return inner_.apply(key, fn);
}

void FlakyDht::storeDirect(const Key& key, Value value) {
  inner_.storeDirect(key, std::move(value));
}

std::vector<GetOutcome> FlakyDht::multiGet(const std::vector<Key>& keys) {
  std::vector<GetOutcome> out(keys.size());
  if (keys.empty()) return out;
  stats_.batchRounds += 1;
  std::vector<size_t> surviving;
  std::vector<Key> sub;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (shouldFail()) {
      out[i].error = "FlakyDht: lost get request";
    } else {
      surviving.push_back(i);
      sub.push_back(keys[i]);
    }
  }
  if (!sub.empty()) {
    auto innerOut = inner_.multiGet(sub);
    for (size_t j = 0; j < surviving.size(); ++j) {
      out[surviving[j]] = std::move(innerOut[j]);
    }
  }
  return out;
}

std::vector<ApplyOutcome> FlakyDht::multiApply(
    const std::vector<ApplyRequest>& reqs) {
  std::vector<ApplyOutcome> out(reqs.size());
  if (reqs.empty()) return out;
  stats_.batchRounds += 1;
  std::vector<size_t> surviving;
  std::vector<ApplyRequest> sub;
  for (size_t i = 0; i < reqs.size(); ++i) {
    if (shouldFail()) {
      out[i].error = "FlakyDht: lost apply request";
    } else {
      surviving.push_back(i);
      sub.push_back(reqs[i]);
    }
  }
  if (!sub.empty()) {
    auto innerOut = inner_.multiApply(sub);
    for (size_t j = 0; j < surviving.size(); ++j) {
      out[surviving[j]] = std::move(innerOut[j]);
    }
  }
  return out;
}

std::optional<Value> FlakyDht::getReplica(const Key& key, size_t replicaIndex) {
  maybeFail("getReplica");
  return inner_.getReplica(key, replicaIndex);
}

// ---------------------------------------------------------------------------
// LostReplyDht — the mutation lands, the acknowledgement does not
// ---------------------------------------------------------------------------

LostReplyDht::LostReplyDht(Dht& inner, double lossProbability, common::u64 seed)
    : inner_(inner), lossProbability_(lossProbability), rng_(seed, 0x105Eu) {
  common::checkInvariant(lossProbability >= 0.0 && lossProbability <= 1.0,
                         "LostReplyDht: probability must be in [0, 1]");
}

bool LostReplyDht::shouldDrop() {
  bool drop;
  {
    std::lock_guard<std::mutex> lock(rngMutex_);
    drop = rng_.nextDouble() < lossProbability_;
  }
  if (drop) {
    injected_ += 1;
    obs::count("fault.lost_reply");
    obs::instantEvent("fault.lost_reply", "fault");
  }
  return drop;
}

void LostReplyDht::maybeDropReply(const char* op) {
  if (shouldDrop()) {
    throw DhtError(std::string("LostReplyDht: lost ") + op + " reply");
  }
}

void LostReplyDht::put(const Key& key, Value value) {
  inner_.put(key, std::move(value));
  maybeDropReply("put");
}

std::optional<Value> LostReplyDht::get(const Key& key) {
  auto v = inner_.get(key);
  maybeDropReply("get");
  return v;
}

bool LostReplyDht::remove(const Key& key) {
  const bool existed = inner_.remove(key);
  maybeDropReply("remove");
  return existed;
}

bool LostReplyDht::apply(const Key& key, const Mutator& fn) {
  const bool existed = inner_.apply(key, fn);
  maybeDropReply("apply");
  return existed;
}

void LostReplyDht::storeDirect(const Key& key, Value value) {
  inner_.storeDirect(key, std::move(value));
}

std::vector<GetOutcome> LostReplyDht::multiGet(const std::vector<Key>& keys) {
  if (keys.empty()) return {};
  stats_.batchRounds += 1;
  auto out = inner_.multiGet(keys);
  for (auto& o : out) {
    if (o.ok && shouldDrop()) {
      o.ok = false;
      o.value.reset();
      o.error = "LostReplyDht: lost get reply";
    }
  }
  return out;
}

std::vector<ApplyOutcome> LostReplyDht::multiApply(
    const std::vector<ApplyRequest>& reqs) {
  if (reqs.empty()) return {};
  stats_.batchRounds += 1;
  auto out = inner_.multiApply(reqs);
  for (auto& o : out) {
    if (o.ok && shouldDrop()) {
      o.ok = false;
      o.error = "LostReplyDht: lost apply reply";
    }
  }
  return out;
}

std::optional<Value> LostReplyDht::getReplica(const Key& key,
                                              size_t replicaIndex) {
  auto v = inner_.getReplica(key, replicaIndex);
  maybeDropReply("getReplica");
  return v;
}

// ---------------------------------------------------------------------------
// LatencyDht
// ---------------------------------------------------------------------------

LatencyDht::LatencyDht(Dht& inner, net::SimClock& clock, Options options)
    : inner_(inner), clock_(clock), opts_(options), rng_(options.seed, 0x1A7Eu) {}

void LatencyDht::charge() {
  common::u64 ms = opts_.baseMs;
  if (opts_.jitterMs > 0) {
    std::lock_guard<std::mutex> lock(rngMutex_);
    ms += rng_.below(static_cast<common::u32>(
        std::min<common::u64>(opts_.jitterMs, 0xFFFFFFFEull) + 1));
  }
  injectedMs_ += ms;
  obs::observeMs("net.rtt_ms", static_cast<double>(ms));
  clock_.advance(ms);
}

void LatencyDht::put(const Key& key, Value value) {
  charge();
  inner_.put(key, std::move(value));
}

std::optional<Value> LatencyDht::get(const Key& key) {
  charge();
  return inner_.get(key);
}

bool LatencyDht::remove(const Key& key) {
  charge();
  return inner_.remove(key);
}

bool LatencyDht::apply(const Key& key, const Mutator& fn) {
  charge();
  return inner_.apply(key, fn);
}

void LatencyDht::storeDirect(const Key& key, Value value) {
  inner_.storeDirect(key, std::move(value));
}

std::vector<GetOutcome> LatencyDht::multiGet(const std::vector<Key>& keys) {
  if (keys.empty()) return {};
  stats_.batchRounds += 1;
  charge();  // one critical-path RTT for the whole round
  return inner_.multiGet(keys);
}

std::vector<ApplyOutcome> LatencyDht::multiApply(
    const std::vector<ApplyRequest>& reqs) {
  if (reqs.empty()) return {};
  stats_.batchRounds += 1;
  charge();
  return inner_.multiApply(reqs);
}

std::optional<Value> LatencyDht::getReplica(const Key& key,
                                            size_t replicaIndex) {
  charge();
  return inner_.getReplica(key, replicaIndex);
}

// ---------------------------------------------------------------------------
// TimeoutDht
// ---------------------------------------------------------------------------

TimeoutDht::TimeoutDht(Dht& inner, net::SimClock& clock, common::u64 deadlineMs)
    : inner_(inner), clock_(clock), deadlineMs_(deadlineMs) {
  common::checkInvariant(deadlineMs >= 1, "TimeoutDht: deadline must be >= 1ms");
}

void TimeoutDht::checkDeadline(common::u64 startMs, const char* op) {
  const common::u64 elapsed = clock_.nowMs() - startMs;
  if (elapsed > deadlineMs_) {
    timeouts_ += 1;
    obs::count("dht.timeouts");
    obs::instantEvent("dht.timeout", "dht",
                      {obs::arg("op", op), obs::arg("elapsed_ms", elapsed)});
    throw DhtTimeoutError(std::string("TimeoutDht: ") + op + " took " +
                          std::to_string(elapsed) + "ms > " +
                          std::to_string(deadlineMs_) + "ms deadline");
  }
}

void TimeoutDht::put(const Key& key, Value value) {
  const common::u64 t0 = clock_.nowMs();
  inner_.put(key, std::move(value));
  checkDeadline(t0, "put");
}

std::optional<Value> TimeoutDht::get(const Key& key) {
  const common::u64 t0 = clock_.nowMs();
  auto v = inner_.get(key);
  checkDeadline(t0, "get");
  return v;
}

bool TimeoutDht::remove(const Key& key) {
  const common::u64 t0 = clock_.nowMs();
  const bool existed = inner_.remove(key);
  checkDeadline(t0, "remove");
  return existed;
}

bool TimeoutDht::apply(const Key& key, const Mutator& fn) {
  const common::u64 t0 = clock_.nowMs();
  const bool existed = inner_.apply(key, fn);
  checkDeadline(t0, "apply");
  return existed;
}

void TimeoutDht::storeDirect(const Key& key, Value value) {
  inner_.storeDirect(key, std::move(value));
}

std::vector<GetOutcome> TimeoutDht::multiGet(const std::vector<Key>& keys) {
  if (keys.empty()) return {};
  stats_.batchRounds += 1;
  const common::u64 t0 = clock_.nowMs();
  auto out = inner_.multiGet(keys);
  const common::u64 elapsed = clock_.nowMs() - t0;
  if (elapsed > deadlineMs_) {
    timeouts_ += 1;  // one deadline, one miss — not one per entry
    obs::count("dht.timeouts");
    obs::instantEvent("dht.timeout", "dht",
                      {obs::arg("op", "multiGet"), obs::arg("elapsed_ms", elapsed)});
    const std::string err = "TimeoutDht: batch get round took " +
                            std::to_string(elapsed) + "ms > " +
                            std::to_string(deadlineMs_) + "ms deadline";
    for (auto& o : out) {
      o.ok = false;
      o.value.reset();
      o.error = err;
    }
  }
  return out;
}

std::vector<ApplyOutcome> TimeoutDht::multiApply(
    const std::vector<ApplyRequest>& reqs) {
  if (reqs.empty()) return {};
  stats_.batchRounds += 1;
  const common::u64 t0 = clock_.nowMs();
  auto out = inner_.multiApply(reqs);
  const common::u64 elapsed = clock_.nowMs() - t0;
  if (elapsed > deadlineMs_) {
    timeouts_ += 1;
    obs::count("dht.timeouts");
    obs::instantEvent("dht.timeout", "dht",
                      {obs::arg("op", "multiApply"), obs::arg("elapsed_ms", elapsed)});
    const std::string err = "TimeoutDht: batch apply round took " +
                            std::to_string(elapsed) + "ms > " +
                            std::to_string(deadlineMs_) + "ms deadline";
    for (auto& o : out) {
      o.ok = false;  // the round executed; only the acknowledgements are late
      o.error = err;
    }
  }
  return out;
}

std::optional<Value> TimeoutDht::getReplica(const Key& key,
                                            size_t replicaIndex) {
  const common::u64 t0 = clock_.nowMs();
  auto v = inner_.getReplica(key, replicaIndex);
  checkDeadline(t0, "getReplica");
  return v;
}

// ---------------------------------------------------------------------------
// RetryingDht
// ---------------------------------------------------------------------------

RetryingDht::RetryingDht(Dht& inner, size_t maxAttempts)
    : RetryingDht(inner, Options{.maxAttempts = maxAttempts}) {}

RetryingDht::RetryingDht(Dht& inner, Options options)
    : inner_(inner), opts_(options), rng_(options.seed, 0xBACC0FFu) {
  common::checkInvariant(opts_.maxAttempts >= 1, "RetryingDht: need >= 1 attempt");
  common::checkInvariant(opts_.jitter >= 0.0 && opts_.jitter <= 1.0,
                         "RetryingDht: jitter must be in [0, 1]");
  common::checkInvariant(opts_.backoffMultiplier >= 1.0,
                         "RetryingDht: multiplier must be >= 1");
}

common::u64 RetryingDht::backoffDelayMs(size_t attempt) {
  if (opts_.baseBackoffMs == 0) return 0;
  // Exponential growth capped at maxBackoffMs: base * mult^(attempt-1).
  double d = static_cast<double>(opts_.baseBackoffMs) *
             std::pow(opts_.backoffMultiplier, static_cast<double>(attempt - 1));
  d = std::min(d, static_cast<double>(opts_.maxBackoffMs));
  // Deterministic jitter: keep (1-jitter) of the delay, re-draw the rest.
  const double fixed = d * (1.0 - opts_.jitter);
  const double jittered = d * opts_.jitter * rng_.nextDouble();
  return static_cast<common::u64>(fixed + jittered);
}

template <typename F>
auto RetryingDht::withRetries(DhtOp op, F&& f) -> decltype(f()) {
  obs::count(logicalCounterName(op));
  for (size_t attempt = 1;; ++attempt) {
    obs::count(attemptCounterName(op));
    try {
      auto done = [&] {
        std::lock_guard<std::mutex> lock(mutex_);
        histogram_[std::min(attempt, kHistogramBins) - 1] += 1;
      };
      if constexpr (std::is_void_v<decltype(f())>) {
        f();
        done();
        return;
      } else {
        auto r = f();
        done();
        return r;
      }
    } catch (const DhtError& e) {
      if (attempt >= opts_.maxAttempts) {
        {
          std::lock_guard<std::mutex> lock(mutex_);
          lastError_ = e.what();
          exhausted_ += 1;
        }
        obs::count("dht.retries_exhausted");
        obs::instantEvent("dht.retries_exhausted", "dht",
                          {obs::arg("op", dhtOpName(op)),
                           obs::arg("attempts", static_cast<common::u64>(attempt))});
        throw DhtRetriesExhausted(
            std::string("RetryingDht: ") + dhtOpName(op) + " failed after " +
                std::to_string(attempt) + " attempts (last: " + e.what() + ")",
            dhtOpName(op), attempt, e.what());
      }
      common::u64 wait;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        lastError_ = e.what();
        retries_ += 1;
        retriesPerOp_[static_cast<size_t>(op)] += 1;
        wait = backoffDelayMs(attempt);
        backoffWaitedMs_ += wait;
      }
      obs::count("dht.retries");
      obs::instantEvent("dht.retry", "dht",
                        {obs::arg("op", dhtOpName(op)),
                         obs::arg("attempt", static_cast<common::u64>(attempt))});
      if (opts_.clock != nullptr && wait > 0) opts_.clock->advance(wait);
    }
  }
}

void RetryingDht::put(const Key& key, Value value) {
  withRetries(DhtOp::Put, [&] { inner_.put(key, value); });
}

std::optional<Value> RetryingDht::get(const Key& key) {
  return withRetries(DhtOp::Get, [&] { return inner_.get(key); });
}

bool RetryingDht::remove(const Key& key) {
  return withRetries(DhtOp::Remove, [&] { return inner_.remove(key); });
}

bool RetryingDht::apply(const Key& key, const Mutator& fn) {
  return withRetries(DhtOp::Apply, [&] { return inner_.apply(key, fn); });
}

void RetryingDht::storeDirect(const Key& key, Value value) {
  inner_.storeDirect(key, std::move(value));
}

std::vector<GetOutcome> RetryingDht::multiGet(const std::vector<Key>& keys) {
  std::vector<GetOutcome> out(keys.size());
  if (keys.empty()) return out;
  stats_.batchRounds += 1;
  obs::count(logicalCounterName(DhtOp::Get), keys.size());
  std::vector<size_t> pending(keys.size());
  for (size_t i = 0; i < pending.size(); ++i) pending[i] = i;
  for (size_t attempt = 1; !pending.empty(); ++attempt) {
    std::vector<Key> sub;
    sub.reserve(pending.size());
    for (size_t idx : pending) sub.push_back(keys[idx]);
    obs::count(attemptCounterName(DhtOp::Get), sub.size());
    auto round = inner_.multiGet(sub);
    std::vector<size_t> still;
    common::u64 wait = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (size_t j = 0; j < pending.size(); ++j) {
        const size_t idx = pending[j];
        if (round[j].ok) {
          histogram_[std::min(attempt, kHistogramBins) - 1] += 1;
          out[idx] = std::move(round[j]);
          continue;
        }
        lastError_ = round[j].error;
        if (attempt >= opts_.maxAttempts) {
          // Per-entry exhaustion: unlike the single-op path, the rest of
          // the batch still lands, so report instead of throwing.
          exhausted_ += 1;
          obs::count("dht.retries_exhausted");
          out[idx].ok = false;
          out[idx].error = "RetryingDht: get failed after " +
                           std::to_string(attempt) +
                           " attempts (last: " + round[j].error + ")";
          continue;
        }
        retries_ += 1;
        retriesPerOp_[static_cast<size_t>(DhtOp::Get)] += 1;
        obs::count("dht.retries");
        still.push_back(idx);
      }
      pending = std::move(still);
      if (!pending.empty()) {
        wait = backoffDelayMs(attempt);
        backoffWaitedMs_ += wait;
      }
    }
    if (opts_.clock != nullptr && wait > 0) opts_.clock->advance(wait);
  }
  return out;
}

std::vector<ApplyOutcome> RetryingDht::multiApply(
    const std::vector<ApplyRequest>& reqs) {
  std::vector<ApplyOutcome> out(reqs.size());
  if (reqs.empty()) return out;
  stats_.batchRounds += 1;
  obs::count(logicalCounterName(DhtOp::Apply), reqs.size());
  std::vector<size_t> pending(reqs.size());
  for (size_t i = 0; i < pending.size(); ++i) pending[i] = i;
  for (size_t attempt = 1; !pending.empty(); ++attempt) {
    std::vector<ApplyRequest> sub;
    sub.reserve(pending.size());
    for (size_t idx : pending) sub.push_back(reqs[idx]);
    obs::count(attemptCounterName(DhtOp::Apply), sub.size());
    auto round = inner_.multiApply(sub);
    std::vector<size_t> still;
    common::u64 wait = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (size_t j = 0; j < pending.size(); ++j) {
        const size_t idx = pending[j];
        if (round[j].ok) {
          histogram_[std::min(attempt, kHistogramBins) - 1] += 1;
          out[idx] = std::move(round[j]);
          continue;
        }
        lastError_ = round[j].error;
        if (attempt >= opts_.maxAttempts) {
          exhausted_ += 1;
          obs::count("dht.retries_exhausted");
          out[idx].ok = false;
          out[idx].error = "RetryingDht: apply failed after " +
                           std::to_string(attempt) +
                           " attempts (last: " + round[j].error + ")";
          continue;
        }
        retries_ += 1;
        retriesPerOp_[static_cast<size_t>(DhtOp::Apply)] += 1;
        obs::count("dht.retries");
        still.push_back(idx);
      }
      pending = std::move(still);
      if (!pending.empty()) {
        wait = backoffDelayMs(attempt);
        backoffWaitedMs_ += wait;
      }
    }
    if (opts_.clock != nullptr && wait > 0) opts_.clock->advance(wait);
  }
  return out;
}

// ---------------------------------------------------------------------------
// CircuitBreakerDht
// ---------------------------------------------------------------------------

CircuitBreakerDht::CircuitBreakerDht(Dht& inner, net::SimClock& clock,
                                     Options options)
    : inner_(inner), clock_(clock), opts_(options) {
  common::checkInvariant(opts_.failureThreshold >= 1,
                         "CircuitBreakerDht: threshold must be >= 1");
}

void CircuitBreakerDht::onSuccess() {
  std::lock_guard<std::mutex> lock(mutex_);
  consecutiveFailures_ = 0;
  state_ = State::Closed;
}

void CircuitBreakerDht::onFailure() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == State::HalfOpen) {
    // The probe failed: straight back to open, cooldown restarts.
    state_ = State::Open;
    openedAtMs_ = clock_.nowMs();
    obs::instantEvent("breaker.reopened", "breaker");
    return;
  }
  consecutiveFailures_ += 1;
  if (consecutiveFailures_ >= opts_.failureThreshold) {
    state_ = State::Open;
    openedAtMs_ = clock_.nowMs();
    timesOpened_ += 1;
    obs::count("breaker.opened");
    obs::instantEvent("breaker.opened", "breaker",
                      {obs::arg("failures", consecutiveFailures_)});
  }
}

void CircuitBreakerDht::admit(const char* op, size_t rejectedOps) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != State::Open) return;
  if (clock_.nowMs() - openedAtMs_ < opts_.cooldownMs) {
    fastFailures_ += rejectedOps;
    obs::count("breaker.fast_fail", rejectedOps);
    throw DhtCircuitOpenError(std::string("CircuitBreakerDht: ") + op +
                              " rejected (circuit open)");
  }
  state_ = State::HalfOpen;  // cooldown elapsed: allow a probe through
  obs::instantEvent("breaker.half_open", "breaker");
}

template <typename F>
auto CircuitBreakerDht::guarded(const char* op, F&& f) -> decltype(f()) {
  admit(op, 1);
  try {
    if constexpr (std::is_void_v<decltype(f())>) {
      f();
      onSuccess();
      return;
    } else {
      auto r = f();
      onSuccess();
      return r;
    }
  } catch (const DhtError&) {
    onFailure();
    throw;
  }
}

void CircuitBreakerDht::put(const Key& key, Value value) {
  guarded("put", [&] { inner_.put(key, value); });
}

std::optional<Value> CircuitBreakerDht::get(const Key& key) {
  return guarded("get", [&] { return inner_.get(key); });
}

bool CircuitBreakerDht::remove(const Key& key) {
  return guarded("remove", [&] { return inner_.remove(key); });
}

bool CircuitBreakerDht::apply(const Key& key, const Mutator& fn) {
  return guarded("apply", [&] { return inner_.apply(key, fn); });
}

void CircuitBreakerDht::storeDirect(const Key& key, Value value) {
  inner_.storeDirect(key, std::move(value));
}

std::vector<GetOutcome> CircuitBreakerDht::multiGet(
    const std::vector<Key>& keys) {
  std::vector<GetOutcome> out;
  if (keys.empty()) return out;
  stats_.batchRounds += 1;
  try {
    admit("get", keys.size());
  } catch (const DhtCircuitOpenError& e) {
    out.resize(keys.size());
    for (auto& o : out) o.error = e.what();
    return out;
  }
  out = inner_.multiGet(keys);
  bool allOk = true;
  for (const auto& o : out) allOk = allOk && o.ok;
  if (allOk) {
    onSuccess();
  } else {
    onFailure();  // the round is one observation, success iff fully clean
  }
  return out;
}

std::vector<ApplyOutcome> CircuitBreakerDht::multiApply(
    const std::vector<ApplyRequest>& reqs) {
  std::vector<ApplyOutcome> out;
  if (reqs.empty()) return out;
  stats_.batchRounds += 1;
  try {
    admit("apply", reqs.size());
  } catch (const DhtCircuitOpenError& e) {
    out.resize(reqs.size());
    for (auto& o : out) o.error = e.what();
    return out;
  }
  out = inner_.multiApply(reqs);
  bool allOk = true;
  for (const auto& o : out) allOk = allOk && o.ok;
  if (allOk) {
    onSuccess();
  } else {
    onFailure();
  }
  return out;
}

// ---------------------------------------------------------------------------
// FailoverDht
// ---------------------------------------------------------------------------

FailoverDht::FailoverDht(Dht& inner, net::SimClock& clock, Options options)
    : inner_(inner), clock_(clock), opts_(options) {
  common::checkInvariant(
      opts_.hedgeQuantile > 0.0 && opts_.hedgeQuantile <= 1.0,
      "FailoverDht: hedge quantile must be in (0, 1]");
}

common::u64 FailoverDht::hedgeThresholdMs() const {
  common::u64 t = opts_.hedgeMinMs;
  if (const auto* reg = obs::metrics()) {
    if (const auto* h = reg->findHistogram("dht.get.latency_ms")) {
      const double q = h->quantile(opts_.hedgeQuantile);
      if (q > static_cast<double>(t)) t = static_cast<common::u64>(q);
    }
  }
  return t;
}

std::optional<Value> FailoverDht::rescueRead(const Key& key, bool hedged) {
  const size_t fanout = std::min(inner_.replicaFanout(), opts_.maxReplicas);
  for (size_t i = 0; i < fanout; ++i) {
    failoverAttempts_ += 1;
    obs::count("dht.failover.attempts");
    // A rescue is another issue of the same logical get: it joins the
    // attempt ledger but never the logical one.
    obs::count(attemptCounterName(DhtOp::Get));
    try {
      auto v = inner_.getReplica(key, i);
      rescues_ += 1;
      obs::count("dht.failover.rescues");
      obs::instantEvent("dht.failover.rescue", "dht",
                        {obs::arg("replica", static_cast<common::u64>(i))});
      if (hedged) {
        hedgeWins_ += 1;
        obs::count("dht.hedge.wins");
      }
      return v;
    } catch (const CrashError&) {
      throw;  // the dying client, not the substrate — never absorbed
    } catch (const DhtError&) {
      // This holder is down or unreachable too: try the next one.
    }
  }
  // Every holder failed (or there are none): surface the PRIMARY failure —
  // it names the owner, which is what the caller's error handling keys on.
  throw;
}

std::optional<Value> FailoverDht::get(const Key& key) {
  // The threshold is sampled before the read so the read's own latency
  // cannot move its trigger.
  const common::u64 threshold = opts_.hedging ? hedgeThresholdMs() : 0;
  const common::u64 t0 = clock_.nowMs();
  try {
    auto v = inner_.get(key);
    const common::u64 elapsed = clock_.nowMs() - t0;
    obs::observeMs("dht.get.latency_ms", static_cast<double>(elapsed));
    if (opts_.hedging && elapsed >= threshold) {
      // The backup read was in flight when the primary answered: it is
      // cancelled, but it fired — the accounting must show the overhead.
      hedgesFired_ += 1;
      hedgesCancelled_ += 1;
      obs::count("dht.hedge.fired");
      obs::count("dht.hedge.cancelled");
    }
    return v;
  } catch (const CrashError&) {
    throw;
  } catch (const DhtError&) {
    const common::u64 elapsed = clock_.nowMs() - t0;
    obs::observeMs("dht.get.latency_ms", static_cast<double>(elapsed));
    // A failed primary is rescued when failover is on, or when the hedge
    // had already fired (its backup read IS the rescue read).
    const bool hedged = opts_.hedging && elapsed >= threshold;
    if (hedged) {
      hedgesFired_ += 1;
      obs::count("dht.hedge.fired");
    }
    if (!opts_.failover && !hedged) throw;
    return rescueRead(key, hedged);
  }
}

void FailoverDht::put(const Key& key, Value value) {
  inner_.put(key, std::move(value));
}

bool FailoverDht::remove(const Key& key) { return inner_.remove(key); }

bool FailoverDht::apply(const Key& key, const Mutator& fn) {
  return inner_.apply(key, fn);
}

void FailoverDht::storeDirect(const Key& key, Value value) {
  inner_.storeDirect(key, std::move(value));
}

std::vector<GetOutcome> FailoverDht::multiGet(const std::vector<Key>& keys) {
  if (keys.empty()) return {};
  stats_.batchRounds += 1;
  auto out = inner_.multiGet(keys);
  if (!opts_.failover) return out;
  const size_t fanout = std::min(inner_.replicaFanout(), opts_.maxReplicas);
  if (fanout == 0) return out;
  for (size_t i = 0; i < out.size(); ++i) {
    if (out[i].ok) continue;
    for (size_t r = 0; r < fanout; ++r) {
      failoverAttempts_ += 1;
      obs::count("dht.failover.attempts");
      obs::count(attemptCounterName(DhtOp::Get));
      try {
        out[i].value = inner_.getReplica(keys[i], r);
        out[i].ok = true;
        out[i].error.clear();
        rescues_ += 1;
        obs::count("dht.failover.rescues");
        break;
      } catch (const CrashError&) {
        throw;
      } catch (const DhtError&) {
        // Next holder; the entry keeps its original failure if all fail.
      }
    }
  }
  return out;
}

std::vector<ApplyOutcome> FailoverDht::multiApply(
    const std::vector<ApplyRequest>& reqs) {
  if (reqs.empty()) return {};
  stats_.batchRounds += 1;
  return inner_.multiApply(reqs);
}

// ---------------------------------------------------------------------------
// CrashDht
// ---------------------------------------------------------------------------

CrashDht::CrashDht(Dht& inner) : inner_(inner) {}

void CrashDht::armAfterWrites(size_t allowedWrites) {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_ = true;
  crashed_ = false;
  allowedWrites_ = allowedWrites;
  writesCompleted_ = 0;
}

void CrashDht::disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_ = false;
  crashed_ = false;
  writesCompleted_ = 0;
}

void CrashDht::beforeRead() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (crashed_) throw CrashError("CrashDht: client is down");
}

void CrashDht::beforeWrite() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (crashed_) throw CrashError("CrashDht: client is down");
  if (armed_ && writesCompleted_ >= allowedWrites_) {
    crashed_ = true;
    obs::count("fault.crash");
    obs::instantEvent("fault.crash", "fault",
                      {obs::arg("writes_completed", writesCompleted_)});
    throw CrashError("CrashDht: client crashed after " +
                     std::to_string(writesCompleted_) + " writes");
  }
}

void CrashDht::noteWriteCompleted() {
  std::lock_guard<std::mutex> lock(mutex_);
  writesCompleted_ += 1;
}

void CrashDht::put(const Key& key, Value value) {
  beforeWrite();
  inner_.put(key, std::move(value));
  noteWriteCompleted();
}

std::optional<Value> CrashDht::get(const Key& key) {
  beforeRead();
  return inner_.get(key);
}

bool CrashDht::remove(const Key& key) {
  beforeWrite();
  const bool existed = inner_.remove(key);
  noteWriteCompleted();
  return existed;
}

bool CrashDht::apply(const Key& key, const Mutator& fn) {
  beforeWrite();
  const bool existed = inner_.apply(key, fn);
  noteWriteCompleted();
  return existed;
}

void CrashDht::storeDirect(const Key& key, Value value) {
  inner_.storeDirect(key, std::move(value));
}

std::vector<GetOutcome> CrashDht::multiGet(const std::vector<Key>& keys) {
  if (keys.empty()) return {};
  beforeRead();
  stats_.batchRounds += 1;
  return inner_.multiGet(keys);
}

std::vector<ApplyOutcome> CrashDht::multiApply(
    const std::vector<ApplyRequest>& reqs) {
  if (reqs.empty()) return {};
  size_t allowed = reqs.size();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (crashed_) throw CrashError("CrashDht: client is down");
    if (armed_) {
      const size_t budget = allowedWrites_ > writesCompleted_
                                ? allowedWrites_ - writesCompleted_
                                : 0;
      allowed = std::min(allowed, budget);
    }
    // Reserve the budget before the inner round runs (lock is not held
    // across it); a concurrent batch sees the budget already consumed.
    writesCompleted_ += allowed;
  }
  stats_.batchRounds += 1;
  if (allowed == reqs.size()) {
    return inner_.multiApply(reqs);
  }
  // The crash strikes mid-round: the allowed prefix is already in flight
  // and executes; the client dies before observing any outcome.
  if (allowed > 0) {
    std::vector<ApplyRequest> prefix(reqs.begin(),
                                     reqs.begin() + static_cast<long>(allowed));
    inner_.multiApply(prefix);
  }
  size_t completed = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    crashed_ = true;
    completed = writesCompleted_;
  }
  obs::count("fault.crash");
  obs::instantEvent("fault.crash", "fault",
                    {obs::arg("writes_completed", completed)});
  throw CrashError("CrashDht: client crashed after " +
                   std::to_string(completed) + " writes (mid-batch)");
}

}  // namespace lht::dht
