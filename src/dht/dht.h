// Abstract DHT interface: the only substrate the indexes depend on.
//
// LHT (and PHT) are *over-DHT* schemes (paper Sec. 2): they use nothing but
// the generic put/get interface of a DHT, so they run unchanged on any
// substrate. Each routed operation below counts as exactly one "DHT-lookup"
// — the paper's bandwidth unit — regardless of how many overlay hops the
// substrate needs; hop counts are additionally recorded in DhtStats so the
// cost-model constant j can be calibrated per substrate.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "common/types.h"

namespace lht::dht {

using common::u64;

/// Keys are flat strings (e.g. a serialized tree-node label); the substrate
/// hashes them onto its identifier space (consistent hashing, paper Sec. 1).
using Key = std::string;

/// Values are opaque byte strings; the index layers own the serialization.
using Value = std::string;

/// Cumulative substrate counters.
struct DhtStats {
  u64 lookups = 0;      ///< routed operations: the paper's "DHT-lookup" unit
  u64 hops = 0;         ///< total overlay routing hops behind those lookups
  u64 gets = 0;         ///< lookups that were gets
  u64 puts = 0;         ///< lookups that were puts
  u64 applies = 0;      ///< lookups that were read-modify-writes
  u64 removes = 0;      ///< lookups that were removes
  u64 valueBytesMoved = 0;  ///< payload bytes shipped to/from storing peers
  void reset() { *this = DhtStats{}; }
};

/// A read-modify-write body executed at the storing peer. It receives the
/// stored value (disengaged when the key is absent) and may create, rewrite
/// or erase it (reset() == erase).
using Mutator = std::function<void(std::optional<Value>&)>;

/// Generic DHT. Implementations must be deterministic given their seed so
/// experiments reproduce exactly.
class Dht {
 public:
  virtual ~Dht() = default;

  /// Stores `value` at the peer responsible for `key`. One DHT-lookup.
  virtual void put(const Key& key, Value value) = 0;

  /// Fetches the value stored under `key`. One DHT-lookup.
  virtual std::optional<Value> get(const Key& key) = 0;

  /// Removes `key`. One DHT-lookup. Returns whether it was present.
  virtual bool remove(const Key& key) = 0;

  /// Routes to the responsible peer and runs `fn` there atomically.
  /// One DHT-lookup. Returns whether the key existed before the call.
  /// This models the paper's "DHT-put towards κ" of a single record: the
  /// record travels to the peer; the bucket is rewritten locally.
  virtual bool apply(const Key& key, const Mutator& fn) = 0;

  /// Out-of-band bootstrap write: stores without routing or accounting.
  /// Used only to seed initial index state (e.g. the root leaf bucket).
  virtual void storeDirect(const Key& key, Value value) = 0;

  /// Number of key/value pairs currently stored (all peers).
  [[nodiscard]] virtual size_t size() const = 0;

  [[nodiscard]] const DhtStats& stats() const { return stats_; }
  void resetStats() { stats_.reset(); }

 protected:
  DhtStats stats_;
};

}  // namespace lht::dht
