// Abstract DHT interface: the only substrate the indexes depend on.
//
// LHT (and PHT) are *over-DHT* schemes (paper Sec. 2): they use nothing but
// the generic put/get interface of a DHT, so they run unchanged on any
// substrate. Each routed operation below counts as exactly one "DHT-lookup"
// — the paper's bandwidth unit — regardless of how many overlay hops the
// substrate needs; hop counts are additionally recorded in DhtStats so the
// cost-model constant j can be calibrated per substrate.
#pragma once

#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/relaxed_counter.h"
#include "common/types.h"
#include "obs/obs.h"

namespace lht::dht {

using common::u64;

/// A lost DHT request or reply (base of every injectable DHT failure).
class DhtError : public std::runtime_error {
 public:
  explicit DhtError(const std::string& what) : std::runtime_error(what) {}
};

/// An operation exceeded its deadline. The mutation may still have
/// executed at the storing peer (lost-reply semantics).
class DhtTimeoutError : public DhtError {
 public:
  explicit DhtTimeoutError(const std::string& what) : DhtError(what) {}
};

/// RetryingDht ran out of attempts. Carries what happened.
class DhtRetriesExhausted : public DhtError {
 public:
  DhtRetriesExhausted(const std::string& what, std::string op, size_t attempts,
                      std::string lastError)
      : DhtError(what),
        op_(std::move(op)),
        attempts_(attempts),
        lastError_(std::move(lastError)) {}
  [[nodiscard]] const std::string& op() const { return op_; }
  [[nodiscard]] size_t attempts() const { return attempts_; }
  [[nodiscard]] const std::string& lastError() const { return lastError_; }

 private:
  std::string op_;
  size_t attempts_;
  std::string lastError_;
};

/// CircuitBreakerDht is open: the operation was rejected without being
/// attempted.
class DhtCircuitOpenError : public DhtError {
 public:
  explicit DhtCircuitOpenError(const std::string& what) : DhtError(what) {}
};

/// The peer responsible for the key is down (crashed, not yet repaired).
/// Distinct from a key that is absent — an absent key is a successful
/// lookup returning nothing, a down owner is a failed lookup. Failover
/// layers catch this and retry against the key's replica holders.
class DhtPeerDownError : public DhtError {
 public:
  explicit DhtPeerDownError(const std::string& what) : DhtError(what) {}
};

/// A simulated client crash. Deliberately NOT a DhtError: retry layers
/// absorb substrate failures, but nothing may absorb the death of the
/// client itself.
class CrashError : public std::runtime_error {
 public:
  explicit CrashError(const std::string& what) : std::runtime_error(what) {}
};

/// Keys are flat strings (e.g. a serialized tree-node label); the substrate
/// hashes them onto its identifier space (consistent hashing, paper Sec. 1).
using Key = std::string;

/// Values are opaque byte strings; the index layers own the serialization.
using Value = std::string;

/// Cumulative substrate counters. Relaxed atomics: concurrent clients bump
/// them without tearing and totals are exact once the fleet has joined;
/// cross-field reads taken mid-run are statistical snapshots.
struct DhtStats {
  common::RelaxedCounter lookups;   ///< routed ops: the paper's "DHT-lookup"
  common::RelaxedCounter hops;      ///< overlay routing hops behind those
  common::RelaxedCounter gets;      ///< lookups that were gets
  common::RelaxedCounter puts;      ///< lookups that were puts
  common::RelaxedCounter applies;   ///< lookups that were read-modify-writes
  common::RelaxedCounter removes;   ///< lookups that were removes
  common::RelaxedCounter valueBytesMoved;  ///< payload bytes to/from peers
  common::RelaxedCounter batchRounds;      ///< multiGet/multiApply rounds
  void reset() { *this = DhtStats{}; }
};

/// A read-modify-write body executed at the storing peer. It receives the
/// stored value (disengaged when the key is absent) and may create, rewrite
/// or erase it (reset() == erase).
using Mutator = std::function<void(std::optional<Value>&)>;

/// Per-entry result of one key inside a multiGet round. A batch never
/// fails wholesale at the DHT layer: each entry reports its own outcome
/// so callers can retry / repair exactly the entries that failed.
struct GetOutcome {
  bool ok = false;               ///< the entry's reply arrived
  std::optional<Value> value;    ///< stored value (disengaged: key absent)
  std::string error;             ///< failure description when !ok
};

/// Per-entry result of one read-modify-write inside a multiApply round.
/// As with single-op lost replies, !ok does NOT imply the mutation did
/// not execute — only that the acknowledgement never arrived.
struct ApplyOutcome {
  bool ok = false;               ///< the entry's acknowledgement arrived
  bool existed = false;          ///< key existed before the call (valid when ok)
  std::string error;             ///< failure description when !ok
};

/// One entry of a multiApply round.
struct ApplyRequest {
  Key key;
  Mutator fn;
};

/// Generic DHT. Implementations must be deterministic given their seed so
/// experiments reproduce exactly.
class Dht {
 public:
  virtual ~Dht() = default;

  /// Stores `value` at the peer responsible for `key`. One DHT-lookup.
  virtual void put(const Key& key, Value value) = 0;

  /// Fetches the value stored under `key`. One DHT-lookup.
  virtual std::optional<Value> get(const Key& key) = 0;

  /// Removes `key`. One DHT-lookup. Returns whether it was present.
  virtual bool remove(const Key& key) = 0;

  /// Routes to the responsible peer and runs `fn` there atomically.
  /// One DHT-lookup. Returns whether the key existed before the call.
  /// This models the paper's "DHT-put towards κ" of a single record: the
  /// record travels to the peer; the bucket is rewritten locally.
  virtual bool apply(const Key& key, const Mutator& fn) = 0;

  /// Issues every key as one *batch round*: the requests are independent,
  /// so a substrate dispatches them concurrently and the round costs one
  /// critical-path RTT of simulated time (the paper's parallel-forwarding
  /// model, Alg. 3/4). Bandwidth accounting is unchanged — each entry is
  /// still one DHT-lookup. Entries fail independently (lost replies,
  /// timeouts); the round itself never throws DhtError. CrashError does
  /// propagate — a dead client cannot observe partial outcomes.
  ///
  /// The base implementation loops get() per entry, translating DhtError
  /// into a failed outcome; substrates and decorators override it to get
  /// round-level latency/fault semantics.
  virtual std::vector<GetOutcome> multiGet(const std::vector<Key>& keys);

  /// Read-modify-write counterpart of multiGet: one round, independent
  /// per-entry outcomes. A failed entry may still have executed at the
  /// storing peer (lost-reply semantics), so mutators must be idempotent.
  virtual std::vector<ApplyOutcome> multiApply(
      const std::vector<ApplyRequest>& reqs);

  /// Out-of-band bootstrap write: stores without routing or accounting.
  /// Used only to seed initial index state (e.g. the root leaf bucket).
  virtual void storeDirect(const Key& key, Value value) = 0;

  // Replica failover reads ---------------------------------------------------
  /// How many replica copies of a key can be read besides the primary
  /// (substrate replication factor - 1). 0 means replica reads are
  /// unsupported; decorators forward to their inner DHT.
  [[nodiscard]] virtual size_t replicaFanout() const { return 0; }

  /// Reads `key` from its `replicaIndex`-th replica holder instead of the
  /// primary owner (0 = first holder). One routed operation, accounted
  /// like a get but under its own "dht.get_replica" span so the retry
  /// ledger can separate rescue reads from logical gets. Throws
  /// DhtPeerDownError when that holder is itself down, DhtError when
  /// replicaIndex >= replicaFanout(). A disengaged result means the key is
  /// genuinely absent (not a failure).
  virtual std::optional<Value> getReplica(const Key& key, size_t replicaIndex);

  /// Storage administration (unaccounted, unrouted). Substrates backed by
  /// a durable storage engine flush pending log appends to stable storage
  /// (syncStorage) or snapshot + truncate the log (compactStorage);
  /// volatile substrates no-op. Decorators forward both, so a client
  /// holding only the decorated stack can still drive durability.
  virtual void syncStorage() {}
  virtual void compactStorage() {}

  /// Number of key/value pairs currently stored (all peers).
  [[nodiscard]] virtual size_t size() const = 0;

  [[nodiscard]] const DhtStats& stats() const { return stats_; }
  void resetStats() { stats_.reset(); }

 protected:
  /// RAII scope a substrate opens around one routed operation. Emits a
  /// substrate-level trace span (named e.g. "dht.get") carrying the key and
  /// the overlay hop count (delta of stats_.hops across the scope), and
  /// bumps the raw per-op counter "<spanName>.raw" plus the "dht.hops"
  /// total. "Raw" counts every executed attempt — the Retrying decorator
  /// separately counts each *logical* operation exactly once, so retries
  /// never inflate the cost-model's DHT-lookup metric.
  class RoutedOpScope {
   public:
    RoutedOpScope(Dht& dht, const char* spanName, const Key& key);
    ~RoutedOpScope();
    RoutedOpScope(const RoutedOpScope&) = delete;
    RoutedOpScope& operator=(const RoutedOpScope&) = delete;

   private:
    Dht& dht_;
    u64 hops0_;
    obs::SpanScope span_;
  };

  DhtStats stats_;
};

}  // namespace lht::dht
