// DHT decorators for failure injection and recovery.
//
// Real DHT requests get lost; over-DHT indexes assume the substrate
// resolves that (the paper leaves robustness "to and well done by [the]
// underlying DHT"). These decorators make the assumption testable:
//
//  * FlakyDht injects request-loss failures: with probability p an
//    operation throws DhtError *before* executing, exactly like a lost
//    request (never a lost reply, so retries are always safe — no
//    duplicated mutations).
//  * RetryingDht retries a failed operation up to maxAttempts times —
//    the standard client-side answer, and what makes an index over a
//    flaky substrate behave exactly like one over a reliable substrate.
//
// Stack them: RetryingDht retrying(flaky); LhtIndex idx(retrying, ...);
#pragma once

#include <stdexcept>

#include "common/random.h"
#include "dht/dht.h"

namespace lht::dht {

/// A lost DHT request.
class DhtError : public std::runtime_error {
 public:
  explicit DhtError(const std::string& what) : std::runtime_error(what) {}
};

class FlakyDht final : public Dht {
 public:
  /// Fails each routed operation with probability `failProbability`
  /// (deterministic given `seed`). storeDirect never fails (bootstrap).
  FlakyDht(Dht& inner, double failProbability, common::u64 seed = 1);

  void put(const Key& key, Value value) override;
  std::optional<Value> get(const Key& key) override;
  bool remove(const Key& key) override;
  bool apply(const Key& key, const Mutator& fn) override;
  void storeDirect(const Key& key, Value value) override;
  [[nodiscard]] size_t size() const override { return inner_.size(); }

  /// Failures injected so far.
  [[nodiscard]] size_t injectedFailures() const { return injected_; }

 private:
  void maybeFail(const char* op);

  Dht& inner_;
  double failProbability_;
  common::Pcg32 rng_;
  size_t injected_ = 0;
};

class RetryingDht final : public Dht {
 public:
  /// Retries each operation up to `maxAttempts` times on DhtError, then
  /// rethrows.
  RetryingDht(Dht& inner, size_t maxAttempts = 8);

  void put(const Key& key, Value value) override;
  std::optional<Value> get(const Key& key) override;
  bool remove(const Key& key) override;
  bool apply(const Key& key, const Mutator& fn) override;
  void storeDirect(const Key& key, Value value) override;
  [[nodiscard]] size_t size() const override { return inner_.size(); }

  /// Retries performed so far (failures absorbed).
  [[nodiscard]] size_t retries() const { return retries_; }

 private:
  template <typename F>
  auto withRetries(F&& f) -> decltype(f());

  Dht& inner_;
  size_t maxAttempts_;
  size_t retries_ = 0;
};

}  // namespace lht::dht
