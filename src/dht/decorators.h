// DHT decorators: failure injection and client-side recovery.
//
// Real DHT requests get lost; over-DHT indexes assume the substrate
// resolves that (the paper leaves robustness "to and well done by [the]
// underlying DHT"). These decorators make the assumption testable, and
// separate the two fundamentally different loss modes:
//
//  * FlakyDht injects lost *requests*: with probability p an operation
//    throws DhtError *before* executing. Retries are always safe — no
//    mutation happened.
//  * LostReplyDht injects lost *replies*: the operation executes at the
//    storing peer, then the acknowledgement is dropped and the caller
//    sees DhtError. A naive retry re-executes the mutation — this is the
//    decorator that makes idempotence (bucket op tokens, lht/bucket.h)
//    necessary rather than theoretical.
//  * LatencyDht charges each routed operation simulated time on a shared
//    SimClock (base + deterministic jitter).
//  * TimeoutDht enforces a deadline against that clock: an operation
//    whose inner call consumed more than the deadline throws
//    DhtTimeoutError *after* executing — a timeout on a write that in
//    fact landed is exactly a lost reply.
//  * RetryingDht retries failed operations with exponential backoff and
//    deterministic jitter, advancing the clock while "waiting", and keeps
//    full diagnostics (per-op retry counts, attempt histogram, last
//    error) instead of a bare rethrow.
//  * CircuitBreakerDht fails fast after a run of consecutive failures and
//    re-probes after a cooldown (half-open), protecting a client from
//    hammering a dead substrate.
//  * FailoverDht rescues failed reads from the key's replica holders
//    (Dht::getReplica) and optionally hedges tail-latency reads against a
//    replica — first answer wins. This is what keeps queries answerable
//    while the substrate is mid-churn.
//  * CrashDht kills the *client* between DHT writes: after a configured
//    number of writes complete, every further operation throws
//    CrashError (not a DhtError — no retry layer may absorb it). The
//    fault campaign uses it to abandon multi-step index protocols at
//    every intermediate step.
//
// Stack them: RetryingDht over CircuitBreakerDht over TimeoutDht over
// LatencyDht over LostReplyDht over a real substrate.
//
// Thread safety (DESIGN.md §10): every decorator is re-entrant — inner
// calls run outside any decorator lock; only the small mutable islands
// (rng draws, diagnostics, breaker/crash state machines) are mutex-
// guarded, and event counters are relaxed atomics. Diagnostic accessors
// that return references (lastError, attemptHistogram) are exact only
// once concurrent callers have quiesced (e.g. after a fleet join).
#pragma once

#include <array>
#include <mutex>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/relaxed_counter.h"
#include "dht/dht.h"
#include "net/sim_clock.h"

namespace lht::dht {

// The failure taxonomy (DhtError, DhtTimeoutError, DhtRetriesExhausted,
// DhtCircuitOpenError, CrashError) lives in dht/dht.h next to the batch
// outcome types that carry the same errors per entry.

/// Operation categories for per-op diagnostics.
enum class DhtOp : size_t { Put = 0, Get = 1, Remove = 2, Apply = 3 };
inline constexpr size_t kDhtOpCount = 4;
const char* dhtOpName(DhtOp op);

class FlakyDht final : public Dht {
 public:
  /// Fails each routed operation with probability `failProbability`
  /// *before* it executes (lost request), deterministic given `seed`.
  /// storeDirect never fails (bootstrap).
  FlakyDht(Dht& inner, double failProbability, common::u64 seed = 1);

  void put(const Key& key, Value value) override;
  std::optional<Value> get(const Key& key) override;
  bool remove(const Key& key) override;
  bool apply(const Key& key, const Mutator& fn) override;
  void storeDirect(const Key& key, Value value) override;
  [[nodiscard]] size_t size() const override { return inner_.size(); }
  void syncStorage() override { inner_.syncStorage(); }
  void compactStorage() override { inner_.compactStorage(); }

  /// Per-entry lost requests: each entry independently fails *before*
  /// execution; the survivors travel to the inner DHT as one round.
  std::vector<GetOutcome> multiGet(const std::vector<Key>& keys) override;
  std::vector<ApplyOutcome> multiApply(
      const std::vector<ApplyRequest>& reqs) override;

  /// Replica reads are routed operations too: they can be lost like any
  /// other request.
  [[nodiscard]] size_t replicaFanout() const override {
    return inner_.replicaFanout();
  }
  std::optional<Value> getReplica(const Key& key, size_t replicaIndex) override;

  /// Failures injected so far.
  [[nodiscard]] size_t injectedFailures() const { return injected_; }

 private:
  void maybeFail(const char* op);
  bool shouldFail();

  Dht& inner_;
  double failProbability_;
  common::Pcg32 rng_;
  mutable std::mutex rngMutex_;
  common::RelaxedCounter injected_;
};

class LostReplyDht final : public Dht {
 public:
  /// With probability `lossProbability` an operation *executes* on the
  /// inner DHT and then throws DhtError — the mutation happened but the
  /// caller cannot know. Deterministic given `seed`. storeDirect is
  /// exempt (bootstrap).
  LostReplyDht(Dht& inner, double lossProbability, common::u64 seed = 1);

  void put(const Key& key, Value value) override;
  std::optional<Value> get(const Key& key) override;
  bool remove(const Key& key) override;
  bool apply(const Key& key, const Mutator& fn) override;
  void storeDirect(const Key& key, Value value) override;
  [[nodiscard]] size_t size() const override { return inner_.size(); }
  void syncStorage() override { inner_.syncStorage(); }
  void compactStorage() override { inner_.compactStorage(); }

  /// Per-entry lost replies: the whole round executes on the inner DHT,
  /// then each entry's reply is independently dropped (ok=false, value
  /// discarded) — the mutation/lookup happened regardless.
  std::vector<GetOutcome> multiGet(const std::vector<Key>& keys) override;
  std::vector<ApplyOutcome> multiApply(
      const std::vector<ApplyRequest>& reqs) override;

  /// A replica read executes at the holder, then its reply may drop.
  [[nodiscard]] size_t replicaFanout() const override {
    return inner_.replicaFanout();
  }
  std::optional<Value> getReplica(const Key& key, size_t replicaIndex) override;

  /// Replies dropped so far (each one a successfully executed operation).
  [[nodiscard]] size_t injectedLostReplies() const { return injected_; }

 private:
  void maybeDropReply(const char* op);
  bool shouldDrop();

  Dht& inner_;
  double lossProbability_;
  common::Pcg32 rng_;
  mutable std::mutex rngMutex_;
  common::RelaxedCounter injected_;
};

class LatencyDht final : public Dht {
 public:
  struct Options {
    common::u64 baseMs = 10;    ///< charged to every routed operation
    common::u64 jitterMs = 0;   ///< plus uniform [0, jitterMs], deterministic
    common::u64 seed = 1;
  };

  /// Advances `clock` by a sampled latency for each routed operation
  /// (before it executes). storeDirect costs nothing.
  LatencyDht(Dht& inner, net::SimClock& clock, Options options);

  void put(const Key& key, Value value) override;
  std::optional<Value> get(const Key& key) override;
  bool remove(const Key& key) override;
  bool apply(const Key& key, const Mutator& fn) override;
  void storeDirect(const Key& key, Value value) override;
  [[nodiscard]] size_t size() const override { return inner_.size(); }
  void syncStorage() override { inner_.syncStorage(); }
  void compactStorage() override { inner_.compactStorage(); }

  /// A batch round is dispatched concurrently: it is charged ONE sampled
  /// latency (the critical-path RTT), not one per entry.
  std::vector<GetOutcome> multiGet(const std::vector<Key>& keys) override;
  std::vector<ApplyOutcome> multiApply(
      const std::vector<ApplyRequest>& reqs) override;

  /// Each replica read is its own round trip and is charged like one.
  [[nodiscard]] size_t replicaFanout() const override {
    return inner_.replicaFanout();
  }
  std::optional<Value> getReplica(const Key& key, size_t replicaIndex) override;

  /// Total simulated milliseconds injected so far.
  [[nodiscard]] common::u64 injectedLatencyMs() const { return injectedMs_; }

 private:
  void charge();

  Dht& inner_;
  net::SimClock& clock_;
  Options opts_;
  common::Pcg32 rng_;
  mutable std::mutex rngMutex_;
  common::RelaxedCounter injectedMs_;
};

class TimeoutDht final : public Dht {
 public:
  /// Throws DhtTimeoutError when an inner operation consumed more than
  /// `deadlineMs` of simulated time. The throw happens *after* the inner
  /// call returns: a timed-out write has still executed (lost reply).
  TimeoutDht(Dht& inner, net::SimClock& clock, common::u64 deadlineMs);

  void put(const Key& key, Value value) override;
  std::optional<Value> get(const Key& key) override;
  bool remove(const Key& key) override;
  bool apply(const Key& key, const Mutator& fn) override;
  void storeDirect(const Key& key, Value value) override;
  [[nodiscard]] size_t size() const override { return inner_.size(); }
  void syncStorage() override { inner_.syncStorage(); }
  void compactStorage() override { inner_.compactStorage(); }

  /// The deadline applies to the whole round (it is one critical-path
  /// RTT). A missed deadline fails every entry in the round — but the
  /// round has executed (lost-reply semantics), and counts as ONE timeout.
  std::vector<GetOutcome> multiGet(const std::vector<Key>& keys) override;
  std::vector<ApplyOutcome> multiApply(
      const std::vector<ApplyRequest>& reqs) override;

  /// Each replica read gets its own deadline (it is an independent
  /// request, not part of the primary's budget).
  [[nodiscard]] size_t replicaFanout() const override {
    return inner_.replicaFanout();
  }
  std::optional<Value> getReplica(const Key& key, size_t replicaIndex) override;

  /// Deadline misses so far.
  [[nodiscard]] size_t timeouts() const { return timeouts_; }

 private:
  void checkDeadline(common::u64 startMs, const char* op);

  Dht& inner_;
  net::SimClock& clock_;
  common::u64 deadlineMs_;
  common::RelaxedCounter timeouts_;
};

class RetryingDht final : public Dht {
 public:
  struct Options {
    size_t maxAttempts = 8;
    /// First retry delay; 0 disables backoff entirely (immediate retry).
    common::u64 baseBackoffMs = 0;
    double backoffMultiplier = 2.0;
    common::u64 maxBackoffMs = 10'000;
    /// Fraction of each delay replaced by deterministic jitter: the delay
    /// becomes d*(1-jitter) + uniform[0, d*jitter]. Avoids retry
    /// synchronization across clients while staying reproducible.
    double jitter = 0.5;
    common::u64 seed = 1;
    /// Backoff waits advance this clock when set (nullptr: waits are
    /// tracked in backoffWaitedMs() but no clock moves).
    net::SimClock* clock = nullptr;
  };

  /// Legacy shape: immediate retries, no backoff.
  RetryingDht(Dht& inner, size_t maxAttempts = 8);
  RetryingDht(Dht& inner, Options options);

  void put(const Key& key, Value value) override;
  std::optional<Value> get(const Key& key) override;
  bool remove(const Key& key) override;
  bool apply(const Key& key, const Mutator& fn) override;
  void storeDirect(const Key& key, Value value) override;
  [[nodiscard]] size_t size() const override { return inner_.size(); }
  void syncStorage() override { inner_.syncStorage(); }
  void compactStorage() override { inner_.compactStorage(); }

  /// Retries only the entries that failed: each attempt re-issues the
  /// still-failing subset as one inner round, with backoff between
  /// rounds. Unlike the single-op path this never throws
  /// DhtRetriesExhausted — an exhausted entry stays ok=false so the rest
  /// of the batch still lands.
  std::vector<GetOutcome> multiGet(const std::vector<Key>& keys) override;
  std::vector<ApplyOutcome> multiApply(
      const std::vector<ApplyRequest>& reqs) override;

  /// Replica reads forward untouched: FailoverDht owns the iteration over
  /// holders, so wrapping each rescue in this decorator's retry loop would
  /// multiply the recovery machinery against itself.
  [[nodiscard]] size_t replicaFanout() const override {
    return inner_.replicaFanout();
  }
  std::optional<Value> getReplica(const Key& key, size_t replicaIndex) override {
    return inner_.getReplica(key, replicaIndex);
  }

  // Diagnostics --------------------------------------------------------------
  /// Retries performed so far (failures absorbed), total and per op type.
  [[nodiscard]] size_t retries() const { return retries_; }
  [[nodiscard]] size_t retriesFor(DhtOp op) const {
    return retriesPerOp_[static_cast<size_t>(op)];
  }
  /// attemptHistogram()[k] = operations that succeeded on attempt k+1.
  /// Attempts beyond the last bin are clamped into it.
  static constexpr size_t kHistogramBins = 16;
  [[nodiscard]] const std::array<common::u64, kHistogramBins>& attemptHistogram()
      const {
    return histogram_;
  }
  /// Operations that ran out of attempts, and the last error seen (from
  /// any operation, most recent first).
  [[nodiscard]] size_t exhausted() const { return exhausted_; }
  [[nodiscard]] const std::string& lastError() const { return lastError_; }
  /// Total simulated milliseconds spent in backoff waits.
  [[nodiscard]] common::u64 backoffWaitedMs() const { return backoffWaitedMs_; }

 private:
  template <typename F>
  auto withRetries(DhtOp op, F&& f) -> decltype(f());
  /// Caller must hold mutex_ (rng draw).
  common::u64 backoffDelayMs(size_t attempt);

  Dht& inner_;
  Options opts_;
  common::Pcg32 rng_;
  /// Guards rng_ and all diagnostics below. Inner DHT calls never run
  /// under it, so the decorator is re-entrant.
  mutable std::mutex mutex_;
  size_t retries_ = 0;
  std::array<size_t, kDhtOpCount> retriesPerOp_{};
  std::array<common::u64, kHistogramBins> histogram_{};
  size_t exhausted_ = 0;
  std::string lastError_;
  common::u64 backoffWaitedMs_ = 0;
};

class CircuitBreakerDht final : public Dht {
 public:
  struct Options {
    /// Consecutive failures that trip the breaker open.
    size_t failureThreshold = 5;
    /// Simulated time the breaker stays open before a half-open probe.
    common::u64 cooldownMs = 1'000;
  };

  enum class State { Closed, Open, HalfOpen };

  CircuitBreakerDht(Dht& inner, net::SimClock& clock, Options options);

  void put(const Key& key, Value value) override;
  std::optional<Value> get(const Key& key) override;
  bool remove(const Key& key) override;
  bool apply(const Key& key, const Mutator& fn) override;
  void storeDirect(const Key& key, Value value) override;
  [[nodiscard]] size_t size() const override { return inner_.size(); }
  void syncStorage() override { inner_.syncStorage(); }
  void compactStorage() override { inner_.compactStorage(); }

  /// While open, the whole round fast-fails (every entry rejected, no
  /// inner call). Otherwise the round counts as a single observation:
  /// success iff every entry succeeded.
  std::vector<GetOutcome> multiGet(const std::vector<Key>& keys) override;
  std::vector<ApplyOutcome> multiApply(
      const std::vector<ApplyRequest>& reqs) override;

  /// Replica rescues bypass the breaker: a rescue read is what *prevents*
  /// a primary failure from becoming a client-visible one, so it must run
  /// exactly when the substrate looks unhealthy. The primary op's outcome
  /// still feeds the state machine (FailoverDht sits below this layer).
  [[nodiscard]] size_t replicaFanout() const override {
    return inner_.replicaFanout();
  }
  std::optional<Value> getReplica(const Key& key, size_t replicaIndex) override {
    return inner_.getReplica(key, replicaIndex);
  }

  [[nodiscard]] State state() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return state_;
  }
  /// Times the breaker tripped open.
  [[nodiscard]] size_t timesOpened() const { return timesOpened_; }
  /// Operations rejected without touching the inner DHT.
  [[nodiscard]] size_t fastFailures() const { return fastFailures_; }

 private:
  template <typename F>
  auto guarded(const char* op, F&& f) -> decltype(f());
  void onSuccess();
  void onFailure();
  /// Admission decision under mutex_: throws when open and cooling down,
  /// moves Open -> HalfOpen when the cooldown elapsed. Under concurrency
  /// several probes may pass the half-open gate together; the state
  /// machine stays consistent (first completion decides), it is only the
  /// single-probe property that is relaxed.
  void admit(const char* op, size_t rejectedOps);

  Dht& inner_;
  net::SimClock& clock_;
  Options opts_;
  /// Guards the state machine; never held across inner DHT calls.
  mutable std::mutex mutex_;
  State state_ = State::Closed;
  size_t consecutiveFailures_ = 0;
  common::u64 openedAtMs_ = 0;
  common::RelaxedCounter timesOpened_;
  common::RelaxedCounter fastFailures_;
};

/// Availability layer for reads: when the primary lookup fails (its owner
/// crashed, the request or reply was lost, the deadline passed), the read
/// is retried against the key's replica holders via Dht::getReplica — the
/// first holder that answers wins and the caller never sees the failure.
/// Optionally hedges slow reads: once the primary has consumed more
/// simulated time than a configured quantile of the observed
/// "dht.get.latency_ms" histogram, a backup read is (conceptually) in
/// flight at a replica; if the primary still answers first the hedge is
/// cancelled, if the primary fails the hedge's answer is the rescue.
///
/// Accounting discipline: a rescued read stays ONE logical operation.
/// Rescue reads bump dht.get.attempts and dht.failover.attempts (plus the
/// substrate's own dht.get_replica.raw); successes bump
/// dht.failover.rescues; hedging bumps dht.hedge.{fired,wins,cancelled}.
/// The cost model prices logical ops only, so failover overhead is visible
/// but never inflates the paper's DHT-lookup metric.
///
/// Stack position: below RetryingDht and CircuitBreakerDht (a rescued read
/// is a success — it must not trip the breaker or burn retry attempts) and
/// above TimeoutDht/LatencyDht (each rescue is charged and deadlined like
/// the independent request it models).
class FailoverDht final : public Dht {
 public:
  struct Options {
    /// Rescue failed reads from replicas. Off = pure pass-through (the
    /// baseline configuration storm campaigns compare against).
    bool failover = true;
    /// Hedge slow reads once their latency crosses the quantile below.
    bool hedging = false;
    /// Quantile of the ambient "dht.get.latency_ms" histogram that arms
    /// the hedge (tail-latency trigger, "the 95th percentile rule").
    double hedgeQuantile = 0.95;
    /// Floor under the sampled threshold: with an empty histogram (cold
    /// start) the hedge arms at this latency.
    common::u64 hedgeMinMs = 1;
    /// Cap on rescue fan-out (default: every available replica).
    size_t maxReplicas = static_cast<size_t>(-1);
  };

  FailoverDht(Dht& inner, net::SimClock& clock, Options options);

  void put(const Key& key, Value value) override;
  std::optional<Value> get(const Key& key) override;
  bool remove(const Key& key) override;
  bool apply(const Key& key, const Mutator& fn) override;
  void storeDirect(const Key& key, Value value) override;
  [[nodiscard]] size_t size() const override { return inner_.size(); }
  void syncStorage() override { inner_.syncStorage(); }
  void compactStorage() override { inner_.compactStorage(); }

  /// Batch reads: the round executes once, then each failed entry is
  /// individually rescued from replicas (batches are not hedged — the
  /// round already costs one critical-path RTT).
  std::vector<GetOutcome> multiGet(const std::vector<Key>& keys) override;
  std::vector<ApplyOutcome> multiApply(
      const std::vector<ApplyRequest>& reqs) override;

  [[nodiscard]] size_t replicaFanout() const override {
    return inner_.replicaFanout();
  }
  std::optional<Value> getReplica(const Key& key, size_t replicaIndex) override {
    return inner_.getReplica(key, replicaIndex);
  }

  // Diagnostics --------------------------------------------------------------
  /// Replica reads issued while rescuing failed primaries.
  [[nodiscard]] size_t failoverAttempts() const { return failoverAttempts_; }
  /// Failed primary reads a replica answered (caller saw success).
  [[nodiscard]] size_t rescues() const { return rescues_; }
  /// Hedges armed (primary latency crossed the threshold).
  [[nodiscard]] size_t hedgesFired() const { return hedgesFired_; }
  /// Hedges whose replica answer was the one returned.
  [[nodiscard]] size_t hedgeWins() const { return hedgeWins_; }
  /// Hedges cancelled because the primary answered after all.
  [[nodiscard]] size_t hedgesCancelled() const { return hedgesCancelled_; }
  /// The latency threshold a hedge currently arms at (quantile sample
  /// with the hedgeMinMs floor; exposed for tests and dashboards).
  [[nodiscard]] common::u64 hedgeThresholdMs() const;

 private:
  /// Rescue loop over the replica holders; returns the first answer.
  /// Rethrows the in-flight primary failure when every holder fails.
  /// `hedged` routes the success accounting to hedge wins.
  std::optional<Value> rescueRead(const Key& key, bool hedged);

  Dht& inner_;
  net::SimClock& clock_;
  Options opts_;
  common::RelaxedCounter failoverAttempts_;
  common::RelaxedCounter rescues_;
  common::RelaxedCounter hedgesFired_;
  common::RelaxedCounter hedgeWins_;
  common::RelaxedCounter hedgesCancelled_;
};

class CrashDht final : public Dht {
 public:
  explicit CrashDht(Dht& inner);

  /// Arms the crash: exactly `allowedWrites` more writes (put/apply/
  /// remove) are allowed to complete; the next write after that — and
  /// every operation once crashed — throws CrashError before executing.
  /// `allowedWrites = 0` kills the very next write.
  void armAfterWrites(size_t allowedWrites);
  void disarm();

  [[nodiscard]] bool crashed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return crashed_;
  }
  /// Writes completed since the last arm/disarm (counts while disarmed
  /// too, so callers can measure a protocol's write footprint).
  [[nodiscard]] size_t writesCompleted() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return writesCompleted_;
  }
  void resetWriteCount() {
    std::lock_guard<std::mutex> lock(mutex_);
    writesCompleted_ = 0;
  }

  void put(const Key& key, Value value) override;
  std::optional<Value> get(const Key& key) override;
  bool remove(const Key& key) override;
  bool apply(const Key& key, const Mutator& fn) override;
  void storeDirect(const Key& key, Value value) override;
  [[nodiscard]] size_t size() const override { return inner_.size(); }
  void syncStorage() override { inner_.syncStorage(); }
  void compactStorage() override { inner_.compactStorage(); }

  /// A crash can strike mid-round: if the armed write budget runs out
  /// inside a multiApply, only the allowed prefix of entries is forwarded
  /// (as one inner round) before CrashError — modelling a client that
  /// dies while its batch is in flight.
  std::vector<GetOutcome> multiGet(const std::vector<Key>& keys) override;
  std::vector<ApplyOutcome> multiApply(
      const std::vector<ApplyRequest>& reqs) override;

  /// A dead client cannot issue rescue reads either.
  [[nodiscard]] size_t replicaFanout() const override {
    return inner_.replicaFanout();
  }
  std::optional<Value> getReplica(const Key& key, size_t replicaIndex) override {
    beforeRead();
    return inner_.getReplica(key, replicaIndex);
  }

 private:
  void beforeWrite();
  void beforeRead();
  void noteWriteCompleted();

  Dht& inner_;
  /// Guards the crash state machine; never held across inner DHT calls,
  /// so the budget counts exactly the writes that completed (a write in
  /// flight when the budget empties is not retroactively crashed).
  mutable std::mutex mutex_;
  bool armed_ = false;
  bool crashed_ = false;
  size_t allowedWrites_ = 0;
  size_t writesCompleted_ = 0;
};

}  // namespace lht::dht
