// Single-process DHT backend: sharded map, one logical peer.
//
// Functionally identical to any real substrate (same put/get contract and
// lookup accounting, 1 hop per lookup), with no routing cost. Used by unit
// tests and by benches whose metric is DHT-lookup counts — which the paper
// notes are independent of network scale (their footnote 5).
//
// Thread safety (DESIGN.md §10): the store is split into kShards buckets,
// each its own {mutex, map}. An op locks exactly the one shard its key
// hashes to, so disjoint keys proceed in parallel and apply() stays atomic
// per key (the mutator runs under the shard lock — the "executes at the
// storing peer" contract). size() and snapshots lock all shards in index
// order.
#pragma once

#include <array>
#include <mutex>
#include <unordered_map>

#include "dht/dht.h"

namespace lht::dht {

class LocalDht final : public Dht {
 public:
  void put(const Key& key, Value value) override;
  std::optional<Value> get(const Key& key) override;
  bool remove(const Key& key) override;
  bool apply(const Key& key, const Mutator& fn) override;
  void storeDirect(const Key& key, Value value) override;
  [[nodiscard]] size_t size() const override;

  /// Persists the whole store to `path` (versioned binary format); an
  /// index over a LocalDht can thus be snapshotted and reopened later.
  /// Returns false on I/O failure. Unaccounted (administrative).
  bool saveSnapshot(const std::string& path) const;

  /// Replaces the store with a snapshot written by saveSnapshot. Returns
  /// false (store untouched) on I/O failure or a malformed file.
  bool loadSnapshot(const std::string& path);

 private:
  static constexpr size_t kShards = 64;  // power of two

  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<Key, Value> store;
  };

  Shard& shardFor(const Key& key) {
    return shards_[std::hash<Key>{}(key) & (kShards - 1)];
  }

  std::array<Shard, kShards> shards_;
};

}  // namespace lht::dht
