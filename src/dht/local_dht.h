// Single-process DHT backend: one logical peer over a storage engine.
//
// Functionally identical to any real substrate (same put/get contract and
// lookup accounting, 1 hop per lookup), with no routing cost. Used by unit
// tests and by benches whose metric is DHT-lookup counts — which the paper
// notes are independent of network scale (their footnote 5).
//
// Storage lives behind store::StorageEngine (DESIGN.md §11): the default
// MemEngine is the previous inline sharded map, and a DurableEngine gives
// the peer a write-ahead-logged, snapshot-compacted disk store that
// survives a process restart. Thread safety is the engine's contract: ops
// on disjoint keys proceed in parallel, apply() runs its mutator atomically
// per key ("executes at the storing peer").
#pragma once

#include <memory>

#include "dht/dht.h"
#include "store/engine.h"

namespace lht::dht {

class LocalDht final : public Dht {
 public:
  /// Defaults to the volatile MemEngine. Pass a DurableEngine to give this
  /// peer a crash-surviving disk store.
  LocalDht();
  explicit LocalDht(std::unique_ptr<store::StorageEngine> engine);

  void put(const Key& key, Value value) override;
  std::optional<Value> get(const Key& key) override;
  bool remove(const Key& key) override;
  bool apply(const Key& key, const Mutator& fn) override;
  void storeDirect(const Key& key, Value value) override;
  [[nodiscard]] size_t size() const override;

  /// Durability administration (unaccounted): flush / snapshot+truncate
  /// the engine's log. No-ops on the MemEngine.
  void syncStorage() override { engine_->sync(); }
  void compactStorage() override { engine_->compact(); }

  /// The engine backing this peer (tests, diagnostics).
  [[nodiscard]] store::StorageEngine& engine() { return *engine_; }
  [[nodiscard]] const store::StorageEngine& engine() const { return *engine_; }

  /// Persists the whole store to `path` (versioned binary format); an
  /// index over a LocalDht can thus be snapshotted and reopened later.
  /// Returns false on I/O failure. Unaccounted (administrative).
  bool saveSnapshot(const std::string& path) const;

  /// Replaces the store with a snapshot written by saveSnapshot. Returns
  /// false (store untouched) on I/O failure or a malformed file.
  bool loadSnapshot(const std::string& path);

 private:
  std::unique_ptr<store::StorageEngine> engine_;
};

}  // namespace lht::dht
