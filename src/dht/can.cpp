#include "dht/can.h"

#include "dht/batch_round.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"

namespace lht::dht {

using common::u32;
using common::u64;

namespace {

double unitCoord(u64 h) { return std::ldexp(static_cast<double>(h >> 11), -53); }

/// 1-d torus distance between two coordinates in [0, 1).
double torus1d(double a, double b) {
  const double d = std::fabs(a - b);
  return std::min(d, 1.0 - d);
}

/// 1-d torus distance from coordinate c to the interval [lo, hi).
double torus1dToInterval(double c, double lo, double hi) {
  if (c >= lo && c < hi) return 0.0;
  return std::min(torus1d(c, lo), torus1d(c, hi));
}

/// Whether [alo, ahi) and [blo, bhi) overlap in the open sense.
bool overlaps1d(double alo, double ahi, double blo, double bhi) {
  return alo < bhi && blo < ahi;
}

/// Whether two intervals touch across a border (torus-wrapped).
bool touches1d(double ahi, double blo) {
  return ahi == blo || (ahi == 1.0 && blo == 0.0);
}

}  // namespace

CanDht::CanDht(net::SimNetwork& network, Options options)
    : net_(network), opts_(options), rng_(options.seed, /*stream=*/0xCA17u) {
  common::checkInvariant(opts_.initialPeers >= 1, "CanDht: need >= 1 peer");
  for (size_t i = 0; i < opts_.initialPeers; ++i) {
    join("can-peer-" + std::to_string(i));
  }
}

void CanDht::keyPoint(const Key& key, double& x, double& y) {
  x = unitCoord(common::hash::xxhash64(key, 0xCA40Aull));
  y = unitCoord(common::hash::xxhash64(key, 0xCA40Bull));
}

CanDht::ZNode* CanDht::zoneAt(double x, double y) const {
  ZNode* node = root_.get();
  common::checkInvariant(node != nullptr, "CanDht: empty partition");
  while (node->splitDim != -1) {
    if (node->splitDim == 0) {
      node = (x < node->left->rect.xhi) ? node->left.get() : node->right.get();
    } else {
      node = (y < node->left->rect.yhi) ? node->left.get() : node->right.get();
    }
  }
  return node;
}

u64 CanDht::ownerAt(double x, double y) const { return zoneAt(x, y)->owner; }

u64 CanDht::ownerOfUnlocked(const Key& key) const {
  double x, y;
  keyPoint(key, x, y);
  return ownerAt(x, y);
}

u64 CanDht::ownerOf(const Key& key) const {
  std::shared_lock topo(topoMutex_);
  return ownerOfUnlocked(key);
}

void CanDht::splitZone(ZNode* leaf, u64 newOwner, double px, double py) {
  const ZRect r = leaf->rect;
  const int dim = (r.xhi - r.xlo) >= (r.yhi - r.ylo) ? 0 : 1;
  leaf->splitDim = dim;
  leaf->left = std::make_unique<ZNode>();
  leaf->right = std::make_unique<ZNode>();
  leaf->left->parent = leaf;
  leaf->right->parent = leaf;
  if (dim == 0) {
    const double mid = 0.5 * (r.xlo + r.xhi);
    leaf->left->rect = {r.xlo, mid, r.ylo, r.yhi};
    leaf->right->rect = {mid, r.xhi, r.ylo, r.yhi};
  } else {
    const double mid = 0.5 * (r.ylo + r.yhi);
    leaf->left->rect = {r.xlo, r.xhi, r.ylo, mid};
    leaf->right->rect = {r.xlo, r.xhi, mid, r.yhi};
  }
  // The joiner takes the half containing its point; the old owner keeps
  // the other half.
  ZNode* joinerHalf = leaf->left->rect.contains(px, py) ? leaf->left.get()
                                                        : leaf->right.get();
  ZNode* keeperHalf = joinerHalf == leaf->left.get() ? leaf->right.get()
                                                     : leaf->left.get();
  joinerHalf->owner = newOwner;
  keeperHalf->owner = leaf->owner;
  peer(newOwner).zone = joinerHalf;
  peer(keeperHalf->owner).zone = keeperHalf;
  leaf->owner = 0;
}

u64 CanDht::join(const std::string& name) {
  std::unique_lock topo(topoMutex_);
  const u64 id = nextPeerId_++;
  PeerState st;
  st.netId = net_.addPeer(name);
  owners_.emplace(id, std::move(st));

  if (!root_) {
    root_ = std::make_unique<ZNode>();
    root_->rect = ZRect{};
    root_->owner = id;
    owners_.at(id).zone = root_.get();
  } else {
    const double px = unitCoord(common::hash::xxhash64(name, opts_.seed ^ 0xCAull));
    const double py =
        unitCoord(common::hash::xxhash64(name, opts_.seed ^ 0xCBull));
    splitZone(zoneAt(px, py), id, px, py);
  }
  rebuildNeighbors();
  rehomeAllKeys();
  rebuildReplicas();
  return id;
}

void CanDht::collectLeaves(ZNode* node, std::vector<ZNode*>& out) const {
  if (node->splitDim == -1) {
    out.push_back(node);
    return;
  }
  collectLeaves(node->left.get(), out);
  collectLeaves(node->right.get(), out);
}

CanDht::ZNode* CanDht::deepestLeafPair() const {
  // Returns the parent of the deepest sibling pair of leaves.
  ZNode* best = nullptr;
  int bestDepth = -1;
  std::vector<std::pair<ZNode*, int>> stack{{root_.get(), 0}};
  while (!stack.empty()) {
    auto [node, depth] = stack.back();
    stack.pop_back();
    if (node->splitDim == -1) continue;
    if (node->left->splitDim == -1 && node->right->splitDim == -1) {
      if (depth > bestDepth) {
        bestDepth = depth;
        best = node;
      }
      continue;
    }
    stack.emplace_back(node->left.get(), depth + 1);
    stack.emplace_back(node->right.get(), depth + 1);
  }
  return best;
}

void CanDht::leave(u64 peerId) {
  std::unique_lock topo(topoMutex_);
  removePeerLocked(peerId, /*graceful=*/true);
}

void CanDht::fail(u64 peerId) {
  std::unique_lock topo(topoMutex_);
  removePeerLocked(peerId, /*graceful=*/false);
}

void CanDht::removePeerLocked(u64 peerId, bool graceful) {
  common::checkInvariant(owners_.size() >= 2, "CanDht::removePeer: last peer");
  auto it = owners_.find(peerId);
  common::checkInvariant(it != owners_.end(), "CanDht::removePeer: unknown peer");
  ZNode* zone = it->second.zone;
  ZNode* parent = zone->parent;
  common::checkInvariant(parent != nullptr,
                         "CanDht::removePeer: root with peers left");

  ZNode* sibling =
      parent->left.get() == zone ? parent->right.get() : parent->left.get();
  // Park the departing peer's data for re-homing below (a failed peer's
  // data is simply gone).
  auto orphans =
      graceful ? it->second.store.drain() : std::vector<std::pair<Key, Value>>{};
  const net::PeerId fromNet = it->second.netId;

  if (sibling->splitDim == -1) {
    // Simple takeover: the sibling's owner absorbs the merged parent zone.
    const u64 keeper = sibling->owner;
    parent->splitDim = -1;
    parent->owner = keeper;
    parent->left.reset();
    parent->right.reset();
    peer(keeper).zone = parent;
  } else {
    // CAN's defragmenting takeover: the deepest sibling leaf pair donates
    // one peer — its pair merges, and the donated peer adopts this zone.
    ZNode* pairParent = deepestLeafPair();
    common::checkInvariant(pairParent != nullptr,
                           "CanDht::removePeer: no leaf pair");
    const u64 donated = pairParent->left->owner;
    const u64 keeper = pairParent->right->owner;
    pairParent->splitDim = -1;
    pairParent->owner = keeper;
    pairParent->left.reset();
    pairParent->right.reset();
    peer(keeper).zone = pairParent;
    zone->owner = donated;
    peer(donated).zone = zone;
  }

  owners_.erase(it);
  rebuildNeighbors();
  if (graceful) {
    // Ship the departing peer's keys to their (new) owners, then fix any
    // keys displaced by the takeover merge.
    for (auto& [k, v] : orphans) {
      double x, y;
      keyPoint(k, x, y);
      PeerState& owner = peer(ownerAt(x, y));
      net_.send(fromNet, owner.netId, k.size() + v.size());
      owner.store.put(k, std::move(v));
    }
  } else {
    // Promote surviving replicas whose primary died onto the new owners.
    std::vector<std::pair<Key, Value>> recovered;
    for (auto& [id, st] : owners_) {
      st.replicas.forEach([&](const Key& k, const Value& v) {
        if (!peer(ownerOfUnlocked(k)).store.contains(k)) {
          recovered.emplace_back(k, v);
        }
      });
    }
    for (auto& [k, v] : recovered) {
      PeerState& owner = peer(ownerOfUnlocked(k));
      if (!owner.store.contains(k)) owner.store.put(k, std::move(v));
    }
  }
  net_.setOnline(fromNet, false);
  rehomeAllKeys();
  rebuildReplicas();
}

std::vector<u64> CanDht::replicaHoldersOf(u64 ownerId) const {
  std::vector<u64> out;
  if (opts_.replication <= 1) return out;
  const size_t want = std::min(opts_.replication, owners_.size()) - 1;
  out = peer(ownerId).neighbors;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  if (out.size() > want) {
    out.resize(want);
  } else if (out.size() < want) {
    // Tiny network or few-neighbor corner zone: pad deterministically
    // from the sorted peer list.
    std::vector<u64> all;
    all.reserve(owners_.size());
    for (const auto& [id, st] : owners_) all.push_back(id);
    std::sort(all.begin(), all.end());
    for (u64 id : all) {
      if (out.size() >= want) break;
      if (id == ownerId) continue;
      if (std::find(out.begin(), out.end(), id) == out.end()) out.push_back(id);
    }
  }
  return out;
}

std::vector<u64> CanDht::writeSetOf(u64 ownerId) const {
  std::vector<u64> set{ownerId};
  for (u64 hid : replicaHoldersOf(ownerId)) set.push_back(hid);
  return set;
}

void CanDht::pushReplicas(const PeerState& owner, u64 ownerId, const Key& key,
                          const Value& value) {
  for (u64 hid : replicaHoldersOf(ownerId)) {
    PeerState& holder = peer(hid);
    net_.send(owner.netId, holder.netId, key.size() + value.size());
    holder.replicas.put(key, value);
  }
}

void CanDht::dropReplicas(u64 ownerId, const Key& key) {
  for (u64 hid : replicaHoldersOf(ownerId)) {
    peer(hid).replicas.erase(key);
  }
}

void CanDht::rebuildReplicas() {
  if (opts_.replication <= 1) return;
  for (auto& [id, st] : owners_) st.replicas.clear();
  for (auto& [id, st] : owners_) {
    st.store.forEach([&, ownerId = id](const Key& k, const Value& v) {
      pushReplicas(st, ownerId, k, v);
    });
  }
}

size_t CanDht::peerCount() const {
  std::shared_lock topo(topoMutex_);
  return owners_.size();
}

std::vector<u64> CanDht::peerIds() const {
  std::shared_lock topo(topoMutex_);
  std::vector<u64> ids;
  ids.reserve(owners_.size());
  for (const auto& [id, st] : owners_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

void CanDht::rebuildNeighbors() {
  std::vector<ZNode*> leaves;
  collectLeaves(root_.get(), leaves);
  for (auto& [id, st] : owners_) st.neighbors.clear();
  for (size_t i = 0; i < leaves.size(); ++i) {
    for (size_t j = i + 1; j < leaves.size(); ++j) {
      const ZRect& a = leaves[i]->rect;
      const ZRect& b = leaves[j]->rect;
      const bool xTouch = touches1d(a.xhi, b.xlo) || touches1d(b.xhi, a.xlo);
      const bool yTouch = touches1d(a.yhi, b.ylo) || touches1d(b.yhi, a.ylo);
      const bool adjacent =
          (xTouch && overlaps1d(a.ylo, a.yhi, b.ylo, b.yhi)) ||
          (yTouch && overlaps1d(a.xlo, a.xhi, b.xlo, b.xhi));
      if (adjacent && leaves[i]->owner != leaves[j]->owner) {
        peer(leaves[i]->owner).neighbors.push_back(leaves[j]->owner);
        peer(leaves[j]->owner).neighbors.push_back(leaves[i]->owner);
      }
    }
  }
}

void CanDht::rehomeAllKeys() {
  std::vector<std::pair<Key, Value>> moving;
  for (auto& [id, st] : owners_) {
    std::vector<Key> out;
    st.store.forEach([&, peerId = id](const Key& k, const Value&) {
      if (ownerOfUnlocked(k) != peerId) out.push_back(k);
    });
    for (const auto& k : out) {
      moving.emplace_back(k, std::move(*st.store.take(k)));
    }
  }
  for (auto& [k, v] : moving) {
    peer(ownerOfUnlocked(k)).store.put(k, std::move(v));
  }
}

double CanDht::torusDistToRect(double x, double y, const ZRect& r) {
  return torus1dToInterval(x, r.xlo, r.xhi) + torus1dToInterval(y, r.ylo, r.yhi);
}

CanDht::PeerState& CanDht::peer(u64 id) {
  auto it = owners_.find(id);
  common::checkInvariant(it != owners_.end(), "CanDht: unknown peer id");
  return it->second;
}

const CanDht::PeerState& CanDht::peer(u64 id) const {
  auto it = owners_.find(id);
  common::checkInvariant(it != owners_.end(), "CanDht: unknown peer id");
  return it->second;
}

u64 CanDht::route(double x, double y, u64 requestBytes) {
  stats_.lookups += 1;
  auto it = owners_.begin();
  if (opts_.randomEntry && owners_.size() > 1) {
    u32 skip;
    {
      std::lock_guard rngLock(rngMutex_);
      skip = rng_.below(static_cast<u32>(owners_.size()));
    }
    std::advance(it, skip);
  }
  u64 cur = it->first;
  stats_.hops += 1;  // client -> entry peer

  for (;;) {
    const PeerState& st = peer(cur);
    if (st.zone->rect.contains(x, y)) return cur;
    const double curDist = torusDistToRect(x, y, st.zone->rect);
    u64 next = cur;
    double nextDist = curDist;
    for (u64 nb : st.neighbors) {
      const double d = torusDistToRect(x, y, peer(nb).zone->rect);
      if (d < nextDist) {
        next = nb;
        nextDist = d;
      }
    }
    if (next == cur) {
      // Greedy dead end (possible only at exact corner geometries): hand
      // the request straight to the owner, like Pastry's rare-case scan.
      const u64 owner = ownerAt(x, y);
      net_.send(st.netId, peer(owner).netId, requestBytes);
      stats_.hops += 1;
      return owner;
    }
    net_.send(st.netId, peer(next).netId, requestBytes);
    stats_.hops += 1;
    cur = next;
  }
}

void CanDht::put(const Key& key, Value value) {
  RoutedOpScope scope(*this, "dht.put", key);
  stats_.puts += 1;
  std::shared_lock topo(topoMutex_);
  double x, y;
  keyPoint(key, x, y);
  u64 owner = route(x, y, key.size() + value.size());
  stats_.valueBytesMoved += value.size();
  common::StripedMutex::MultiGuard guard(storeLocks_, writeSetOf(owner));
  PeerState& st = peer(owner);
  pushReplicas(st, owner, key, value);
  st.store.put(key, std::move(value));
}

std::optional<Value> CanDht::get(const Key& key) {
  RoutedOpScope scope(*this, "dht.get", key);
  stats_.gets += 1;
  std::shared_lock topo(topoMutex_);
  double x, y;
  keyPoint(key, x, y);
  u64 owner = route(x, y, key.size());
  auto lock = storeLocks_.guard(owner);
  const PeerState& st = peer(owner);
  const Value* v = st.store.find(key);
  if (v == nullptr) return std::nullopt;
  stats_.valueBytesMoved += v->size();
  return *v;
}

bool CanDht::remove(const Key& key) {
  RoutedOpScope scope(*this, "dht.remove", key);
  stats_.removes += 1;
  std::shared_lock topo(topoMutex_);
  double x, y;
  keyPoint(key, x, y);
  u64 owner = route(x, y, key.size());
  common::StripedMutex::MultiGuard guard(storeLocks_, writeSetOf(owner));
  dropReplicas(owner, key);
  return peer(owner).store.erase(key);
}

bool CanDht::apply(const Key& key, const Mutator& fn) {
  RoutedOpScope scope(*this, "dht.apply", key);
  stats_.applies += 1;
  std::shared_lock topo(topoMutex_);
  double x, y;
  keyPoint(key, x, y);
  u64 owner = route(x, y, key.size());
  // Mutator runs under the write set's stripes: atomic per key.
  common::StripedMutex::MultiGuard guard(storeLocks_, writeSetOf(owner));
  PeerState& st = peer(owner);
  std::optional<Value> v = st.store.take(key);
  const bool existed = v.has_value();
  fn(v);
  if (v.has_value()) {
    stats_.valueBytesMoved += v->size();
    pushReplicas(st, owner, key, *v);
    st.store.put(key, std::move(*v));
  } else if (existed) {
    dropReplicas(owner, key);
  }
  return existed;
}

void CanDht::storeDirect(const Key& key, Value value) {
  std::shared_lock topo(topoMutex_);
  const u64 owner = ownerOfUnlocked(key);
  common::StripedMutex::MultiGuard guard(storeLocks_, writeSetOf(owner));
  PeerState& st = peer(owner);
  pushReplicas(st, owner, key, value);
  st.store.put(key, std::move(value));
}

size_t CanDht::size() const {
  std::shared_lock topo(topoMutex_);
  common::StripedMutex::AllGuard guard(storeLocks_);
  size_t n = 0;
  for (const auto& [id, st] : owners_) n += st.store.size();
  return n;
}

bool CanDht::checkZones() const {
  std::shared_lock topo(topoMutex_);
  common::StripedMutex::AllGuard guard(storeLocks_);
  std::vector<ZNode*> leaves;
  collectLeaves(root_.get(), leaves);
  if (leaves.size() != owners_.size()) return false;
  // Zones tile the torus: areas sum to 1, and tree children partition
  // their parent by construction (verified via the recursion producing
  // exactly the leaves).
  double area = 0.0;
  for (ZNode* leaf : leaves) {
    const ZRect& r = leaf->rect;
    if (r.xhi <= r.xlo || r.yhi <= r.ylo) return false;
    area += (r.xhi - r.xlo) * (r.yhi - r.ylo);
    auto it = owners_.find(leaf->owner);
    if (it == owners_.end() || it->second.zone != leaf) return false;
  }
  if (std::fabs(area - 1.0) > 1e-12) return false;
  // Keys sit with the owner of the zone containing their point.
  for (const auto& [id, st] : owners_) {
    bool placed = true;
    st.store.forEach([&, peerId = id](const Key& k, const Value&) {
      if (ownerOfUnlocked(k) != peerId) placed = false;
    });
    if (!placed) return false;
    // Neighbor symmetry.
    for (u64 nb : st.neighbors) {
      const auto& back = peer(nb).neighbors;
      if (std::find(back.begin(), back.end(), id) == back.end()) return false;
    }
  }
  return true;
}

std::vector<GetOutcome> CanDht::multiGet(const std::vector<Key>& keys) {
  if (keys.empty()) return {};
  stats_.batchRounds += 1;
  return detail::roundMultiGet(*this, net_, keys);
}

std::vector<ApplyOutcome> CanDht::multiApply(
    const std::vector<ApplyRequest>& reqs) {
  if (reqs.empty()) return {};
  stats_.batchRounds += 1;
  return detail::roundMultiApply(*this, net_, reqs);
}

}  // namespace lht::dht
