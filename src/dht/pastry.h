// Pastry-style prefix-routing DHT (Rowstron & Druschel, [20] in the paper).
//
// Third substrate, completing the paper's list of deployment targets
// (Chord-like ring, Kademlia XOR space, Pastry prefix routing). Peer ids
// are 64-bit, read as 16 hexadecimal digits. A key belongs to the peer
// whose id is numerically closest on the circular id space. Each node
// keeps Pastry's two structures, built omnisciently by the simulator:
//
//  * a routing table: entry (row l, column d) is some node sharing the
//    first l digits with this node and having digit d at position l;
//  * a leaf set: the L/2 circularly nearest node ids on each side.
//
// Routing: if the key falls inside the leaf-set span, one hop to the
// numerically closest member finishes (the owner is provably inside the
// span). Otherwise forward via the routing-table entry matching one more
// digit of the key — the shared-prefix length grows every hop, so routing
// takes O(log_16 N) hops. When the required table entry's subtree is empty
// (Pastry's "rare case"), the simulator hands the message directly to the
// owner in one hop, standing in for Pastry's closest-known-node scan.
// Thread safety (DESIGN.md §10): shared mutex on topology (routed ops
// shared, join/leave exclusive), striped store locks keyed by owner node
// id, a small mutex around the entry-point rng.
#pragma once

#include <map>
#include <shared_mutex>
#include <vector>

#include "common/random.h"
#include "common/striped_mutex.h"
#include "dht/dht.h"
#include "net/sim_network.h"
#include "store/mem_table.h"

namespace lht::dht {

class PastryDht final : public Dht {
 public:
  struct Options {
    size_t initialPeers = 32;
    common::u64 seed = 1;
    size_t leafSetHalf = 4;  ///< L/2: leaf-set members per side
    bool randomEntry = true;
    /// Copies of every key (1 = none). With r >= 2 each key is also held
    /// by the r-1 nodes numerically closest to its owner (its nearest
    /// leaf-set members), so data survives an ungraceful failure.
    size_t replication = 1;
  };

  PastryDht(net::SimNetwork& network, Options options);

  void put(const Key& key, Value value) override;
  std::optional<Value> get(const Key& key) override;
  bool remove(const Key& key) override;
  bool apply(const Key& key, const Mutator& fn) override;
  void storeDirect(const Key& key, Value value) override;
  [[nodiscard]] size_t size() const override;

  /// One batch = one parallel round on the simulated network: per-entry
  /// routing hops and bytes are accounted normally; simulated time
  /// advances by the longest entry only (critical-path RTT).
  std::vector<GetOutcome> multiGet(const std::vector<Key>& keys) override;
  std::vector<ApplyOutcome> multiApply(
      const std::vector<ApplyRequest>& reqs) override;

  /// Adds a peer; keys it now owns move over. Returns its id.
  common::u64 join(const std::string& name);
  /// Gracefully removes a peer; its keys move to their new owners.
  void leave(common::u64 nodeId);
  /// Ungraceful failure: the peer vanishes without handing anything off.
  /// Surviving replicas (Options::replication >= 2) are promoted on the
  /// new owners; without replication its keys are lost.
  void fail(common::u64 nodeId);

  [[nodiscard]] std::vector<common::u64> nodeIds() const;
  [[nodiscard]] common::u64 ownerOf(const Key& key) const;

  /// Validates routing-table and leaf-set invariants plus key placement.
  [[nodiscard]] bool checkTables() const;

 private:
  struct Node {
    common::u64 id = 0;
    net::PeerId peer = net::kInvalidPeer;
    // routing[l][d]: a node sharing l leading hex digits, digit d at l.
    // 0 is used as "empty" (node ids of 0 are excluded at join).
    common::u64 routing[16][16] = {};
    std::vector<common::u64> leafSet;  // sorted circular neighbors, both sides
    store::MemTable store;
    store::MemTable replicas;  ///< copies held for other owners
  };

  // Private helpers assume topoMutex_ held; store accesses additionally
  // need the owner's stripe (or the exclusive topology lock).
  Node& nodeById(common::u64 id);
  const Node& nodeById(common::u64 id) const;
  [[nodiscard]] common::u64 ownerOfId(common::u64 keyId) const;
  [[nodiscard]] std::vector<common::u64> nodeIdsUnlocked() const;
  void rebuildTables();
  void rehomeAllKeys();
  /// The replication-1 nodes numerically closest to `ownerId` (excluding
  /// it) — the holders of its keys' replica copies.
  [[nodiscard]] std::vector<common::u64> replicaHoldersOf(
      common::u64 ownerId) const;
  /// The stripe set a write to `ownerId` must hold: owner plus holders.
  [[nodiscard]] std::vector<common::u64> writeSetOf(common::u64 ownerId) const;
  void pushReplicas(const Node& owner, const Key& key, const Value& value);
  void dropReplicas(common::u64 ownerId, const Key& key);
  /// Recomputes every replica placement from the primaries (after churn).
  /// Requires the exclusive topology lock.
  void rebuildReplicas();
  common::u64 route(common::u64 keyId, u64 requestBytes);

  net::SimNetwork& net_;
  Options opts_;
  common::Pcg32 rng_;
  std::map<common::u64, Node> nodes_;

  mutable std::shared_mutex topoMutex_;
  mutable common::StripedMutex storeLocks_{64};
  mutable std::mutex rngMutex_;
};

}  // namespace lht::dht
