#include "dht/routed_net_dht.h"

#include <algorithm>

#include "common/types.h"

namespace lht::dht {

using common::u64;
using namespace rpc::wire;  // NOLINT — this file IS the protocol client

// --- Connection pool (same shape as NetDht's) -------------------------------

class RoutedNetDht::Lease {
 public:
  explicit Lease(const RoutedNetDht& dht) : dht_(dht) {
    std::lock_guard<std::mutex> lock(dht_.poolMutex_);
    if (dht_.freeConns_.empty()) {
      auto conn = std::make_unique<Conn>();
      conn->transport = dht_.makeTransport_();
      conn->rpc = std::make_unique<rpc::RpcClient>(*conn->transport,
                                                   dht_.opts_.rpc);
      dht_.conns_.push_back(std::move(conn));
      idx_ = dht_.conns_.size() - 1;
    } else {
      idx_ = dht_.freeConns_.back();
      dht_.freeConns_.pop_back();
    }
    conn_ = dht_.conns_[idx_].get();
  }
  ~Lease() {
    std::lock_guard<std::mutex> lock(dht_.poolMutex_);
    dht_.freeConns_.push_back(idx_);
  }
  Lease(const Lease&) = delete;
  Lease& operator=(const Lease&) = delete;

  [[nodiscard]] rpc::RpcClient& rpc() { return *conn_->rpc; }

 private:
  const RoutedNetDht& dht_;
  size_t idx_;
  Conn* conn_;
};

// --- Construction -----------------------------------------------------------

RoutedNetDht::RoutedNetDht(Options options, TransportFactory makeTransport)
    : opts_(std::move(options)), makeTransport_(std::move(makeTransport)) {
  common::checkInvariant(opts_.replication >= 1,
                         "RoutedNetDht: replication >= 1");
  common::checkInvariant(opts_.maxAttempts >= 1,
                         "RoutedNetDht: maxAttempts >= 1");
}

RoutedNetDht::~RoutedNetDht() = default;

// --- View maintenance -------------------------------------------------------

std::shared_ptr<const RoutedNetDht::View> RoutedNetDht::view() const {
  std::lock_guard<std::mutex> lock(viewMutex_);
  return view_;
}

std::shared_ptr<const RoutedNetDht::View> RoutedNetDht::requireView() const {
  auto v = view();
  if (!v) {
    throw DhtTimeoutError(
        "RoutedNetDht: not bootstrapped (seed never answered)");
  }
  return v;
}

void RoutedNetDht::noteHint(const std::optional<GossipHint>& hint) {
  if (!hint || hint->senderId == 0) return;
  std::lock_guard<std::mutex> lock(viewMutex_);
  auto it = hintVersions_.find(hint->senderId);
  if (it == hintVersions_.end()) {
    hintVersions_.emplace(hint->senderId, hint->version);
    return;
  }
  if (hint->version > it->second) {
    // Someone's table moved since we last looked: our ring may be stale.
    it->second = hint->version;
    refreshWanted_ = true;
    std::lock_guard<std::mutex> slock(statsMutex_);
    routedStats_.staleHints += 1;
  }
}

bool RoutedNetDht::pullView(rpc::RpcClient& cli, const rpc::NetAddr& from) {
  // senderId 0 marks a client pull: the node replies with its table
  // without trying to merge anything from us.
  auto r = cli.callOne(from, GossipSyncReq{});
  if (r.timedOut || r.status != Status::Ok) return false;
  const auto* rep = std::get_if<GossipSyncRep>(&r.body);
  if (rep == nullptr || rep->entries.empty()) return false;  // not overlay

  auto v = std::make_shared<View>();
  v->ring = overlay::MemberRing(rep->entries, opts_.virtualNodes);
  for (const NodeEntry& e : rep->entries) {
    if (e.state > static_cast<common::u8>(overlay::NodeState::Suspect)) {
      continue;
    }
    v->addrs.emplace(e.id, overlay::addrOf(e));
    v->pullTargets.push_back(overlay::addrOf(e));
  }
  if (v->addrs.empty()) return false;
  {
    std::lock_guard<std::mutex> lock(viewMutex_);
    const bool first = view_ == nullptr;
    view_ = std::move(v);
    refreshWanted_ = false;
    std::lock_guard<std::mutex> slock(statsMutex_);
    if (first) {
      routedStats_.bootstraps += 1;
    } else {
      routedStats_.refreshes += 1;
    }
  }
  noteHint(r.hint);
  return true;
}

bool RoutedNetDht::refreshView(rpc::RpcClient& cli) {
  std::vector<rpc::NetAddr> targets;
  if (auto v = view()) targets = v->pullTargets;
  targets.push_back(opts_.seed);
  for (const rpc::NetAddr& t : targets) {
    if (pullView(cli, t)) return true;
  }
  return false;
}

bool RoutedNetDht::bootstrap(u64 deadlineMs) {
  Lease lease(*this);
  rpc::RpcClient& cli = lease.rpc();
  const u64 start = cli.transport().nowMs();
  while (true) {
    if (pullView(cli, opts_.seed)) return true;
    if (cli.transport().nowMs() - start >= deadlineMs) return false;
  }
}

size_t RoutedNetDht::knownMembers() const {
  auto v = view();
  return v ? v->addrs.size() : 0;
}

RoutedNetDht::RoutedStats RoutedNetDht::routedStats() const {
  RoutedStats s;
  {
    std::lock_guard<std::mutex> lock(statsMutex_);
    s = routedStats_;
  }
  std::lock_guard<std::mutex> lock(poolMutex_);
  s.connections = conns_.size();
  return s;
}

// --- Routed single-key calls ------------------------------------------------

namespace {

[[noreturn]] void throwTimeout(const char* op, const Key& key) {
  throw DhtTimeoutError(std::string("RoutedNetDht::") + op +
                        ": rpc timeout on \"" + key + "\"");
}

void checkStatus(const rpc::RpcClient::Result& r, const char* op,
                 const Key& key) {
  if (r.timedOut) throwTimeout(op, key);
  if (r.status != Status::Ok) {
    throw DhtError(std::string("RoutedNetDht::") + op + ": status " +
                   statusName(r.status) + " on \"" + key + "\"");
  }
}

}  // namespace

rpc::RpcClient::Result RoutedNetDht::callRouted(rpc::RpcClient& cli,
                                                const Key& key,
                                                const RequestBody& body,
                                                const char* op) {
  bool wantRefresh;
  {
    std::lock_guard<std::mutex> lock(viewMutex_);
    wantRefresh = refreshWanted_;
  }
  if (wantRefresh) refreshView(cli);

  auto v = view();
  rpc::RpcClient::Result last;
  last.timedOut = true;
  for (size_t attempt = 0; attempt < opts_.maxAttempts; ++attempt) {
    if (!v) {
      if (!refreshView(cli)) break;
      v = requireView();
    }
    const u64 owner = v->ring.owner(key);
    auto addrIt = v->addrs.find(owner);
    if (owner == 0 || addrIt == v->addrs.end()) {
      if (!refreshView(cli)) break;
      v = requireView();
      continue;
    }
    // Hop accounting matches NetDht: the op's first route is charged by
    // the caller; only extra rounds (redirects, refresh-retries after a
    // timeout) add hops — so warm mean hops sits at 1.0 like the static
    // client, and every topology stumble shows up as the excess.
    if (attempt > 0) stats_.hops += 1;
    last = cli.callOne(addrIt->second, body);
    noteHint(last.hint);
    if (last.timedOut) {
      // The owner may have crashed; a fresher view routes to whoever the
      // survivors promoted for its range.
      {
        std::lock_guard<std::mutex> lock(statsMutex_);
        routedStats_.retriesAfterTimeout += 1;
      }
      refreshView(cli);
      v = view();
      continue;
    }
    if (last.status == Status::Redirect) {
      {
        std::lock_guard<std::mutex> lock(statsMutex_);
        routedStats_.redirectsFollowed += 1;
      }
      // The fresh owner itself is the best node to pull the table from.
      const auto* red = std::get_if<RedirectRep>(&last.body);
      const bool pulled =
          red != nullptr && red->host != 0 &&
          pullView(cli, rpc::NetAddr{red->host, red->port});
      if (!pulled) refreshView(cli);
      v = view();
      continue;
    }
    return last;
  }
  return last;  // timed out / redirect-looped: caller's checkStatus throws
}

// --- Replication ------------------------------------------------------------

size_t RoutedNetDht::replicaFanout() const {
  auto v = view();
  const size_t members = v ? v->ring.memberCount() : opts_.replication;
  return std::min(opts_.replication, std::max<size_t>(members, 1)) - 1;
}

void RoutedNetDht::replicate(rpc::RpcClient& cli, const View& v,
                             const Key& key,
                             const std::optional<Value>& value, u64 version) {
  const size_t fanout = replicaFanout();
  if (fanout == 0) return;
  const auto holders = v.ring.holders(key, fanout);
  std::vector<rpc::RpcClient::Token> tokens;
  for (size_t i = 1; i < holders.size(); ++i) {
    auto it = v.addrs.find(holders[i]);
    if (it == v.addrs.end()) continue;
    if (value.has_value()) {
      tokens.push_back(
          cli.call(it->second, ReplicaPutReq{key, *value, version}));
    } else {
      tokens.push_back(cli.call(it->second, ReplicaRemoveReq{key}));
    }
  }
  cli.settle();
  // Best-effort, like NetDht: the primary committed already.
  for (auto t : tokens) (void)cli.take(t);
}

// --- Single-key ops ---------------------------------------------------------

void RoutedNetDht::put(const Key& key, Value value) {
  RoutedOpScope scope(*this, "dht.put", key);
  stats_.lookups += 1;
  stats_.puts += 1;
  stats_.hops += 1;
  stats_.valueBytesMoved += value.size();
  Lease lease(*this);
  auto r = callRouted(lease.rpc(), key, PutReq{key, value}, "put");
  checkStatus(r, "put", key);
  const u64 version = std::get<PutRep>(r.body).version;
  replicate(lease.rpc(), *requireView(), key, value, version);
}

std::optional<Value> RoutedNetDht::get(const Key& key) {
  RoutedOpScope scope(*this, "dht.get", key);
  stats_.lookups += 1;
  stats_.gets += 1;
  stats_.hops += 1;
  Lease lease(*this);
  auto r = callRouted(lease.rpc(), key, GetReq{key}, "get");
  checkStatus(r, "get", key);
  auto& rep = std::get<GetRep>(r.body);
  if (!rep.present) return std::nullopt;
  stats_.valueBytesMoved += rep.value.size();
  return std::move(rep.value);
}

bool RoutedNetDht::remove(const Key& key) {
  RoutedOpScope scope(*this, "dht.remove", key);
  stats_.lookups += 1;
  stats_.removes += 1;
  stats_.hops += 1;
  Lease lease(*this);
  auto r = callRouted(lease.rpc(), key, RemoveReq{key}, "remove");
  checkStatus(r, "remove", key);
  const bool existed = std::get<RemoveRep>(r.body).existed;
  if (existed) {
    replicate(lease.rpc(), *requireView(), key, std::nullopt, 0);
  }
  return existed;
}

bool RoutedNetDht::apply(const Key& key, const Mutator& fn) {
  RoutedOpScope scope(*this, "dht.apply", key);
  stats_.lookups += 1;
  stats_.applies += 1;
  stats_.hops += 1;
  Lease lease(*this);
  rpc::RpcClient& cli = lease.rpc();

  auto g = callRouted(cli, key, GetReq{key}, "apply");
  checkStatus(g, "apply", key);
  auto& snap = std::get<GetRep>(g.body);
  bool present = snap.present;
  u64 version = snap.version;
  Value current = std::move(snap.value);

  for (size_t attempt = 0; attempt < opts_.casRetries; ++attempt) {
    std::optional<Value> v =
        present ? std::optional<Value>(current) : std::nullopt;
    const bool existedBefore = present;
    fn(v);
    if (!v.has_value() && !present) return false;        // absent -> absent
    if (v.has_value() && present && *v == current) return true;  // no change
    if (v.has_value()) stats_.valueBytesMoved += v->size();

    CasReq cas{key, version, v.has_value(), v.value_or(Value{})};
    auto r = callRouted(cli, key, cas, "apply");
    checkStatus(r, "apply", key);
    auto& rep = std::get<CasRep>(r.body);
    if (rep.applied) {
      replicate(cli, *requireView(), key, v, rep.currentVersion);
      return existedBefore;
    }
    present = rep.currentPresent;
    version = rep.currentVersion;
    current = std::move(rep.currentValue);
  }
  throw DhtError("RoutedNetDht::apply: CAS contention exhausted on \"" + key +
                 "\"");
}

// --- Batch rounds -----------------------------------------------------------

namespace {

/// One outgoing batch datagram: entry positions packed for one owner id.
struct OwnerChunk {
  u64 owner = 0;
  std::vector<size_t> entries;
};

template <typename OwnerOf, typename ByteCost>
std::vector<OwnerChunk> packByOwner(const std::vector<size_t>& items,
                                    size_t maxKeys, size_t maxBytes,
                                    OwnerOf ownerOf, ByteCost byteCost) {
  std::vector<OwnerChunk> chunks;
  std::unordered_map<u64, size_t> open;  // owner -> open chunk index
  std::vector<size_t> chunkBytes;
  for (size_t i : items) {
    const u64 owner = ownerOf(i);
    const size_t cost = byteCost(i);
    auto it = open.find(owner);
    size_t c;
    if (it == open.end() || chunks[it->second].entries.size() >= maxKeys ||
        chunkBytes[it->second] + cost > maxBytes) {
      c = chunks.size();
      chunks.push_back(OwnerChunk{owner, {}});
      chunkBytes.push_back(0);
      open[owner] = c;
    } else {
      c = it->second;
    }
    chunks[c].entries.push_back(i);
    chunkBytes[c] += cost;
  }
  return chunks;
}

}  // namespace

std::vector<GetOutcome> RoutedNetDht::multiGet(const std::vector<Key>& keys) {
  if (keys.empty()) return {};
  obs::SpanScope span("dht.multiGet", "dht");
  stats_.batchRounds += 1;
  stats_.lookups += keys.size();
  stats_.gets += keys.size();
  stats_.hops += keys.size();

  Lease lease(*this);
  rpc::RpcClient& cli = lease.rpc();
  std::vector<GetOutcome> out(keys.size());
  std::vector<size_t> active(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) active[i] = i;

  for (size_t round = 0; round < opts_.maxBatchRounds && !active.empty();
       ++round) {
    auto v = view();
    if (!v) {
      if (!refreshView(cli)) break;
      v = requireView();
    }
    const auto chunks = packByOwner(
        active, opts_.maxKeysPerDatagram, opts_.maxBytesPerDatagram,
        [&](size_t i) { return v->ring.owner(keys[i]); },
        [&](size_t i) { return keys[i].size() + 8; });
    std::vector<rpc::RpcClient::Token> tokens(chunks.size(), 0);
    std::vector<bool> sent(chunks.size(), false);
    for (size_t ci = 0; ci < chunks.size(); ++ci) {
      auto it = v->addrs.find(chunks[ci].owner);
      if (it == v->addrs.end()) continue;  // stale view: retry next round
      MultiGetReq req;
      req.entries.reserve(chunks[ci].entries.size());
      for (size_t i : chunks[ci].entries) req.entries.push_back(GetReq{keys[i]});
      tokens[ci] = cli.call(it->second, std::move(req));
      sent[ci] = true;
      if (round > 0) stats_.hops += chunks[ci].entries.size();
    }
    cli.settle();

    std::vector<size_t> retry;
    bool wantRefresh = false;
    for (size_t ci = 0; ci < chunks.size(); ++ci) {
      if (!sent[ci]) {
        retry.insert(retry.end(), chunks[ci].entries.begin(),
                     chunks[ci].entries.end());
        wantRefresh = true;
        continue;
      }
      auto r = cli.take(tokens[ci]);
      noteHint(r.hint);
      if (r.timedOut || r.status == Status::Redirect) {
        // Stale grouping (join/leave in flight) or a dead owner: refresh
        // and regroup just these entries.
        retry.insert(retry.end(), chunks[ci].entries.begin(),
                     chunks[ci].entries.end());
        wantRefresh = true;
        if (r.status == Status::Redirect) {
          std::lock_guard<std::mutex> lock(statsMutex_);
          routedStats_.redirectsFollowed += 1;
        }
        continue;
      }
      if (r.status != Status::Ok) {
        const std::string err =
            std::string("RoutedNetDht::multiGet: status ") +
            statusName(r.status);
        for (size_t i : chunks[ci].entries) out[i].error = err;
        continue;
      }
      auto& rep = std::get<MultiGetRep>(r.body);
      common::checkInvariant(rep.entries.size() == chunks[ci].entries.size(),
                             "RoutedNetDht::multiGet: entry count mismatch");
      for (size_t j = 0; j < rep.entries.size(); ++j) {
        GetOutcome& o = out[chunks[ci].entries[j]];
        o.ok = true;
        if (rep.entries[j].present) {
          stats_.valueBytesMoved += rep.entries[j].value.size();
          o.value = std::move(rep.entries[j].value);
        }
      }
    }
    active = std::move(retry);
    if (wantRefresh && !active.empty()) refreshView(cli);
  }
  for (size_t i : active) {
    if (out[i].error.empty() && !out[i].ok) {
      out[i].error = "RoutedNetDht::multiGet: rpc timeout";
    }
  }
  return out;
}

std::vector<ApplyOutcome> RoutedNetDht::multiApply(
    const std::vector<ApplyRequest>& reqs) {
  if (reqs.empty()) return {};
  obs::SpanScope span("dht.multiApply", "dht");
  stats_.batchRounds += 1;
  stats_.lookups += reqs.size();
  stats_.applies += reqs.size();
  stats_.hops += reqs.size();

  Lease lease(*this);
  rpc::RpcClient& cli = lease.rpc();
  std::vector<ApplyOutcome> out(reqs.size());

  struct State {
    bool present = false;
    u64 version = 0;
    Value value;
    bool existedAtFirstCas = false;
  };
  std::vector<State> state(reqs.size());

  // Snapshot phase (batched GETs, regrouped on redirect/timeout).
  std::vector<size_t> active;
  {
    std::vector<size_t> pending(reqs.size());
    for (size_t i = 0; i < reqs.size(); ++i) pending[i] = i;
    for (size_t round = 0; round < opts_.maxBatchRounds && !pending.empty();
         ++round) {
      auto v = view();
      if (!v) {
        if (!refreshView(cli)) break;
        v = requireView();
      }
      const auto chunks = packByOwner(
          pending, opts_.maxKeysPerDatagram, opts_.maxBytesPerDatagram,
          [&](size_t i) { return v->ring.owner(reqs[i].key); },
          [&](size_t i) { return reqs[i].key.size() + 8; });
      std::vector<rpc::RpcClient::Token> tokens(chunks.size(), 0);
      std::vector<bool> sent(chunks.size(), false);
      for (size_t ci = 0; ci < chunks.size(); ++ci) {
        auto it = v->addrs.find(chunks[ci].owner);
        if (it == v->addrs.end()) continue;
        MultiGetReq req;
        for (size_t i : chunks[ci].entries) {
          req.entries.push_back(GetReq{reqs[i].key});
        }
        tokens[ci] = cli.call(it->second, std::move(req));
        sent[ci] = true;
        if (round > 0) stats_.hops += chunks[ci].entries.size();
      }
      cli.settle();
      std::vector<size_t> retry;
      bool wantRefresh = false;
      for (size_t ci = 0; ci < chunks.size(); ++ci) {
        if (!sent[ci]) {
          retry.insert(retry.end(), chunks[ci].entries.begin(),
                       chunks[ci].entries.end());
          wantRefresh = true;
          continue;
        }
        auto r = cli.take(tokens[ci]);
        noteHint(r.hint);
        if (r.timedOut || r.status == Status::Redirect) {
          retry.insert(retry.end(), chunks[ci].entries.begin(),
                       chunks[ci].entries.end());
          wantRefresh = true;
          continue;
        }
        if (r.status != Status::Ok) {
          for (size_t i : chunks[ci].entries) {
            out[i].error = std::string("RoutedNetDht::multiApply: status ") +
                           statusName(r.status);
          }
          continue;
        }
        auto& rep = std::get<MultiGetRep>(r.body);
        for (size_t j = 0; j < rep.entries.size(); ++j) {
          const size_t i = chunks[ci].entries[j];
          state[i].present = rep.entries[j].present;
          state[i].version = rep.entries[j].version;
          state[i].value = std::move(rep.entries[j].value);
          active.push_back(i);
        }
      }
      pending = std::move(retry);
      if (wantRefresh && !pending.empty()) refreshView(cli);
    }
    for (size_t i : pending) {
      out[i].error = "RoutedNetDht::multiApply: snapshot rpc timeout";
    }
  }

  // CAS rounds. A Redirect means the CAS did NOT execute, so retrying it
  // (after a view refresh) is safe; a conflict carries fresh state.
  std::vector<std::pair<Key, std::pair<std::optional<Value>, u64>>> toReplicate;
  for (size_t round = 0; round < opts_.casRetries && !active.empty(); ++round) {
    std::vector<size_t> casEntries;
    std::vector<CasReq> casReqs;
    for (size_t i : active) {
      State& s = state[i];
      std::optional<Value> v =
          s.present ? std::optional<Value>(s.value) : std::nullopt;
      reqs[i].fn(v);
      if (!v.has_value() && !s.present) {
        out[i].ok = true;
        out[i].existed = false;
        continue;
      }
      if (v.has_value() && s.present && *v == s.value) {
        out[i].ok = true;
        out[i].existed = true;
        continue;
      }
      if (v.has_value()) stats_.valueBytesMoved += v->size();
      s.existedAtFirstCas = s.present;
      casEntries.push_back(i);
      casReqs.push_back(
          CasReq{reqs[i].key, s.version, v.has_value(), v.value_or(Value{})});
    }
    active.clear();
    if (casEntries.empty()) break;

    auto v = requireView();
    std::vector<size_t> positions(casEntries.size());
    for (size_t j = 0; j < positions.size(); ++j) positions[j] = j;
    const auto chunks = packByOwner(
        positions, opts_.maxKeysPerDatagram, opts_.maxBytesPerDatagram,
        [&](size_t j) { return v->ring.owner(casReqs[j].key); },
        [&](size_t j) {
          return casReqs[j].key.size() + casReqs[j].value.size() + 16;
        });
    std::vector<rpc::RpcClient::Token> tokens(chunks.size(), 0);
    std::vector<bool> sent(chunks.size(), false);
    for (size_t ci = 0; ci < chunks.size(); ++ci) {
      auto it = v->addrs.find(chunks[ci].owner);
      if (it == v->addrs.end()) continue;
      MultiCasReq req;
      for (size_t j : chunks[ci].entries) req.entries.push_back(casReqs[j]);
      tokens[ci] = cli.call(it->second, std::move(req));
      sent[ci] = true;
    }
    cli.settle();
    bool wantRefresh = false;
    for (size_t ci = 0; ci < chunks.size(); ++ci) {
      if (!sent[ci]) {
        for (size_t j : chunks[ci].entries) active.push_back(casEntries[j]);
        wantRefresh = true;
        continue;
      }
      auto r = cli.take(tokens[ci]);
      noteHint(r.hint);
      if (r.status == Status::Redirect && !r.timedOut) {
        for (size_t j : chunks[ci].entries) active.push_back(casEntries[j]);
        wantRefresh = true;
        continue;
      }
      if (r.timedOut || r.status != Status::Ok) {
        // Lost reply: the CAS may or may not have executed — the
        // documented lost-reply semantics for a failed apply entry.
        for (size_t j : chunks[ci].entries) {
          out[casEntries[j]].error = "RoutedNetDht::multiApply: cas rpc timeout";
        }
        continue;
      }
      auto& rep = std::get<MultiCasRep>(r.body);
      for (size_t k = 0; k < rep.entries.size(); ++k) {
        const size_t j = chunks[ci].entries[k];
        const size_t i = casEntries[j];
        CasRep& cr = rep.entries[k];
        if (cr.applied) {
          out[i].ok = true;
          out[i].existed = state[i].existedAtFirstCas;
          toReplicate.emplace_back(
              reqs[i].key,
              std::make_pair(casReqs[j].present
                                 ? std::optional<Value>(casReqs[j].value)
                                 : std::nullopt,
                             cr.currentVersion));
        } else {
          state[i].present = cr.currentPresent;
          state[i].version = cr.currentVersion;
          state[i].value = std::move(cr.currentValue);
          active.push_back(i);
        }
      }
    }
    if (wantRefresh && !active.empty()) refreshView(cli);
  }
  for (size_t i : active) {
    out[i].error = "RoutedNetDht::multiApply: CAS contention exhausted";
  }

  if (replicaFanout() > 0 && !toReplicate.empty()) {
    auto v = requireView();
    for (const auto& [key, vv] : toReplicate) {
      replicate(cli, *v, key, vv.first, vv.second);
    }
  }
  return out;
}

// --- Unrouted / admin -------------------------------------------------------

void RoutedNetDht::unaccountedPut(const Key& key, Value value) {
  Lease lease(*this);
  auto r = callRouted(lease.rpc(), key, PutReq{key, value}, "storeDirect");
  checkStatus(r, "storeDirect", key);
  replicate(lease.rpc(), *requireView(), key, value,
            std::get<PutRep>(r.body).version);
}

void RoutedNetDht::storeDirect(const Key& key, Value value) {
  unaccountedPut(key, std::move(value));
}

std::optional<Value> RoutedNetDht::getReplica(const Key& key,
                                              size_t replicaIndex) {
  RoutedOpScope scope(*this, "dht.get_replica", key);
  stats_.lookups += 1;
  stats_.gets += 1;
  stats_.hops += 1;
  const size_t fanout = replicaFanout();
  if (replicaIndex >= fanout) {
    throw DhtError("RoutedNetDht::getReplica: no replica " +
                   std::to_string(replicaIndex));
  }
  auto v = requireView();
  const auto holders = v->ring.holders(key, fanout);
  if (holders.size() <= replicaIndex + 1) {
    throw DhtPeerDownError("RoutedNetDht::getReplica: holder unknown");
  }
  auto it = v->addrs.find(holders[replicaIndex + 1]);
  if (it == v->addrs.end()) {
    throw DhtPeerDownError("RoutedNetDht::getReplica: holder unknown");
  }
  Lease lease(*this);
  auto r = lease.rpc().callOne(it->second, ReplicaGetReq{key});
  noteHint(r.hint);
  if (r.timedOut) {
    throw DhtPeerDownError("RoutedNetDht::getReplica: holder " +
                           it->second.str() + " unresponsive for \"" + key +
                           "\"");
  }
  checkStatus(r, "getReplica", key);
  auto& rep = std::get<GetRep>(r.body);
  if (!rep.present) return std::nullopt;
  stats_.valueBytesMoved += rep.value.size();
  return std::move(rep.value);
}

void RoutedNetDht::syncStorage() {
  auto v = requireView();
  Lease lease(*this);
  std::vector<rpc::RpcClient::Token> tokens;
  for (const auto& [id, addr] : v->addrs) {
    tokens.push_back(lease.rpc().call(addr, SyncReq{}));
  }
  lease.rpc().settle();
  for (auto t : tokens) (void)lease.rpc().take(t);
}

void RoutedNetDht::compactStorage() {
  auto v = requireView();
  Lease lease(*this);
  std::vector<rpc::RpcClient::Token> tokens;
  for (const auto& [id, addr] : v->addrs) {
    tokens.push_back(lease.rpc().call(addr, CompactReq{}));
  }
  lease.rpc().settle();
  for (auto t : tokens) (void)lease.rpc().take(t);
}

size_t RoutedNetDht::size() const {
  auto v = requireView();
  Lease lease(*this);
  std::vector<rpc::RpcClient::Token> tokens;
  for (const auto& [id, addr] : v->addrs) {
    tokens.push_back(lease.rpc().call(addr, SizeReq{}));
  }
  lease.rpc().settle();
  size_t total = 0;
  for (auto t : tokens) {
    auto r = lease.rpc().take(t);
    if (r.timedOut) {
      throw DhtTimeoutError("RoutedNetDht::size: a node did not answer");
    }
    total += static_cast<size_t>(std::get<SizeRep>(r.body).primaryKeys);
  }
  return total;
}

}  // namespace lht::dht
