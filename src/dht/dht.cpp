// Intentionally small: the interface is header-only; this translation unit
// anchors the vtable.
#include "dht/dht.h"

namespace lht::dht {}  // namespace lht::dht
