#include "dht/dht.h"

namespace lht::dht {

// Base batch rounds: sequential loops with per-entry error translation.
// Substrates and decorators override these to add round-level latency and
// fault semantics; the base keeps the contract (DhtError -> failed entry,
// CrashError and everything else propagates).

std::vector<GetOutcome> Dht::multiGet(const std::vector<Key>& keys) {
  std::vector<GetOutcome> out;
  out.reserve(keys.size());
  if (keys.empty()) return out;
  stats_.batchRounds += 1;
  for (const Key& key : keys) {
    GetOutcome o;
    try {
      o.value = get(key);
      o.ok = true;
    } catch (const DhtError& e) {
      o.ok = false;
      o.value.reset();
      o.error = e.what();
    }
    out.push_back(std::move(o));
  }
  return out;
}

std::vector<ApplyOutcome> Dht::multiApply(const std::vector<ApplyRequest>& reqs) {
  std::vector<ApplyOutcome> out;
  out.reserve(reqs.size());
  if (reqs.empty()) return out;
  stats_.batchRounds += 1;
  for (const ApplyRequest& req : reqs) {
    ApplyOutcome o;
    try {
      o.existed = apply(req.key, req.fn);
      o.ok = true;
    } catch (const DhtError& e) {
      o.ok = false;
      o.error = e.what();
    }
    out.push_back(std::move(o));
  }
  return out;
}

}  // namespace lht::dht
