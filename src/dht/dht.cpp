#include "dht/dht.h"

#include "obs/obs.h"

namespace lht::dht {

Dht::RoutedOpScope::RoutedOpScope(Dht& dht, const char* spanName,
                                  const Key& key)
    : dht_(dht), hops0_(dht.stats_.hops), span_(spanName, "dht") {
  if (span_.enabled()) span_.arg("key", key);
  if (obs::metrics() != nullptr) {
    obs::count(std::string(spanName) + ".raw");
  }
}

Dht::RoutedOpScope::~RoutedOpScope() {
  const u64 hops = dht_.stats_.hops - hops0_;
  if (obs::metrics() != nullptr) {
    if (hops != 0) obs::count("dht.hops", hops);
    obs::observe("dht.hops_per_op", static_cast<double>(hops));
  }
  span_.arg("hops", hops);
}

std::optional<Value> Dht::getReplica(const Key& key, size_t replicaIndex) {
  (void)key;
  throw DhtError("Dht: replica " + std::to_string(replicaIndex) +
                 " read unsupported by this substrate");
}

// Base batch rounds: sequential loops with per-entry error translation.
// Substrates and decorators override these to add round-level latency and
// fault semantics; the base keeps the contract (DhtError -> failed entry,
// CrashError and everything else propagates). Each entry gets its own span
// flow-linked to the round span, so a trace shows which logical batch a
// routed op belonged to even after decorators re-issue entries.

std::vector<GetOutcome> Dht::multiGet(const std::vector<Key>& keys) {
  std::vector<GetOutcome> out;
  out.reserve(keys.size());
  if (keys.empty()) return out;
  stats_.batchRounds += 1;
  obs::SpanScope round("dht.multiGet", "dht");
  round.arg("entries", static_cast<u64>(keys.size()));
  obs::count("dht.round.count");
  obs::count("dht.round.entries", keys.size());
  for (const Key& key : keys) {
    obs::SpanScope entry("dht.round.entry", "dht");
    obs::flow(round.id(), entry.id());
    GetOutcome o;
    try {
      o.value = get(key);
      o.ok = true;
    } catch (const DhtError& e) {
      o.ok = false;
      o.value.reset();
      o.error = e.what();
    }
    out.push_back(std::move(o));
  }
  return out;
}

std::vector<ApplyOutcome> Dht::multiApply(const std::vector<ApplyRequest>& reqs) {
  std::vector<ApplyOutcome> out;
  out.reserve(reqs.size());
  if (reqs.empty()) return out;
  stats_.batchRounds += 1;
  obs::SpanScope round("dht.multiApply", "dht");
  round.arg("entries", static_cast<u64>(reqs.size()));
  obs::count("dht.round.count");
  obs::count("dht.round.entries", reqs.size());
  for (const ApplyRequest& req : reqs) {
    obs::SpanScope entry("dht.round.entry", "dht");
    obs::flow(round.id(), entry.id());
    ApplyOutcome o;
    try {
      o.existed = apply(req.key, req.fn);
      o.ok = true;
    } catch (const DhtError& e) {
      o.ok = false;
      o.error = e.what();
    }
    out.push_back(std::move(o));
  }
  return out;
}

}  // namespace lht::dht
