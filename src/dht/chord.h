// Chord-style ring DHT with finger-table routing.
//
// Stands in for the Bamboo deployment of the paper's testbed (both are
// ring-geometry DHTs; see DESIGN.md substitutions). Peers and keys are
// hashed with xxHash64 onto a 2^64 identifier ring; a key is owned by its
// successor peer. Lookups route iteratively through finger tables in
// O(log N) hops, every hop accounted on the SimNetwork. Joins and leaves
// hand keys off to the new owner, so the stored state stays consistent
// under churn.
//
// Thread safety (DESIGN.md §10): topology (the node map, fingers) is
// guarded by a shared mutex — routed ops hold it shared for their whole
// duration, membership changes hold it exclusive. Per-node key stores are
// guarded by a striped mutex keyed by OWNER NODE ID (not raw key: one
// node's unordered_map is a single object, so the stripe must cover the
// whole node). Ops touching several nodes (replica pushes) take their
// stripes via deadlock-free MultiGuard; membership changes need no stripe
// locks because the exclusive topology lock already excludes every routed
// op.
#pragma once

#include <map>
#include <set>
#include <shared_mutex>
#include <vector>

#include "common/random.h"
#include "common/striped_mutex.h"
#include "dht/dht.h"
#include "net/sim_network.h"
#include "store/mem_table.h"

namespace lht::dht {

class ChordDht final : public Dht {
 public:
  struct Options {
    size_t initialPeers = 32;   ///< ring size at construction
    common::u64 seed = 1;       ///< peer naming / entry-point randomness
    bool randomEntry = true;    ///< route from a random peer per lookup
    /// Copies of every key (1 = no replication). With r >= 2 the ring
    /// keeps each key on its owner plus the r-1 following successors, so
    /// data survives an *ungraceful* peer failure (see fail()). Replica
    /// pushes cost messages but no extra DHT-lookups.
    size_t replication = 1;
    /// Ring points per physical peer. Consistent hashing with a single
    /// point per peer leaves O(log N)-factor arc-length imbalance; v
    /// virtual nodes shrink it toward uniform (classic Chord/Dynamo
    /// technique). Each peer owns v independent ring ids.
    size_t virtualNodes = 1;
  };

  ChordDht(net::SimNetwork& network, Options options);

  // Dht interface ----------------------------------------------------------
  void put(const Key& key, Value value) override;
  std::optional<Value> get(const Key& key) override;
  bool remove(const Key& key) override;
  bool apply(const Key& key, const Mutator& fn) override;
  void storeDirect(const Key& key, Value value) override;
  [[nodiscard]] size_t size() const override;

  /// One batch = one parallel round on the simulated network: per-entry
  /// routing hops and bytes are accounted normally; simulated time
  /// advances by the longest entry only (critical-path RTT).
  std::vector<GetOutcome> multiGet(const std::vector<Key>& keys) override;
  std::vector<ApplyOutcome> multiApply(
      const std::vector<ApplyRequest>& reqs) override;

  // Membership -------------------------------------------------------------
  /// Adds a peer named `name` (with Options::virtualNodes ring points);
  /// keys it now owns move from their previous successors. Returns the
  /// peer's first ring identifier.
  common::u64 join(const std::string& name);

  /// Gracefully removes the *peer* owning ring id `nodeId` — all of its
  /// virtual nodes leave together and its keys move to their new owners.
  /// Requires at least two peers.
  void leave(common::u64 nodeId);

  /// Ungraceful failure of the peer owning ring id `nodeId`: it vanishes
  /// without handing anything off. Surviving replicas
  /// (Options::replication >= 2) are promoted on the new owners; without
  /// replication the failed peer's keys are lost. Requires >= two peers.
  /// Recovery is INSTANT — fail() models a ring whose stabilization
  /// outruns the observer. Use crash() to model the window in between.
  void fail(common::u64 nodeId);

  // Crash mode (availability under churn) -----------------------------------
  /// Crash-mode failure of the peer owning ring id `nodeId`: the peer goes
  /// dark but its ring nodes STAY in the topology until repairStep()
  /// excises them, so routed operations whose owner is down fail loudly
  /// with DhtPeerDownError instead of silently reporting the key absent
  /// (a silent miss would mis-steer the index's binary search). Replica
  /// reads (getReplica) against surviving holders keep working — that is
  /// the failover window the availability layer exploits. Intermediate
  /// routing hops ignore down peers (fast-stabilizing fingers); only the
  /// terminal owner matters. Crashes accumulate until repaired; graceful
  /// join/leave/fail are rejected while crashes are pending.
  void crash(common::u64 nodeId);

  /// One bounded anti-entropy repair slice. The first call after crashes
  /// excises the dead ring nodes and promotes surviving replicas onto the
  /// new owners in the same step (promotion is local inheritance on the
  /// successor — splitting it from excision would open a silent-miss
  /// window). Every call then applies up to `maxKeys` replica fix-ups
  /// (re-pushing missing copies, dropping misplaced ones), recomputed
  /// from a fresh placement scan so concurrent client writes are never
  /// double-repaired. Returns fix-ups applied; 0 means converged.
  size_t repairStep(size_t maxKeys);

  /// Replica placements still missing or misplaced (0 when the ring is
  /// whole). Before excision this counts the promotions repair owes —
  /// the gauge may legitimately rise once excision exposes the full
  /// re-push backlog.
  [[nodiscard]] size_t replicaDeficit() const;

  /// True when no crashes are pending and every replica sits where the
  /// placement rule wants it (checkReplication() would pass).
  [[nodiscard]] bool repairConverged() const;

  /// Keys destroyed by crashes that no surviving replica could resurrect
  /// (only possible with replication == 1 or correlated crashes).
  [[nodiscard]] common::u64 lostKeys() const { return lostKeys_; }

  /// Whether crashing `nodeId`'s peer — on top of any crashes already
  /// pending — would destroy the last live copy of some key. Storm drivers
  /// use it to space wave victims across replica sets (the paper's
  /// fluctuation model assumes independent, not targeted, failures).
  [[nodiscard]] bool crashWouldLoseData(common::u64 nodeId) const;

  /// Peers currently dark (crashed, not yet excised by repairStep).
  [[nodiscard]] size_t crashedPeerCount() const;

  /// Physical peers that are up (peerCount() minus crashed).
  [[nodiscard]] size_t livePeerCount() const;

  /// Ring ids of nodes on live (non-crashed) peers, sorted.
  [[nodiscard]] std::vector<common::u64> liveNodeIds() const;

  // Replica reads ------------------------------------------------------------
  [[nodiscard]] size_t replicaFanout() const override {
    return opts_.replication > 0 ? opts_.replication - 1 : 0;
  }

  /// Routes to the key's `replicaIndex`-th distinct-peer successor and
  /// reads the copy it holds (its replica table, or its primary store once
  /// repair promoted the key). Throws DhtPeerDownError when that holder is
  /// down too.
  std::optional<Value> getReplica(const Key& key, size_t replicaIndex) override;

  /// Reads served per physical peer (primary gets plus replica reads,
  /// multiGet entries included), in ring order of each peer's first
  /// node. The skew campaign's load-balance measure: with hot leaves the
  /// max/mean of this vector is the read bottleneck.
  [[nodiscard]] std::vector<common::u64> readLoadByPeer() const;

  /// Zeroes the per-node served-read counters (e.g. after preload, so a
  /// measurement window sees only its own traffic).
  void resetReadLoad();

  /// Number of physical peers currently in the ring (crashed peers still
  /// count until repairStep() excises them).
  [[nodiscard]] size_t peerCount() const;

  /// Copies kept of every key (Options::replication as configured).
  [[nodiscard]] size_t replicationFactor() const { return opts_.replication; }

  /// Ring ids of all current peers (sorted).
  [[nodiscard]] std::vector<common::u64> nodeIds() const;

  /// Ring id of the peer that owns `key` (no routing, no accounting).
  [[nodiscard]] common::u64 ownerOf(const Key& key) const;

  /// Number of keys stored on the peer with ring id `nodeId`.
  [[nodiscard]] size_t keysOn(common::u64 nodeId) const;

  /// Validates ring invariants (finger correctness, full key ownership).
  /// Returns true when consistent; used by tests.
  [[nodiscard]] bool checkRing() const;

  /// Validates replica placement: every primary key is copied on exactly
  /// the min(replication, peers) - 1 successors of its owner, and every
  /// replica backs a live primary.
  [[nodiscard]] bool checkReplication() const;

 private:
  struct Node {
    common::u64 id = 0;
    net::PeerId peer = net::kInvalidPeer;
    std::vector<common::u64> fingers;  // finger[k] = successor(id + 2^k)
    store::MemTable store;     // keys this node owns
    store::MemTable replicas;  // copies held for predecessors
    /// Reads this node served (primary or as replica holder). Guarded by
    /// the node's store stripe, like the tables it measures.
    common::u64 servedReads = 0;
  };

  // Every private helper below assumes topoMutex_ is held (shared suffices
  // unless noted); helpers that read/write node stores additionally expect
  // the caller to hold the relevant store stripes — or the exclusive
  // topology lock, which subsumes them.
  Node& nodeById(common::u64 id);
  const Node& nodeById(common::u64 id) const;
  [[nodiscard]] common::u64 successorOf(common::u64 id) const;  // first id > given (wrap)
  [[nodiscard]] common::u64 ownerOfId(common::u64 keyId) const;
  [[nodiscard]] size_t peerCountUnlocked() const;
  void rebuildFingers();
  /// Removes all ring nodes of the peer owning `nodeId`. Gracefully
  /// re-homes their primaries (leave) or drops them and recovers from
  /// replicas (fail). Requires the exclusive topology lock.
  void removePeerLocked(common::u64 nodeId, bool graceful);
  /// The `count` ring nodes following `id` clockwise that belong to a
  /// *different peer* than `id` (replicas on one's own virtual nodes would
  /// not survive that peer's failure).
  [[nodiscard]] std::vector<common::u64> successorsOf(common::u64 id,
                                                      size_t count) const;
  /// The stripe set a write to `key`'s owner must hold: the owner node
  /// plus its replica holders.
  [[nodiscard]] std::vector<common::u64> writeSetOf(common::u64 ownerId) const;
  /// Pushes fresh copies of (key, value) from its owner to the replica set.
  void pushReplicas(const Node& owner, const Key& key, const Value& value);
  /// Drops `key`'s replicas from its owner's replica holders (the only
  /// nodes that can hold them between membership changes).
  void dropReplicas(common::u64 ownerId, const Key& key);
  /// Recomputes every replica placement from the primaries (after churn).
  /// Requires the exclusive topology lock.
  void rebuildReplicas();
  /// Whether the node's peer is crashed (caller holds topoMutex_).
  [[nodiscard]] bool nodeDown(const Node& node) const {
    return crashedPeers_.count(node.peer) != 0;
  }
  /// Throws DhtPeerDownError when the routed-to owner is dark.
  void throwIfDown(common::u64 ownerId, const char* op) const;
  /// Distinct live peers (caller holds topoMutex_).
  [[nodiscard]] size_t livePeerCountUnlocked() const;
  /// Removes crashed peers' ring nodes and promotes surviving replicas
  /// onto the new owners (exclusive topology lock required).
  void exciseCrashedLocked();
  /// One replica fix-up: push a missing/stale copy owner -> holder, or
  /// drop a copy no placement accounts for.
  struct RepairAction {
    enum class Kind { Push, Drop };
    Kind kind = Kind::Push;
    common::u64 ownerId = 0;
    common::u64 holderId = 0;
    Key key;
  };
  /// Scans placement vs the rule and emits the fix-ups that would make
  /// checkReplication() pass. Assumes no crashes pending (post-excision);
  /// caller holds topoMutex_ plus the store stripes (or the exclusive
  /// lock).
  void collectRepairActions(std::vector<RepairAction>& out) const;
  /// Routes from a (random or fixed) entry peer to the owner of keyId,
  /// accounting hops and messages. Returns the owner node id.
  common::u64 route(common::u64 keyId, u64 requestBytes);
  void accountValueBytes(u64 n) { stats_.valueBytesMoved += n; }

  net::SimNetwork& net_;
  Options opts_;
  common::Pcg32 rng_;
  std::map<common::u64, Node> nodes_;  // ordered by ring id
  /// Peers that crashed and await excision by repairStep(). Guarded by
  /// topoMutex_ like the node map it shadows.
  std::set<net::PeerId> crashedPeers_;
  common::u64 lostKeys_ = 0;  ///< keys destroyed with no surviving replica

  /// Routed ops shared, membership exclusive.
  mutable std::shared_mutex topoMutex_;
  /// Per-node store/replica maps, striped by owner node id.
  mutable common::StripedMutex storeLocks_{64};
  /// Entry-point randomness; Pcg32 is not concurrency-safe.
  mutable std::mutex rngMutex_;
};

}  // namespace lht::dht
