#include "dht/pastry.h"

#include "dht/batch_round.h"

#include <algorithm>
#include <bit>

#include "common/hash.h"

namespace lht::dht {

using common::u32;
using common::u64;

namespace {

/// Hex digit `pos` of `id` (0 = most significant nibble).
u32 hexDigit(u64 id, u32 pos) { return static_cast<u32>((id >> (60 - 4 * pos)) & 0xF); }

/// Number of leading hex digits shared by a and b (16 when equal).
u32 sharedDigits(u64 a, u64 b) {
  if (a == b) return 16;
  return static_cast<u32>(std::countl_zero(a ^ b)) / 4;
}

/// Clockwise distance a -> b on the 2^64 circle.
u64 cwDist(u64 a, u64 b) { return b - a; }

/// Circular (undirected) distance.
u64 circDist(u64 a, u64 b) { return std::min(a - b, b - a); }

/// Ordering used for "numerically closest" with deterministic ties.
bool closerTo(u64 key, u64 a, u64 b) {
  const u64 da = circDist(a, key);
  const u64 db = circDist(b, key);
  if (da != db) return da < db;
  return a < b;
}

}  // namespace

PastryDht::PastryDht(net::SimNetwork& network, Options options)
    : net_(network), opts_(options), rng_(options.seed, /*stream=*/0x9a57u) {
  common::checkInvariant(opts_.initialPeers >= 1, "PastryDht: need >= 1 peer");
  common::checkInvariant(opts_.leafSetHalf >= 1, "PastryDht: leaf set empty");
  for (size_t i = 0; i < opts_.initialPeers; ++i) {
    join("pastry-peer-" + std::to_string(i));
  }
}

u64 PastryDht::join(const std::string& name) {
  std::unique_lock topo(topoMutex_);
  u64 id = common::hash::xxhash64(name, opts_.seed ^ 0x70617374ull);
  while (id == 0 || nodes_.count(id) != 0) id = common::hash::splitmix64(id);
  Node node;
  node.id = id;
  node.peer = net_.addPeer(name);
  nodes_.emplace(id, std::move(node));
  rebuildTables();
  rehomeAllKeys();
  rebuildReplicas();
  return id;
}

void PastryDht::leave(u64 nodeId) {
  std::unique_lock topo(topoMutex_);
  common::checkInvariant(nodes_.size() >= 2, "PastryDht::leave: last peer");
  auto it = nodes_.find(nodeId);
  common::checkInvariant(it != nodes_.end(), "PastryDht::leave: unknown node");
  auto orphans = it->second.store.drain();
  const net::PeerId fromPeer = it->second.peer;
  nodes_.erase(it);
  rebuildTables();
  for (auto& [k, v] : orphans) {
    Node& owner = nodeById(ownerOfId(common::hash::xxhash64(k, 0)));
    net_.send(fromPeer, owner.peer, k.size() + v.size());
    owner.store.put(k, std::move(v));
  }
  net_.setOnline(fromPeer, false);
  rehomeAllKeys();
  rebuildReplicas();
}

void PastryDht::fail(u64 nodeId) {
  std::unique_lock topo(topoMutex_);
  common::checkInvariant(nodes_.size() >= 2, "PastryDht::fail: last peer");
  auto it = nodes_.find(nodeId);
  common::checkInvariant(it != nodes_.end(), "PastryDht::fail: unknown node");
  // The peer vanishes with its primaries and replicas. (Removal cannot
  // change the numerically closest node of keys on the survivors, so no
  // re-homing is needed.)
  net_.setOnline(it->second.peer, false);
  nodes_.erase(it);
  rebuildTables();
  // Promote surviving replicas whose primary died onto the new owners.
  std::vector<std::pair<Key, Value>> recovered;
  for (auto& [id, node] : nodes_) {
    node.replicas.forEach([&](const Key& k, const Value& v) {
      if (!nodeById(ownerOfId(common::hash::xxhash64(k, 0))).store.contains(k)) {
        recovered.emplace_back(k, v);
      }
    });
  }
  for (auto& [k, v] : recovered) {
    Node& owner = nodeById(ownerOfId(common::hash::xxhash64(k, 0)));
    if (!owner.store.contains(k)) owner.store.put(k, std::move(v));
  }
  rebuildReplicas();
}

std::vector<u64> PastryDht::replicaHoldersOf(u64 ownerId) const {
  std::vector<u64> out;
  if (opts_.replication <= 1) return out;
  const size_t want = std::min(opts_.replication, nodes_.size()) - 1;
  out.reserve(nodes_.size() - 1);
  for (const auto& [id, n] : nodes_) {
    if (id != ownerId) out.push_back(id);
  }
  std::sort(out.begin(), out.end(),
            [ownerId](u64 a, u64 b) { return closerTo(ownerId, a, b); });
  out.resize(want);
  return out;
}

std::vector<u64> PastryDht::writeSetOf(u64 ownerId) const {
  std::vector<u64> set{ownerId};
  for (u64 hid : replicaHoldersOf(ownerId)) set.push_back(hid);
  return set;
}

void PastryDht::pushReplicas(const Node& owner, const Key& key,
                             const Value& value) {
  for (u64 hid : replicaHoldersOf(owner.id)) {
    Node& holder = nodeById(hid);
    net_.send(owner.peer, holder.peer, key.size() + value.size());
    holder.replicas.put(key, value);
  }
}

void PastryDht::dropReplicas(u64 ownerId, const Key& key) {
  for (u64 hid : replicaHoldersOf(ownerId)) {
    nodeById(hid).replicas.erase(key);
  }
}

void PastryDht::rebuildReplicas() {
  if (opts_.replication <= 1) return;
  for (auto& [id, node] : nodes_) node.replicas.clear();
  for (auto& [id, node] : nodes_) {
    node.store.forEach(
        [&](const Key& k, const Value& v) { pushReplicas(node, k, v); });
  }
}

std::vector<u64> PastryDht::nodeIdsUnlocked() const {
  std::vector<u64> ids;
  ids.reserve(nodes_.size());
  for (const auto& [id, n] : nodes_) ids.push_back(id);
  return ids;
}

std::vector<u64> PastryDht::nodeIds() const {
  std::shared_lock topo(topoMutex_);
  return nodeIdsUnlocked();
}

u64 PastryDht::ownerOf(const Key& key) const {
  std::shared_lock topo(topoMutex_);
  return ownerOfId(common::hash::xxhash64(key, 0));
}

PastryDht::Node& PastryDht::nodeById(u64 id) {
  auto it = nodes_.find(id);
  common::checkInvariant(it != nodes_.end(), "PastryDht: unknown node id");
  return it->second;
}

const PastryDht::Node& PastryDht::nodeById(u64 id) const {
  auto it = nodes_.find(id);
  common::checkInvariant(it != nodes_.end(), "PastryDht: unknown node id");
  return it->second;
}

u64 PastryDht::ownerOfId(u64 keyId) const {
  // The numerically closest node is one of the two ring-adjacent nodes.
  auto succ = nodes_.lower_bound(keyId);
  if (succ == nodes_.end()) succ = nodes_.begin();
  auto pred = succ == nodes_.begin() ? std::prev(nodes_.end()) : std::prev(succ);
  return closerTo(keyId, pred->first, succ->first) ? pred->first : succ->first;
}

void PastryDht::rebuildTables() {
  // Sorted ids for leaf-set construction.
  std::vector<u64> ids = nodeIdsUnlocked();
  const size_t n = ids.size();
  const size_t half = std::min(opts_.leafSetHalf, n - 1);

  for (size_t i = 0; i < n; ++i) {
    Node& node = nodeById(ids[i]);
    node.leafSet.clear();
    for (size_t k = 1; k <= half; ++k) {
      node.leafSet.push_back(ids[(i + k) % n]);
      node.leafSet.push_back(ids[(i + n - k) % n]);
    }

    // Routing table: entry (l, d) = smallest node id extending this node's
    // l-digit prefix with digit d (0 = empty slot; id 0 never exists).
    for (u32 l = 0; l < 16; ++l) {
      const u64 prefixMask = l == 0 ? 0 : (~0ull << (64 - 4 * l));
      const u64 base = node.id & prefixMask;
      for (u32 d = 0; d < 16; ++d) {
        if (d == hexDigit(node.id, l)) {
          node.routing[l][d] = 0;  // own branch: handled by deeper rows
          continue;
        }
        const u64 lo = base | (static_cast<u64>(d) << (60 - 4 * l));
        auto it = nodes_.lower_bound(lo);
        if (it != nodes_.end() && sharedDigits(it->first, lo) >= l + 1) {
          node.routing[l][d] = it->first;
        } else {
          node.routing[l][d] = 0;
        }
      }
    }
  }
}

void PastryDht::rehomeAllKeys() {
  std::vector<std::pair<Key, Value>> moving;
  for (auto& [id, node] : nodes_) {
    std::vector<Key> out;
    node.store.forEach([&, nodeId = id](const Key& k, const Value&) {
      if (ownerOfId(common::hash::xxhash64(k, 0)) != nodeId) out.push_back(k);
    });
    for (const auto& k : out) {
      moving.emplace_back(k, std::move(*node.store.take(k)));
    }
  }
  for (auto& [k, v] : moving) {
    nodeById(ownerOfId(common::hash::xxhash64(k, 0))).store.put(k, std::move(v));
  }
}

u64 PastryDht::route(u64 keyId, u64 requestBytes) {
  common::checkInvariant(!nodes_.empty(), "PastryDht: no peers");
  stats_.lookups += 1;
  auto it = nodes_.begin();
  if (opts_.randomEntry && nodes_.size() > 1) {
    u32 skip;
    {
      std::lock_guard rngLock(rngMutex_);
      skip = rng_.below(static_cast<u32>(nodes_.size()));
    }
    std::advance(it, skip);
  }
  u64 cur = it->first;
  stats_.hops += 1;  // client -> entry peer

  for (;;) {
    const Node& node = nodeById(cur);
    if (node.leafSet.empty()) return cur;  // single node

    // Leaf-set phase: the span [furthest predecessor, furthest successor]
    // contains every node between its bounds, so if the key falls inside,
    // the numerically closest of leafSet ∪ {cur} is the global owner.
    u64 spanLo = cur, spanHi = cur;
    u64 bestLoDist = 0, bestHiDist = 0;
    for (u64 m : node.leafSet) {
      const u64 dPred = cwDist(m, cur);  // m -> cur clockwise: m precedes cur
      const u64 dSucc = cwDist(cur, m);
      if (dPred < dSucc) {
        if (dPred > bestLoDist) {
          bestLoDist = dPred;
          spanLo = m;
        }
      } else if (dSucc > bestHiDist) {
        bestHiDist = dSucc;
        spanHi = m;
      }
    }
    if (cwDist(spanLo, keyId) <= cwDist(spanLo, spanHi)) {
      u64 next = cur;
      for (u64 m : node.leafSet) {
        if (closerTo(keyId, m, next)) next = m;
      }
      if (next == cur) return cur;  // cur is the owner
      net_.send(node.peer, nodeById(next).peer, requestBytes);
      stats_.hops += 1;
      cur = next;
      continue;
    }

    // Prefix phase: extend the shared prefix by one digit.
    const u32 l = sharedDigits(cur, keyId);
    common::checkInvariant(l < 16, "PastryDht::route: key equals node id");
    const u64 next = node.routing[l][hexDigit(keyId, l)];
    if (next != 0) {
      net_.send(node.peer, nodeById(next).peer, requestBytes);
      stats_.hops += 1;
      cur = next;
      continue;
    }

    // Rare case (the digit's subtree is empty): Pastry scans all known
    // nodes for one numerically closer; the simulator stands in with a
    // single hop to the true owner.
    const u64 owner = ownerOfId(keyId);
    if (owner != cur) {
      net_.send(node.peer, nodeById(owner).peer, requestBytes);
      stats_.hops += 1;
    }
    return owner;
  }
}

void PastryDht::put(const Key& key, Value value) {
  RoutedOpScope scope(*this, "dht.put", key);
  stats_.puts += 1;
  std::shared_lock topo(topoMutex_);
  u64 owner = route(common::hash::xxhash64(key, 0), key.size() + value.size());
  stats_.valueBytesMoved += value.size();
  common::StripedMutex::MultiGuard guard(storeLocks_, writeSetOf(owner));
  Node& node = nodeById(owner);
  pushReplicas(node, key, value);
  node.store.put(key, std::move(value));
}

std::optional<Value> PastryDht::get(const Key& key) {
  RoutedOpScope scope(*this, "dht.get", key);
  stats_.gets += 1;
  std::shared_lock topo(topoMutex_);
  u64 owner = route(common::hash::xxhash64(key, 0), key.size());
  auto lock = storeLocks_.guard(owner);
  const Node& node = nodeById(owner);
  const Value* v = node.store.find(key);
  if (v == nullptr) return std::nullopt;
  stats_.valueBytesMoved += v->size();
  return *v;
}

bool PastryDht::remove(const Key& key) {
  RoutedOpScope scope(*this, "dht.remove", key);
  stats_.removes += 1;
  std::shared_lock topo(topoMutex_);
  u64 owner = route(common::hash::xxhash64(key, 0), key.size());
  common::StripedMutex::MultiGuard guard(storeLocks_, writeSetOf(owner));
  const bool existed = nodeById(owner).store.erase(key);
  if (existed) dropReplicas(owner, key);
  return existed;
}

bool PastryDht::apply(const Key& key, const Mutator& fn) {
  RoutedOpScope scope(*this, "dht.apply", key);
  stats_.applies += 1;
  std::shared_lock topo(topoMutex_);
  u64 owner = route(common::hash::xxhash64(key, 0), key.size());
  // Mutator runs under the owner's stripe: atomic per key.
  common::StripedMutex::MultiGuard guard(storeLocks_, writeSetOf(owner));
  Node& node = nodeById(owner);
  std::optional<Value> v = node.store.take(key);
  const bool existed = v.has_value();
  fn(v);
  if (v.has_value()) {
    stats_.valueBytesMoved += v->size();
    pushReplicas(node, key, *v);
    node.store.put(key, std::move(*v));
  } else if (existed) {
    dropReplicas(owner, key);
  }
  return existed;
}

void PastryDht::storeDirect(const Key& key, Value value) {
  std::shared_lock topo(topoMutex_);
  const u64 owner = ownerOfId(common::hash::xxhash64(key, 0));
  common::StripedMutex::MultiGuard guard(storeLocks_, writeSetOf(owner));
  Node& node = nodeById(owner);
  pushReplicas(node, key, value);
  node.store.put(key, std::move(value));
}

size_t PastryDht::size() const {
  std::shared_lock topo(topoMutex_);
  common::StripedMutex::AllGuard guard(storeLocks_);
  size_t n = 0;
  for (const auto& [id, node] : nodes_) n += node.store.size();
  return n;
}

bool PastryDht::checkTables() const {
  std::shared_lock topo(topoMutex_);
  common::StripedMutex::AllGuard guard(storeLocks_);
  for (const auto& [id, node] : nodes_) {
    bool placed = true;
    node.store.forEach([&, nodeId = id](const Key& k, const Value&) {
      if (ownerOfId(common::hash::xxhash64(k, 0)) != nodeId) placed = false;
    });
    if (!placed) return false;
    for (u64 m : node.leafSet) {
      if (nodes_.count(m) == 0 || m == id) return false;
    }
    for (u32 l = 0; l < 16; ++l) {
      for (u32 d = 0; d < 16; ++d) {
        const u64 e = node.routing[l][d];
        if (e == 0) continue;
        if (nodes_.count(e) == 0) return false;
        if (sharedDigits(e, id) < l) return false;
        if (hexDigit(e, l) != d) return false;
      }
    }
  }
  return true;
}

std::vector<GetOutcome> PastryDht::multiGet(const std::vector<Key>& keys) {
  if (keys.empty()) return {};
  stats_.batchRounds += 1;
  return detail::roundMultiGet(*this, net_, keys);
}

std::vector<ApplyOutcome> PastryDht::multiApply(
    const std::vector<ApplyRequest>& reqs) {
  if (reqs.empty()) return {};
  stats_.batchRounds += 1;
  return detail::roundMultiApply(*this, net_, reqs);
}

}  // namespace lht::dht
