// Shared batch-round plumbing for the routed substrates.
//
// A multiGet/multiApply round issues independent requests, so a substrate
// dispatches them concurrently: each entry still routes hop by hop (full
// bandwidth accounting), but simulated time advances by the longest
// entry's hop chain only — the critical-path RTT of the round. The
// SimNetwork::ParallelRound scope implements the deferral; these helpers
// run the per-entry loop with the same DhtError-to-outcome translation as
// the base Dht implementation.
#pragma once

#include <vector>

#include "dht/dht.h"
#include "net/sim_network.h"
#include "obs/obs.h"

namespace lht::dht::detail {

template <typename Substrate>
std::vector<GetOutcome> roundMultiGet(Substrate& substrate,
                                      net::SimNetwork& net,
                                      const std::vector<Key>& keys) {
  std::vector<GetOutcome> out;
  out.reserve(keys.size());
  obs::SpanScope span("dht.multiGet", "dht");
  span.arg("entries", static_cast<u64>(keys.size()));
  obs::count("dht.round.count");
  obs::count("dht.round.entries", keys.size());
  net::SimNetwork::ParallelRound round(net);
  for (const Key& key : keys) {
    round.nextEntry();
    obs::SpanScope entry("dht.round.entry", "dht");
    obs::flow(span.id(), entry.id());
    GetOutcome o;
    try {
      o.value = substrate.get(key);
      o.ok = true;
    } catch (const DhtError& e) {
      o.error = e.what();
    }
    out.push_back(std::move(o));
  }
  return out;
}

template <typename Substrate>
std::vector<ApplyOutcome> roundMultiApply(Substrate& substrate,
                                          net::SimNetwork& net,
                                          const std::vector<ApplyRequest>& reqs) {
  std::vector<ApplyOutcome> out;
  out.reserve(reqs.size());
  obs::SpanScope span("dht.multiApply", "dht");
  span.arg("entries", static_cast<u64>(reqs.size()));
  obs::count("dht.round.count");
  obs::count("dht.round.entries", reqs.size());
  net::SimNetwork::ParallelRound round(net);
  for (const ApplyRequest& req : reqs) {
    round.nextEntry();
    obs::SpanScope entry("dht.round.entry", "dht");
    obs::flow(span.id(), entry.id());
    ApplyOutcome o;
    try {
      o.existed = substrate.apply(req.key, req.fn);
      o.ok = true;
    } catch (const DhtError& e) {
      o.error = e.what();
    }
    out.push_back(std::move(o));
  }
  return out;
}

}  // namespace lht::dht::detail
