// CAN — Content-Addressable Network substrate (Ratnasamy et al. [17]).
//
// Fourth substrate, completing the paper's list of DHT families (ring,
// XOR, prefix, coordinate space). Keys hash to points in a 2-d unit torus;
// each peer owns a rectangular zone of a binary space partition. Routing
// is greedy geographic forwarding through zone neighbors (O(sqrt N) hops
// for 2 dimensions — CAN's signature trade-off, visibly costlier than the
// logarithmic substrates in examples/substrate_comparison).
//
// Zones are managed with CAN's real protocol shapes: a join splits the
// zone containing the joiner's point along its longer side; a leave uses
// CAN's takeover rule — merge with the sibling zone if it is undivided,
// otherwise the deepest sibling *pair* donates one peer to adopt the
// vacated zone, so zones always remain rectangles of the partition tree.
// Thread safety (DESIGN.md §10): shared mutex on the zone tree + peer map
// (routed ops shared, join/leave exclusive), striped store locks keyed by
// peer id, a small mutex around the entry-point rng.
#pragma once

#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/striped_mutex.h"
#include "dht/dht.h"
#include "net/sim_network.h"
#include "store/mem_table.h"

namespace lht::dht {

class CanDht final : public Dht {
 public:
  struct Options {
    size_t initialPeers = 32;
    common::u64 seed = 1;
    bool randomEntry = true;
    /// Copies of every key (1 = none). With r >= 2 each key is also held
    /// by r-1 of its owner's zone neighbors (lowest peer ids, padded from
    /// the global peer list when the zone has too few neighbors), so data
    /// survives an ungraceful failure (see fail()).
    size_t replication = 1;
  };

  CanDht(net::SimNetwork& network, Options options);

  void put(const Key& key, Value value) override;
  std::optional<Value> get(const Key& key) override;
  bool remove(const Key& key) override;
  bool apply(const Key& key, const Mutator& fn) override;
  void storeDirect(const Key& key, Value value) override;
  [[nodiscard]] size_t size() const override;

  /// One batch = one parallel round on the simulated network: per-entry
  /// routing hops and bytes are accounted normally; simulated time
  /// advances by the longest entry only (critical-path RTT).
  std::vector<GetOutcome> multiGet(const std::vector<Key>& keys) override;
  std::vector<ApplyOutcome> multiApply(
      const std::vector<ApplyRequest>& reqs) override;

  /// Adds a peer: splits the zone containing its random point.
  common::u64 join(const std::string& name);
  /// Removes a peer via CAN's takeover rule. Requires >= 2 peers.
  void leave(common::u64 peerId);
  /// Ungraceful failure: the zone is taken over but the peer's data is
  /// gone. Surviving replicas (Options::replication >= 2) are promoted on
  /// the new owners; without replication its keys are lost.
  void fail(common::u64 peerId);

  [[nodiscard]] size_t peerCount() const;
  [[nodiscard]] std::vector<common::u64> peerIds() const;
  [[nodiscard]] common::u64 ownerOf(const Key& key) const;

  /// Validates the partition (zones tile the torus exactly, one zone per
  /// peer, every key in the right zone, neighbor lists symmetric).
  [[nodiscard]] bool checkZones() const;

 private:
  /// Axis-aligned zone rectangle, half-open.
  struct ZRect {
    double xlo = 0, xhi = 1, ylo = 0, yhi = 1;
    [[nodiscard]] bool contains(double x, double y) const {
      return x >= xlo && x < xhi && y >= ylo && y < yhi;
    }
  };

  /// Node of the zone partition tree; leaves are live zones.
  struct ZNode {
    ZRect rect;
    int splitDim = -1;  // -1: leaf
    std::unique_ptr<ZNode> left, right;
    ZNode* parent = nullptr;
    common::u64 owner = 0;  // leaves only
  };

  struct PeerState {
    net::PeerId netId = net::kInvalidPeer;
    ZNode* zone = nullptr;
    store::MemTable store;
    store::MemTable replicas;  ///< copies held for other owners
    std::vector<common::u64> neighbors;  // owners of edge-adjacent zones
  };

  // Private helpers assume topoMutex_ held; store accesses additionally
  // need the owner's stripe (or the exclusive topology lock).
  static void keyPoint(const Key& key, double& x, double& y);
  [[nodiscard]] common::u64 ownerOfUnlocked(const Key& key) const;
  [[nodiscard]] ZNode* zoneAt(double x, double y) const;
  [[nodiscard]] common::u64 ownerAt(double x, double y) const;
  void splitZone(ZNode* leaf, common::u64 newOwner, double px, double py);
  [[nodiscard]] ZNode* deepestLeafPair() const;
  void collectLeaves(ZNode* node, std::vector<ZNode*>& out) const;
  void rebuildNeighbors();
  void rehomeAllKeys();
  /// Zone takeover shared by leave (graceful) and fail: re-homes the
  /// departing peer's primaries when graceful, otherwise drops them and
  /// promotes surviving replicas. Requires the exclusive topology lock.
  void removePeerLocked(common::u64 peerId, bool graceful);
  /// The replication-1 peers holding copies of `ownerId`'s keys: its
  /// lowest-id zone neighbors, padded from the sorted peer list.
  [[nodiscard]] std::vector<common::u64> replicaHoldersOf(
      common::u64 ownerId) const;
  /// The stripe set a write to `ownerId` must hold: owner plus holders.
  [[nodiscard]] std::vector<common::u64> writeSetOf(common::u64 ownerId) const;
  void pushReplicas(const PeerState& owner, common::u64 ownerId,
                    const Key& key, const Value& value);
  void dropReplicas(common::u64 ownerId, const Key& key);
  /// Recomputes every replica placement from the primaries (after churn).
  /// Requires the exclusive topology lock.
  void rebuildReplicas();
  /// Torus distance from point to rectangle (0 when inside).
  [[nodiscard]] static double torusDistToRect(double x, double y, const ZRect& r);
  common::u64 route(double x, double y, u64 requestBytes);
  PeerState& peer(common::u64 id);
  const PeerState& peer(common::u64 id) const;

  net::SimNetwork& net_;
  Options opts_;
  common::Pcg32 rng_;
  std::unique_ptr<ZNode> root_;
  std::unordered_map<common::u64, PeerState> owners_;
  common::u64 nextPeerId_ = 1;

  mutable std::shared_mutex topoMutex_;
  mutable common::StripedMutex storeLocks_{64};
  mutable std::mutex rngMutex_;
};

}  // namespace lht::dht
