#include "db/table.h"

#include <algorithm>

#include "common/codec.h"
#include "common/types.h"

namespace lht::db {

using common::checkInvariant;

Normalizer::Normalizer(double lo, double hi) : lo_(lo), hi_(hi) {
  checkInvariant(hi > lo, "Normalizer: empty domain");
}

double Normalizer::toKey(double raw) const {
  checkInvariant(raw >= lo_ && raw <= hi_, "Normalizer: value outside domain");
  return (raw - lo_) / (hi_ - lo_);
}

double Normalizer::fromKey(double key) const { return lo_ + key * (hi_ - lo_); }

// --- namespaced DHT adapter -------------------------------------------------

namespace {

/// Prefixes every key with "<column>/" so multiple indexes share one DHT.
class NamespacedDht final : public dht::Dht {
 public:
  NamespacedDht(dht::Dht& inner, std::string prefix)
      : inner_(inner), prefix_(std::move(prefix)) {}

  void put(const dht::Key& key, dht::Value value) override {
    inner_.put(prefix_ + key, std::move(value));
  }
  std::optional<dht::Value> get(const dht::Key& key) override {
    return inner_.get(prefix_ + key);
  }
  bool remove(const dht::Key& key) override { return inner_.remove(prefix_ + key); }
  bool apply(const dht::Key& key, const dht::Mutator& fn) override {
    return inner_.apply(prefix_ + key, fn);
  }
  void storeDirect(const dht::Key& key, dht::Value value) override {
    inner_.storeDirect(prefix_ + key, std::move(value));
  }
  [[nodiscard]] size_t size() const override { return inner_.size(); }

 private:
  dht::Dht& inner_;
  std::string prefix_;
};

}  // namespace

Table::Table(dht::Dht& dht, Options options)
    : columns_(std::move(options.indexedColumns)) {
  checkInvariant(!columns_.empty(), "Table: need at least one indexed column");
  adapters_.reserve(columns_.size());
  for (const auto& col : columns_) {
    checkInvariant(indexes_.count(col) == 0, "Table: duplicate column");
    // Per-column key namespace: every index's bucket keys would otherwise
    // collide in the shared DHT ("#..." for each column), so each index
    // sees the DHT through a column-prefixed key space.
    adapters_.push_back(std::make_unique<NamespacedDht>(dht, col + "/"));
    indexes_.emplace(col, std::make_unique<core::LhtIndex>(*adapters_.back(),
                                                           options.index));
  }
}

// --- row codec ---------------------------------------------------------------

std::string Table::encodeRow(const Row& row) {
  common::Encoder enc;
  enc.putU32(static_cast<common::u32>(row.values.size()));
  for (const auto& [col, v] : row.values) {
    enc.putString(col);
    enc.putDouble(v);
  }
  enc.putString(row.payload);
  return std::move(enc).take();
}

Row Table::decodeRow(std::string_view bytes) {
  common::Decoder dec(bytes);
  auto n = dec.getU32();
  checkInvariant(n.has_value(), "Table: corrupt row");
  Row row;
  for (common::u32 i = 0; i < *n; ++i) {
    auto col = dec.getString();
    auto v = dec.getDouble();
    checkInvariant(col && v, "Table: corrupt row value");
    row.values.emplace(std::move(*col), *v);
  }
  auto payload = dec.getString();
  checkInvariant(payload.has_value(), "Table: corrupt row payload");
  row.payload = std::move(*payload);
  return row;
}

// --- operations ----------------------------------------------------------

core::LhtIndex& Table::mutableIndexOf(const std::string& column) {
  auto it = indexes_.find(column);
  checkInvariant(it != indexes_.end(), "Table: unknown column");
  return *it->second;
}

const core::LhtIndex& Table::indexOf(const std::string& column) const {
  auto it = indexes_.find(column);
  checkInvariant(it != indexes_.end(), "Table: unknown column");
  return *it->second;
}

void Table::insert(const Row& row) {
  const std::string bytes = encodeRow(row);
  for (const auto& col : columns_) {
    auto it = row.values.find(col);
    checkInvariant(it != row.values.end(), "Table::insert: missing column value");
    mutableIndexOf(col).insert({it->second, bytes});
  }
  rowCount_ += 1;
}

size_t Table::eraseWhere(const std::string& column, double value) {
  // Fetch the victims first so the other indexes can be cleaned too.
  auto victims = selectEquals(column, value);
  for (const auto& row : victims) {
    for (const auto& col : columns_) {
      mutableIndexOf(col).erase(row.values.at(col));
    }
  }
  rowCount_ -= victims.size();
  return victims.size();
}

std::vector<Row> Table::selectEquals(const std::string& column, double value) {
  std::vector<Row> out;
  auto lk = mutableIndexOf(column).lookup(value);
  if (!lk.bucket) return out;
  for (const auto& r : lk.bucket->records) {
    if (r.key == value) out.push_back(decodeRow(r.payload));
  }
  return out;
}

Table::SelectResult Table::selectRange(const std::string& column, double lo,
                                       double hi) {
  SelectResult out;
  auto rr = mutableIndexOf(column).rangeQuery(lo, hi);
  out.stats = rr.stats;
  out.rows.reserve(rr.records.size());
  for (const auto& r : rr.records) out.rows.push_back(decodeRow(r.payload));
  return out;
}

std::optional<Row> Table::selectMin(const std::string& column) {
  auto res = mutableIndexOf(column).minRecord();
  if (!res.record) return std::nullopt;
  return decodeRow(res.record->payload);
}

std::optional<Row> Table::selectMax(const std::string& column) {
  auto res = mutableIndexOf(column).maxRecord();
  if (!res.record) return std::nullopt;
  return decodeRow(res.record->payload);
}

size_t Table::countRange(const std::string& column, double lo, double hi) {
  return mutableIndexOf(column).rangeQuery(lo, hi).records.size();
}

}  // namespace lht::db
