// A minimal P2P table layer over LHT (paper Sec. 3.1: "in a P2P database,
// a tuple can be seen as a record, and any candidate key could be its data
// key"). A Table owns one LHT secondary index per indexed numeric column;
// rows are serialized tuples stored as index payloads, so every indexed
// column supports point, range, min/max and top-k selections directly, and
// the maintenance economics of the paper apply per index.
//
// All column values must be normalized into [0, 1] by the caller (the
// paper's key-space assumption); Table::normalizer helps with that.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dht/dht.h"
#include "index/ordered_index.h"
#include "lht/lht_index.h"

namespace lht::db {

/// One tuple: named numeric attributes plus an opaque payload.
struct Row {
  std::map<std::string, double> values;
  std::string payload;

  friend bool operator==(const Row&, const Row&) = default;
};

/// Maps a raw attribute domain [lo, hi] linearly onto [0, 1].
class Normalizer {
 public:
  Normalizer(double lo, double hi);
  [[nodiscard]] double toKey(double raw) const;
  [[nodiscard]] double fromKey(double key) const;

 private:
  double lo_, hi_;
};

class Table {
 public:
  struct Options {
    std::vector<std::string> indexedColumns;  ///< one LHT per entry
    core::LhtIndex::Options index;            ///< shared index tuning
  };

  /// All secondary indexes live in the caller's DHT.
  Table(dht::Dht& dht, Options options);

  /// Inserts a row; it must provide a value for every indexed column.
  /// Cost: one LHT insert per indexed column.
  void insert(const Row& row);

  /// Deletes all rows whose `column` equals `value` exactly (removes them
  /// from every index). Returns how many rows were deleted.
  size_t eraseWhere(const std::string& column, double value);

  /// SELECT * WHERE column == value.
  std::vector<Row> selectEquals(const std::string& column, double value);

  /// SELECT * WHERE lo <= column < hi, plus the query's cost.
  struct SelectResult {
    std::vector<Row> rows;
    cost::OpStats stats;
  };
  SelectResult selectRange(const std::string& column, double lo, double hi);

  /// SELECT MIN(column) / MAX(column): one DHT-lookup (Theorem 3).
  std::optional<Row> selectMin(const std::string& column);
  std::optional<Row> selectMax(const std::string& column);

  /// SELECT COUNT(*) WHERE lo <= column < hi.
  size_t countRange(const std::string& column, double lo, double hi);

  [[nodiscard]] size_t rowCount() const { return rowCount_; }
  [[nodiscard]] const std::vector<std::string>& indexedColumns() const {
    return columns_;
  }
  /// The underlying index of a column (for meters / diagnostics).
  [[nodiscard]] const core::LhtIndex& indexOf(const std::string& column) const;

 private:
  core::LhtIndex& mutableIndexOf(const std::string& column);
  static std::string encodeRow(const Row& row);
  static Row decodeRow(std::string_view bytes);

  std::vector<std::string> columns_;
  // One key-namespacing DHT adapter per column (indexes share the caller's
  // DHT without key collisions); adapters must outlive their indexes.
  std::vector<std::unique_ptr<dht::Dht>> adapters_;
  std::map<std::string, std::unique_ptr<core::LhtIndex>> indexes_;
  size_t rowCount_ = 0;
};

}  // namespace lht::db
