// Striped (per-shard) mutual exclusion for key-partitioned state.
//
// A StripedMutex owns a fixed array of mutexes; a key hash selects one
// stripe, so operations on different shards proceed in parallel while
// operations on the same shard serialize. This is the locking substrate
// behind the shard-locked DHT backends (src/exec engine, DESIGN.md §10):
// a routed op locks the stripe of its storing peer (or key shard), and
// multi-shard protocols (replica pushes, snapshots) lock their stripe set
// in ascending index order so lock acquisition is deadlock-free by
// construction.
#pragma once

#include <algorithm>
#include <memory>
#include <mutex>
#include <vector>

#include "common/types.h"

namespace lht::common {

class StripedMutex {
 public:
  /// `stripes` is rounded up to a power of two (mask selection).
  explicit StripedMutex(size_t stripes = 64) {
    size_t n = 1;
    while (n < stripes) n <<= 1;
    count_ = n;
    mutexes_ = std::make_unique<std::mutex[]>(n);
  }

  StripedMutex(const StripedMutex&) = delete;
  StripedMutex& operator=(const StripedMutex&) = delete;

  [[nodiscard]] size_t stripeCount() const { return count_; }
  [[nodiscard]] size_t stripeOf(u64 hash) const { return hash & (count_ - 1); }

  /// Locks the stripe owning `hash` for the guard's lifetime.
  [[nodiscard]] std::unique_lock<std::mutex> guard(u64 hash) const {
    return std::unique_lock<std::mutex>(mutexes_[stripeOf(hash)]);
  }

  /// Locks the stripes of every hash in `hashes`, deduplicated and in
  /// ascending stripe order (the global order that makes every MultiGuard
  /// acquisition deadlock-free against every other).
  class MultiGuard {
   public:
    MultiGuard(const StripedMutex& sm, const std::vector<u64>& hashes)
        : sm_(sm) {
      stripes_.reserve(hashes.size());
      for (u64 h : hashes) stripes_.push_back(sm.stripeOf(h));
      std::sort(stripes_.begin(), stripes_.end());
      stripes_.erase(std::unique(stripes_.begin(), stripes_.end()),
                     stripes_.end());
      for (size_t s : stripes_) sm_.mutexes_[s].lock();
    }
    ~MultiGuard() {
      for (auto it = stripes_.rbegin(); it != stripes_.rend(); ++it) {
        sm_.mutexes_[*it].unlock();
      }
    }
    MultiGuard(const MultiGuard&) = delete;
    MultiGuard& operator=(const MultiGuard&) = delete;

   private:
    const StripedMutex& sm_;
    std::vector<size_t> stripes_;
  };

  /// Locks every stripe (ascending order): whole-structure operations
  /// (snapshots, invariant checks, replica rebuilds).
  class AllGuard {
   public:
    explicit AllGuard(const StripedMutex& sm) : sm_(sm) {
      for (size_t s = 0; s < sm_.count_; ++s) sm_.mutexes_[s].lock();
    }
    ~AllGuard() {
      for (size_t s = sm_.count_; s-- > 0;) sm_.mutexes_[s].unlock();
    }
    AllGuard(const AllGuard&) = delete;
    AllGuard& operator=(const AllGuard&) = delete;

   private:
    const StripedMutex& sm_;
  };

 private:
  size_t count_ = 0;
  mutable std::unique_ptr<std::mutex[]> mutexes_;
};

}  // namespace lht::common
