// Tree-node labels for binary space-partition tries (paper Sec. 3.2).
//
// Every node in the space partition tree carries a label: the virtual root
// is "#", and each further character is the bit of the edge taken from the
// parent (0 = left, 1 = right). The edge between the virtual root and the
// regular root is labelled 0, so the regular root is "#0" and every real
// tree node's label starts with "#0".
//
// A Label stores only the bit string after '#', packed into a u64
// (most-significant stored bit = the bit right after '#'). The virtual root
// is the empty label. The paper's "label length" counts the '#' character;
// Label::length() counts bits only, i.e. paperLength = length() + 1.
#pragma once

#include <compare>
#include <optional>
#include <string>
#include <string_view>

#include "common/interval.h"
#include "common/types.h"

namespace lht::common {

class Label {
 public:
  /// Maximum number of bits a label may hold. Kept below the double mantissa
  /// width so dyadic interval bounds stay exact.
  static constexpr u32 kMaxBits = 52;

  /// Constructs the virtual root "#" (empty bit string).
  constexpr Label() = default;

  /// Constructs from `len` bits packed in the low bits of `bits`
  /// (most-significant of those = first edge below '#').
  static Label fromBits(u64 bits, u32 len);

  /// The regular root "#0".
  static Label root() { return fromBits(0, 1); }

  /// The binary string mu(key, depth) of paper Sec. 5: a `depth`-bit label
  /// whose first bit is 0 (root edge) followed by the first depth-1 bits of
  /// key's binary fraction. Every possible leaf covering `key` (up to tree
  /// depth `depth`) is a prefix of the result. Requires key in [0, 1].
  static Label fromKey(double key, u32 depth);

  /// Parses "#0110"-style strings; rejects malformed input.
  static std::optional<Label> parse(std::string_view text);

  /// Number of bits after '#'. 0 means the virtual root.
  [[nodiscard]] u32 length() const { return len_; }

  /// True for the virtual root "#".
  [[nodiscard]] bool isVirtualRoot() const { return len_ == 0; }

  /// The packed bit value (low `length()` bits).
  [[nodiscard]] u64 bits() const { return bits_; }

  /// Bit at position `i` (0 = first edge below '#'). Requires i < length().
  [[nodiscard]] int bit(u32 i) const;

  /// The final bit. Requires a non-empty label.
  [[nodiscard]] int lastBit() const;

  /// Child label with edge bit `b` (0 or 1).
  [[nodiscard]] Label child(int b) const;

  /// Parent label. Requires a non-empty label.
  [[nodiscard]] Label parent() const;

  /// The sibling (same parent, last bit flipped). Requires length() >= 2:
  /// the regular root "#0" has no sibling.
  [[nodiscard]] Label sibling() const;

  /// The first `n` bits. Requires n <= length().
  [[nodiscard]] Label prefix(u32 n) const;

  /// Whether this label is a (non-strict) prefix of `other`.
  [[nodiscard]] bool isPrefixOf(const Label& other) const;

  /// Number of trailing bits equal to lastBit() (0 for the virtual root).
  [[nodiscard]] u32 trailingRunLength() const;

  /// Whether the label matches #00* — i.e. it lies on the leftmost path of
  /// the tree (includes "#0" and "#").
  [[nodiscard]] bool isLeftmostPath() const { return bits_ == 0; }

  /// Whether the label matches #01* — the rightmost path: root edge 0 then
  /// only 1-edges (includes "#0").
  [[nodiscard]] bool isRightmostPath() const;

  /// The dyadic key interval this tree node covers. "#" and "#0" both cover
  /// [0, 1). Requires the first bit (if any) to be 0, as for all real nodes.
  [[nodiscard]] Interval interval() const;

  /// Whether `key` falls in interval().
  [[nodiscard]] bool covers(double key) const { return interval().contains(key); }

  /// Renders as '#' followed by the bits, e.g. "#0110".
  [[nodiscard]] std::string str() const;

  friend bool operator==(const Label&, const Label&) = default;

  /// Orders by (depth-first) position: prefix-free labels compare by their
  /// leftmost differing bit; a prefix sorts before its extensions.
  friend std::strong_ordering operator<=>(const Label& a, const Label& b);

  /// Stable 64-bit hash of the label (for DHT keys and hash maps).
  [[nodiscard]] u64 hashValue() const;

 private:
  u64 bits_ = 0;
  u32 len_ = 0;
};

}  // namespace lht::common

template <>
struct std::hash<lht::common::Label> {
  size_t operator()(const lht::common::Label& l) const noexcept {
    return static_cast<size_t>(l.hashValue());
  }
};
