#include "common/flags.h"

#include <cstdlib>
#include <iostream>

namespace lht::common {

Flags::Flags(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void Flags::define(const std::string& name, const std::string& defaultValue,
                   const std::string& help) {
  entries_[name] = Entry{defaultValue, defaultValue, help};
}

bool Flags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      printHelp();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool haveValue = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      haveValue = true;
    }
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      std::cerr << program_ << ": unknown flag --" << name << "\n";
      return false;
    }
    if (!haveValue) {
      // Flags declared with a true/false default are boolean: a bare
      // "--flag" sets them without consuming the next token. Other flags
      // take the next token as their value ("--name value").
      const std::string& def = it->second.defaultValue;
      const bool isBoolean = def == "true" || def == "false";
      if (!isBoolean && i + 1 < argc &&
          std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    it->second.value = value;
  }
  return true;
}

std::string Flags::getString(const std::string& name) const {
  auto it = entries_.find(name);
  checkInvariant(it != entries_.end(), "Flags: undeclared flag queried");
  return it->second.value;
}

i64 Flags::getInt(const std::string& name) const {
  return std::strtoll(getString(name).c_str(), nullptr, 10);
}

double Flags::getDouble(const std::string& name) const {
  return std::strtod(getString(name).c_str(), nullptr);
}

bool Flags::getBool(const std::string& name) const {
  const std::string v = getString(name);
  return v == "true" || v == "1" || v == "yes";
}

void Flags::printHelp() const {
  std::cout << program_ << " — " << description_ << "\n\nFlags:\n";
  for (const auto& [name, e] : entries_) {
    std::cout << "  --" << name << " (default: " << e.defaultValue << ")\n"
              << "      " << e.help << "\n";
  }
}

}  // namespace lht::common
