#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"

namespace lht::common {

Pcg32::Pcg32(u64 seed, u64 stream) {
  inc_ = (stream << 1) | 1;
  state_ = 0;
  next();
  state_ += hash::splitmix64(seed);
  next();
}

u32 Pcg32::next() {
  u64 old = state_;
  state_ = old * 6364136223846793005ull + inc_;
  u32 xorshifted = static_cast<u32>(((old >> 18) ^ old) >> 27);
  u32 rot = static_cast<u32>(old >> 59);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

u64 Pcg32::next64() { return (static_cast<u64>(next()) << 32) | next(); }

u32 Pcg32::below(u32 bound) {
  // Lemire-style rejection to stay unbiased.
  u32 threshold = (-bound) % bound;
  for (;;) {
    u32 r = next();
    if (r >= threshold) return r % bound;
  }
}

double Pcg32::nextDouble() {
  return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

double Gaussian::sample(Pcg32& rng) {
  if (hasSpare_) {
    hasSpare_ = false;
    return mean_ + stddev_ * spare_;
  }
  double u1, u2;
  do {
    u1 = rng.nextDouble();
  } while (u1 <= 1e-300);
  u2 = rng.nextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double twoPi = 6.283185307179586;
  spare_ = mag * std::sin(twoPi * u2);
  hasSpare_ = true;
  return mean_ + stddev_ * mag * std::cos(twoPi * u2);
}

Zipf::Zipf(u32 n, double s) {
  checkInvariant(n > 0, "Zipf: n must be positive");
  cdf_.resize(n);
  double sum = 0.0;
  for (u32 k = 1; k <= n; ++k) sum += 1.0 / std::pow(static_cast<double>(k), s);
  double acc = 0.0;
  for (u32 k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), s) / sum;
    cdf_[k - 1] = acc;
  }
  cdf_.back() = 1.0;
}

u32 Zipf::sample(Pcg32& rng) const {
  double u = rng.nextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<u32>(it - cdf_.begin()) + 1;
}

}  // namespace lht::common
