// Lightweight leveled logging.
//
// The library is silent by default (level = Warn); simulations can raise
// verbosity to trace DHT routing and index forwarding decisions.
//
// Thread safety: each record is formatted into one contiguous buffer on
// the calling thread and handed to the sink as a SINGLE write under a
// process-wide sink mutex, so concurrent writers can never interleave
// partial lines — a record appears in the output atomically or not at all.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace lht::common {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4 };

/// Global minimum level; messages below it are dropped.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Emits one log line (already filtered by level in the macro). The fully
/// formatted record (including the trailing newline) reaches the sink as
/// one write under the sink mutex.
void logMessage(LogLevel level, const std::string& message);

/// Replaces the output sink (default: stderr). The sink receives one
/// complete record per call — "[LEVEL] message\n" — and is always invoked
/// under the sink mutex, so it needs no synchronization of its own.
/// Pass nullptr to restore the stderr default. Intended for tests and for
/// embedding (e.g. routing into a host application's logger).
using LogSink = std::function<void(std::string_view record)>;
void setLogSink(LogSink sink);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { logMessage(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace lht::common

#define LHT_LOG(level)                                       \
  if (static_cast<int>(::lht::common::LogLevel::level) <     \
      static_cast<int>(::lht::common::logLevel())) {         \
  } else                                                     \
    ::lht::common::detail::LogLine(::lht::common::LogLevel::level)
