// Lightweight leveled logging.
//
// The library is silent by default (level = Warn); simulations can raise
// verbosity to trace DHT routing and index forwarding decisions.
#pragma once

#include <sstream>
#include <string>

namespace lht::common {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4 };

/// Global minimum level; messages below it are dropped.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Emits one log line (already filtered by level in the macro).
void logMessage(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { logMessage(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace lht::common

#define LHT_LOG(level)                                       \
  if (static_cast<int>(::lht::common::LogLevel::level) <     \
      static_cast<int>(::lht::common::logLevel())) {         \
  } else                                                     \
    ::lht::common::detail::LogLine(::lht::common::LogLevel::level)
