#include "common/label.h"

#include <bit>
#include <cmath>

#include "common/hash.h"

namespace lht::common {

namespace {
constexpr u64 lowMask(u32 n) { return n >= 64 ? ~0ull : ((1ull << n) - 1); }
}  // namespace

Label Label::fromBits(u64 bits, u32 len) {
  checkInvariant(len <= kMaxBits, "Label::fromBits: length exceeds kMaxBits");
  checkInvariant((bits & ~lowMask(len)) == 0, "Label::fromBits: stray high bits");
  Label l;
  l.bits_ = bits;
  l.len_ = len;
  return l;
}

Label Label::fromKey(double key, u32 depth) {
  checkInvariant(depth >= 1 && depth <= kMaxBits, "Label::fromKey: bad depth");
  checkInvariant(key >= 0.0 && key <= 1.0, "Label::fromKey: key outside [0,1]");
  const u32 fracBits = depth - 1;
  // floor(key * 2^fracBits), clamped so key == 1.0 maps to the last cell.
  double scaled = std::ldexp(key, static_cast<int>(fracBits));
  u64 v = scaled >= std::ldexp(1.0, static_cast<int>(fracBits))
              ? lowMask(fracBits)
              : static_cast<u64>(scaled);
  return fromBits(v, depth);
}

std::optional<Label> Label::parse(std::string_view text) {
  if (text.empty() || text.front() != '#') return std::nullopt;
  text.remove_prefix(1);
  if (text.size() > kMaxBits) return std::nullopt;
  u64 bits = 0;
  for (char c : text) {
    if (c != '0' && c != '1') return std::nullopt;
    bits = (bits << 1) | static_cast<u64>(c - '0');
  }
  return fromBits(bits, static_cast<u32>(text.size()));
}

int Label::bit(u32 i) const {
  checkInvariant(i < len_, "Label::bit: index out of range");
  return static_cast<int>((bits_ >> (len_ - 1 - i)) & 1);
}

int Label::lastBit() const {
  checkInvariant(len_ > 0, "Label::lastBit: virtual root has no bits");
  return static_cast<int>(bits_ & 1);
}

Label Label::child(int b) const {
  checkInvariant(b == 0 || b == 1, "Label::child: bit must be 0 or 1");
  checkInvariant(len_ < kMaxBits, "Label::child: label full");
  return fromBits((bits_ << 1) | static_cast<u64>(b), len_ + 1);
}

Label Label::parent() const {
  checkInvariant(len_ > 0, "Label::parent: virtual root has no parent");
  return fromBits(bits_ >> 1, len_ - 1);
}

Label Label::sibling() const {
  checkInvariant(len_ >= 2, "Label::sibling: root has no sibling");
  return fromBits(bits_ ^ 1, len_);
}

Label Label::prefix(u32 n) const {
  checkInvariant(n <= len_, "Label::prefix: longer than label");
  return fromBits(bits_ >> (len_ - n), n);
}

bool Label::isPrefixOf(const Label& other) const {
  if (len_ > other.len_) return false;
  return (other.bits_ >> (other.len_ - len_)) == bits_;
}

u32 Label::trailingRunLength() const {
  if (len_ == 0) return 0;
  // Count trailing bits equal to the last bit by flipping when it is 1.
  u64 v = (bits_ & 1) ? ~bits_ : bits_;
  v &= lowMask(len_);
  u32 run = (v == 0) ? len_ : static_cast<u32>(std::countr_zero(v));
  return run > len_ ? len_ : run;
}

bool Label::isRightmostPath() const {
  if (len_ == 0) return false;
  if (bit(0) != 0) return false;
  return bits_ == lowMask(len_ - 1);
}

Interval Label::interval() const {
  if (len_ == 0) return unitInterval();
  checkInvariant(bit(0) == 0, "Label::interval: real nodes start with '#0'");
  const u32 fracBits = len_ - 1;
  const double width = std::ldexp(1.0, -static_cast<int>(fracBits));
  const double lo = static_cast<double>(bits_) * width;
  return {lo, lo + width};
}

std::string Label::str() const {
  std::string s = "#";
  s.reserve(len_ + 1);
  for (u32 i = 0; i < len_; ++i) s.push_back(static_cast<char>('0' + bit(i)));
  return s;
}

std::strong_ordering operator<=>(const Label& a, const Label& b) {
  const u32 n = a.len_ < b.len_ ? a.len_ : b.len_;
  const u64 ah = n == 0 ? 0 : (a.bits_ >> (a.len_ - n));
  const u64 bh = n == 0 ? 0 : (b.bits_ >> (b.len_ - n));
  if (ah != bh) return ah <=> bh;
  return a.len_ <=> b.len_;
}

u64 Label::hashValue() const {
  // Mix length in so "#0" and "#00" differ.
  return hash::xxhash64(bits_ * 0x9E3779B97F4A7C15ull + len_, /*seed=*/len_);
}

}  // namespace lht::common
