#include "common/csv.h"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace lht::common {

Table::Table(std::vector<std::string> columns) : cols_(std::move(columns)) {
  checkInvariant(!cols_.empty(), "Table: needs at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(cols_.size());
  return *this;
}

Table& Table::add(Cell c) {
  checkInvariant(!rows_.empty(), "Table::add: call row() first");
  checkInvariant(rows_.back().size() < cols_.size(), "Table::add: row overflow");
  rows_.back().push_back(std::move(c));
  return *this;
}

Table& Table::addRow(std::vector<Cell> cells) {
  checkInvariant(cells.size() == cols_.size(), "Table::addRow: arity mismatch");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string cellToString(const Cell& c) {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<i64>(&c)) return std::to_string(*i);
  std::ostringstream os;
  os << std::fixed << std::setprecision(4) << std::get<double>(c);
  return os.str();
}

void Table::printPretty(std::ostream& os, const std::string& title) const {
  std::vector<size_t> widths(cols_.size());
  for (size_t i = 0; i < cols_.size(); ++i) widths[i] = cols_[i].size();
  std::vector<std::vector<std::string>> text;
  text.reserve(rows_.size());
  for (const auto& r : rows_) {
    auto& t = text.emplace_back();
    for (size_t i = 0; i < r.size(); ++i) {
      t.push_back(cellToString(r[i]));
      if (t.back().size() > widths[i]) widths[i] = t.back().size();
    }
  }
  if (!title.empty()) os << "== " << title << " ==\n";
  for (size_t i = 0; i < cols_.size(); ++i)
    os << (i ? "  " : "") << std::setw(static_cast<int>(widths[i])) << cols_[i];
  os << "\n";
  for (const auto& t : text) {
    for (size_t i = 0; i < t.size(); ++i)
      os << (i ? "  " : "") << std::setw(static_cast<int>(widths[i])) << t[i];
    os << "\n";
  }
}

void Table::printCsv(std::ostream& os) const {
  for (size_t i = 0; i < cols_.size(); ++i) os << (i ? "," : "") << cols_[i];
  os << "\n";
  for (const auto& r : rows_) {
    for (size_t i = 0; i < r.size(); ++i)
      os << (i ? "," : "") << cellToString(r[i]);
    os << "\n";
  }
}

}  // namespace lht::common
