#include "common/varint.h"

namespace lht::common {

void appendVarint(std::string& out, u64 value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

size_t varintSize(u64 value) {
  size_t n = 1;
  while (value >= 0x80) {
    value >>= 7;
    n += 1;
  }
  return n;
}

std::optional<u64> decodeVarint(std::string_view data, size_t* pos) {
  u64 value = 0;
  size_t p = *pos;
  for (size_t i = 0; i < kMaxVarintBytes; ++i) {
    if (p >= data.size()) return std::nullopt;  // truncated
    const u8 byte = static_cast<u8>(data[p]);
    p += 1;
    if (i == kMaxVarintBytes - 1) {
      // Tenth byte: only bit 0 may be set (64 = 9*7 + 1), and it must be
      // the final byte. Anything else overflows or is overlong.
      if (byte > 1) return std::nullopt;
    }
    value |= static_cast<u64>(byte & 0x7F) << (7 * i);
    if ((byte & 0x80) == 0) {
      // Canonicality: a multi-byte encoding must not end in a zero payload
      // byte (the value would fit in fewer bytes). Accepting overlong
      // forms would let one value have many encodings — poison for the
      // dedup caches and byte-exact tests downstream.
      if (byte == 0 && i > 0) return std::nullopt;
      *pos = p;
      return value;
    }
  }
  return std::nullopt;  // 10 continuation bytes: unterminated
}

}  // namespace lht::common
