// Non-cryptographic hashing used for DHT key placement and hash maps.
//
// The DHT substrates hash string keys onto a 64-bit identifier ring
// (consistent hashing, paper Sec. 1). xxHash64 gives the uniformity the
// load-balance argument relies on; FNV-1a is kept as a simple alternative
// and for differential tests.
#pragma once

#include <string_view>

#include "common/types.h"

namespace lht::common::hash {

/// xxHash64 over an arbitrary byte string.
u64 xxhash64(std::string_view data, u64 seed = 0);

/// xxHash64 of a single 64-bit value (avalanche-quality integer hash).
u64 xxhash64(u64 value, u64 seed = 0);

/// FNV-1a 64-bit hash of a byte string.
u64 fnv1a64(std::string_view data);

/// SplitMix64 finalizer; handy for seeding generators from small integers.
u64 splitmix64(u64 x);

}  // namespace lht::common::hash
