// Deterministic pseudo-random generation for workloads and simulations.
//
// All experiments are seeded, so every figure in EXPERIMENTS.md is exactly
// reproducible. PCG32 is small, fast, and statistically solid; the
// distributions on top of it cover everything the paper's evaluation needs
// (uniform and gaussian keys, Sec. 9.1) plus a Zipf extension.
#pragma once

#include <vector>

#include "common/types.h"

namespace lht::common {

/// PCG32 (O'Neill). 64-bit state, 32-bit output, seedable streams.
class Pcg32 {
 public:
  explicit Pcg32(u64 seed = 0x853c49e6748fea9bull, u64 stream = 0xda3e39cb94b95bdbull);

  /// Next 32 uniform random bits.
  u32 next();

  /// Next 64 uniform random bits.
  u64 next64();

  /// Uniform integer in [0, bound). Requires bound > 0. Unbiased (rejection).
  u32 below(u32 bound);

  /// Uniform double in [0, 1).
  double nextDouble();

 private:
  u64 state_;
  u64 inc_;
};

/// Uniform real values in [lo, hi).
class UniformReal {
 public:
  UniformReal(double lo, double hi) : lo_(lo), hi_(hi) {}
  double sample(Pcg32& rng) const { return lo_ + (hi_ - lo_) * rng.nextDouble(); }

 private:
  double lo_, hi_;
};

/// Gaussian via Box-Muller (cached spare value).
class Gaussian {
 public:
  Gaussian(double mean, double stddev) : mean_(mean), stddev_(stddev) {}
  double sample(Pcg32& rng);

 private:
  double mean_, stddev_;
  bool hasSpare_ = false;
  double spare_ = 0.0;
};

/// Zipf-distributed ranks in [1, n] with exponent s (precomputed CDF).
class Zipf {
 public:
  Zipf(u32 n, double s);
  u32 sample(Pcg32& rng) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace lht::common
