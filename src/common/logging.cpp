#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace lht::common {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

// Guards the sink pointer AND every sink invocation: one record, one
// locked write, no interleaving of partial lines across threads.
std::mutex g_sinkMutex;
LogSink g_sink;  // empty = stderr default

const char* levelName(LogLevel l) {
  switch (l) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
  }
  return "?";
}
}  // namespace

void setLogLevel(LogLevel level) { g_level.store(level); }
LogLevel logLevel() { return g_level.load(); }

void setLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_sinkMutex);
  g_sink = std::move(sink);
}

void logMessage(LogLevel level, const std::string& message) {
  // Format the complete record before taking the lock; the critical
  // section is exactly one sink write.
  std::string record;
  record.reserve(message.size() + 12);
  record += '[';
  record += levelName(level);
  record += "] ";
  record += message;
  record += '\n';
  std::lock_guard<std::mutex> lock(g_sinkMutex);
  if (g_sink) {
    g_sink(record);
  } else {
    std::fwrite(record.data(), 1, record.size(), stderr);
  }
}

}  // namespace lht::common
