#include "common/logging.h"

#include <atomic>
#include <iostream>

namespace lht::common {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* levelName(LogLevel l) {
  switch (l) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
  }
  return "?";
}
}  // namespace

void setLogLevel(LogLevel level) { g_level.store(level); }
LogLevel logLevel() { return g_level.load(); }

void logMessage(LogLevel level, const std::string& message) {
  std::cerr << "[" << levelName(level) << "] " << message << "\n";
}

}  // namespace lht::common
