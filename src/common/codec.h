// Binary (de)serialization for values stored in the DHT.
//
// DHT peers store opaque byte strings; the index layers serialize leaf
// buckets and trie nodes through this codec. Keeping the wire format explicit
// lets the network simulator account bytes, and lets tests check round-trips.
// Format: little-endian fixed-width integers, varint-free for simplicity,
// length-prefixed strings.
#pragma once

#include <cstring>
#include <optional>
#include <string>
#include <string_view>

#include "common/label.h"
#include "common/types.h"
#include "common/varint.h"

namespace lht::common {

/// Appends primitive values to a byte buffer.
class Encoder {
 public:
  Encoder() = default;
  /// Pre-sizes the buffer for a known serialized size (see e.g.
  /// LeafBucket::serializedSize()) so encoding never reallocates.
  explicit Encoder(size_t sizeHint) { buf_.reserve(sizeHint); }

  void reserve(size_t sizeHint) { buf_.reserve(sizeHint); }

  void putU8(u8 v) { buf_.push_back(static_cast<char>(v)); }
  void putU32(u32 v) { putRaw(&v, sizeof(v)); }
  void putU64(u64 v) { putRaw(&v, sizeof(v)); }
  void putDouble(double v) { putRaw(&v, sizeof(v)); }
  void putString(std::string_view s) {
    putU32(static_cast<u32>(s.size()));
    buf_.append(s.data(), s.size());
  }
  void putLabel(const Label& l) {
    putU32(l.length());
    putU64(l.bits());
  }

  /// ULEB128 (common/varint.h): 1 byte for values < 128, at most 10. The
  /// RPC wire format (src/rpc/wire.h) frames everything with these.
  void putVarint(u64 v) { appendVarint(buf_, v); }
  /// Varint-length-prefixed bytes: the compact counterpart of putString.
  void putVarBytes(std::string_view s) {
    putVarint(s.size());
    buf_.append(s.data(), s.size());
  }

  /// Finishes encoding and releases the buffer.
  [[nodiscard]] std::string take() && { return std::move(buf_); }
  [[nodiscard]] const std::string& buffer() const { return buf_; }

 private:
  void putRaw(const void* p, size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  std::string buf_;
};

/// Reads primitive values back out. All getters return nullopt on underflow
/// or malformed content rather than crashing: DHT values cross a (simulated)
/// network boundary, so decoding must be total.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  std::optional<u8> getU8();
  std::optional<u32> getU32();
  std::optional<u64> getU64();
  std::optional<double> getDouble();
  std::optional<std::string> getString();
  std::optional<Label> getLabel();
  std::optional<u64> getVarint();
  std::optional<std::string> getVarBytes();

  /// Bytes not yet consumed.
  [[nodiscard]] size_t remaining() const { return data_.size() - pos_; }
  /// Whether the whole buffer was consumed.
  [[nodiscard]] bool atEnd() const { return pos_ == data_.size(); }

 private:
  bool take(void* out, size_t n);
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace lht::common
