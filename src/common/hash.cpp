#include "common/hash.h"

#include <cstring>

namespace lht::common::hash {

namespace {

constexpr u64 kPrime1 = 0x9E3779B185EBCA87ull;
constexpr u64 kPrime2 = 0xC2B2AE3D27D4EB4Full;
constexpr u64 kPrime3 = 0x165667B19E3779F9ull;
constexpr u64 kPrime4 = 0x85EBCA77C2B2AE63ull;
constexpr u64 kPrime5 = 0x27D4EB2F165667C5ull;

constexpr u64 rotl(u64 x, int r) { return (x << r) | (x >> (64 - r)); }

u64 read64(const char* p) {
  u64 v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

u32 read32(const char* p) {
  u32 v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

u64 round64(u64 acc, u64 input) {
  acc += input * kPrime2;
  acc = rotl(acc, 31);
  acc *= kPrime1;
  return acc;
}

u64 mergeRound(u64 acc, u64 val) {
  acc ^= round64(0, val);
  return acc * kPrime1 + kPrime4;
}

u64 avalanche(u64 h) {
  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

}  // namespace

u64 xxhash64(std::string_view data, u64 seed) {
  const char* p = data.data();
  const char* end = p + data.size();
  u64 h;

  if (data.size() >= 32) {
    u64 v1 = seed + kPrime1 + kPrime2;
    u64 v2 = seed + kPrime2;
    u64 v3 = seed;
    u64 v4 = seed - kPrime1;
    const char* limit = end - 32;
    do {
      v1 = round64(v1, read64(p));
      v2 = round64(v2, read64(p + 8));
      v3 = round64(v3, read64(p + 16));
      v4 = round64(v4, read64(p + 24));
      p += 32;
    } while (p <= limit);
    h = rotl(v1, 1) + rotl(v2, 7) + rotl(v3, 12) + rotl(v4, 18);
    h = mergeRound(h, v1);
    h = mergeRound(h, v2);
    h = mergeRound(h, v3);
    h = mergeRound(h, v4);
  } else {
    h = seed + kPrime5;
  }

  h += static_cast<u64>(data.size());

  while (p + 8 <= end) {
    h ^= round64(0, read64(p));
    h = rotl(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<u64>(read32(p)) * kPrime1;
    h = rotl(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<u64>(static_cast<unsigned char>(*p)) * kPrime5;
    h = rotl(h, 11) * kPrime1;
    ++p;
  }
  return avalanche(h);
}

u64 xxhash64(u64 value, u64 seed) {
  u64 h = seed + kPrime5 + 8;
  h ^= round64(0, value);
  h = rotl(h, 27) * kPrime1 + kPrime4;
  return avalanche(h);
}

u64 fnv1a64(std::string_view data) {
  u64 h = 0xcbf29ce484222325ull;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

u64 splitmix64(u64 x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace lht::common::hash
