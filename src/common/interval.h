// Half-open real intervals over the unit key space [0, 1).
//
// LHT indexes one-dimensional keys in [0, 1] (paper Sec. 3.1). Every tree
// node covers a dyadic interval [a/2^d, (a+1)/2^d); queries carry arbitrary
// half-open ranges. Both are modelled here.
#pragma once

#include <cmath>
#include <string>

namespace lht::common {

/// Maps a data key in [0, 1] onto the half-open key space [0, 1): the
/// boundary key 1.0 belongs to the last (rightmost) cell.
inline double clampToUnit(double key) {
  return key < 1.0 ? key : std::nextafter(1.0, 0.0);
}

/// A half-open interval [lo, hi). Empty when hi <= lo.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  /// Whether `key` falls inside [lo, hi).
  [[nodiscard]] bool contains(double key) const { return key >= lo && key < hi; }

  /// Whether this interval has no points.
  [[nodiscard]] bool empty() const { return hi <= lo; }

  /// Interval width (0 when empty).
  [[nodiscard]] double width() const { return empty() ? 0.0 : hi - lo; }

  /// Whether the two intervals share at least one point.
  [[nodiscard]] bool overlaps(const Interval& other) const;

  /// Whether this interval is fully contained in `other`.
  [[nodiscard]] bool subsetOf(const Interval& other) const;

  /// The common part of the two intervals (possibly empty).
  [[nodiscard]] Interval intersect(const Interval& other) const;

  /// Renders as "[lo, hi)".
  [[nodiscard]] std::string str() const;

  friend bool operator==(const Interval&, const Interval&) = default;
};

/// The full unit key space.
inline Interval unitInterval() { return {0.0, 1.0}; }

}  // namespace lht::common
