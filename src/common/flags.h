// Minimal command-line flag parsing for bench and example binaries.
//
// Supports --name=value and --name value forms plus boolean --name. Every
// binary declares its flags up front so --help can print them.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace lht::common {

/// Declared-flag parser. Typical use:
///   Flags flags("fig8_lookup", "Reproduces Fig. 8");
///   flags.define("repeats", "5", "datasets averaged per point");
///   if (!flags.parse(argc, argv)) return 1;   // printed --help or an error
///   int repeats = flags.getInt("repeats");
class Flags {
 public:
  Flags(std::string program, std::string description);

  /// Declares a flag with a default value and help text.
  void define(const std::string& name, const std::string& defaultValue,
              const std::string& help);

  /// Parses argv. Returns false if --help was requested or an unknown or
  /// malformed flag was seen (a message is printed to stderr/stdout).
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string getString(const std::string& name) const;
  [[nodiscard]] i64 getInt(const std::string& name) const;
  [[nodiscard]] double getDouble(const std::string& name) const;
  [[nodiscard]] bool getBool(const std::string& name) const;

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  void printHelp() const;

 private:
  struct Entry {
    std::string value;
    std::string defaultValue;
    std::string help;
  };
  std::string program_;
  std::string description_;
  std::map<std::string, Entry> entries_;
  std::vector<std::string> positional_;
};

}  // namespace lht::common
