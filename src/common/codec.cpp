#include "common/codec.h"

namespace lht::common {

bool Decoder::take(void* out, size_t n) {
  if (data_.size() - pos_ < n) return false;
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
  return true;
}

std::optional<u8> Decoder::getU8() {
  u8 v;
  if (!take(&v, sizeof(v))) return std::nullopt;
  return v;
}

std::optional<u32> Decoder::getU32() {
  u32 v;
  if (!take(&v, sizeof(v))) return std::nullopt;
  return v;
}

std::optional<u64> Decoder::getU64() {
  u64 v;
  if (!take(&v, sizeof(v))) return std::nullopt;
  return v;
}

std::optional<double> Decoder::getDouble() {
  double v;
  if (!take(&v, sizeof(v))) return std::nullopt;
  return v;
}

std::optional<std::string> Decoder::getString() {
  auto n = getU32();
  if (!n) return std::nullopt;
  if (data_.size() - pos_ < *n) return std::nullopt;
  std::string s(data_.substr(pos_, *n));
  pos_ += *n;
  return s;
}

std::optional<u64> Decoder::getVarint() { return decodeVarint(data_, &pos_); }

std::optional<std::string> Decoder::getVarBytes() {
  const size_t mark = pos_;
  auto n = getVarint();
  if (!n || data_.size() - pos_ < *n) {
    pos_ = mark;
    return std::nullopt;
  }
  std::string s(data_.substr(pos_, *n));
  pos_ += *n;
  return s;
}

std::optional<Label> Decoder::getLabel() {
  auto len = getU32();
  auto bits = getU64();
  if (!len || !bits) return std::nullopt;
  if (*len > Label::kMaxBits) return std::nullopt;
  if (*len < 64 && (*bits >> *len) != 0) return std::nullopt;
  return Label::fromBits(*bits, *len);
}

}  // namespace lht::common
