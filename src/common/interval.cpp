#include "common/interval.h"

#include <algorithm>
#include <sstream>

namespace lht::common {

bool Interval::overlaps(const Interval& other) const {
  if (empty() || other.empty()) return false;
  return lo < other.hi && other.lo < hi;
}

bool Interval::subsetOf(const Interval& other) const {
  if (empty()) return true;
  return lo >= other.lo && hi <= other.hi;
}

Interval Interval::intersect(const Interval& other) const {
  Interval out{std::max(lo, other.lo), std::min(hi, other.hi)};
  if (out.hi < out.lo) out.hi = out.lo;
  return out;
}

std::string Interval::str() const {
  std::ostringstream os;
  os << "[" << lo << ", " << hi << ")";
  return os.str();
}

}  // namespace lht::common
