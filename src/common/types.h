// Basic shared type aliases and small vocabulary types.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace lht::common {

using u8 = std::uint8_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i64 = std::int64_t;

/// Thrown when an internal invariant is violated. Invariant failures are
/// programming errors, not recoverable conditions, so we fail loudly.
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

/// Checks an invariant; throws InvariantError with `msg` when it fails.
inline void checkInvariant(bool ok, const char* msg) {
  if (!ok) throw InvariantError(msg);
}

}  // namespace lht::common
