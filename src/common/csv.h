// Tabular output for the benchmark harness.
//
// Every bench binary prints the series behind one paper figure/table both as
// an aligned console table (for humans) and CSV (for plotting). Columns are
// declared once; rows are appended cell by cell.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

#include "common/types.h"

namespace lht::common {

/// A cell is text, an integer, or a real value.
using Cell = std::variant<std::string, i64, double>;

/// A simple column-oriented table.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Starts a new row; cells are filled with add().
  Table& row();
  /// Appends a cell to the current row. Must not exceed the column count.
  Table& add(Cell c);

  /// Convenience: appends a full row at once.
  Table& addRow(std::vector<Cell> cells);

  [[nodiscard]] size_t rowCount() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& columns() const { return cols_; }
  [[nodiscard]] const std::vector<std::vector<Cell>>& rows() const { return rows_; }

  /// Writes an aligned, human-readable table.
  void printPretty(std::ostream& os, const std::string& title = "") const;

  /// Writes RFC-4180-ish CSV (no quoting needed for our cell contents).
  void printCsv(std::ostream& os) const;

 private:
  std::vector<std::string> cols_;
  std::vector<std::vector<Cell>> rows_;
};

/// Renders a cell as text (doubles with 4 significant decimals).
std::string cellToString(const Cell& c);

}  // namespace lht::common
