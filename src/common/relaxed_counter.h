// A copyable relaxed-atomic event counter.
//
// The stats structs scattered through the stack (DhtStats, NetStats,
// PeerStats, decorator diagnostics) are written on every routed operation
// and read by tests/benches after the fact. Under the concurrent execution
// engine several client threads bump them at once; each increment is an
// independent event with no ordering requirement against anything else, so
// relaxed atomics are exactly right: the final totals are precise, and no
// increment can tear or be lost.
//
// RelaxedCounter is deliberately copyable (snapshot semantics: copying
// loads the current value) so the existing `stats()` accessors,
// `*this = Stats{}` resets, and by-value snapshots keep compiling
// unchanged. Reads convert implicitly to u64.
#pragma once

#include <atomic>

#include "common/types.h"

namespace lht::common {

class RelaxedCounter {
 public:
  RelaxedCounter(u64 v = 0) : v_(v) {}  // NOLINT(google-explicit-constructor)
  RelaxedCounter(const RelaxedCounter& o) : v_(o.load()) {}
  RelaxedCounter& operator=(const RelaxedCounter& o) {
    v_.store(o.load(), std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator=(u64 v) {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }

  RelaxedCounter& operator+=(u64 delta) {
    v_.fetch_add(delta, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator-=(u64 delta) {
    v_.fetch_sub(delta, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator++() { return *this += 1; }

  operator u64() const { return load(); }  // NOLINT(google-explicit-constructor)
  [[nodiscard]] u64 load() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<u64> v_;
};

}  // namespace lht::common
