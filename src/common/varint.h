// ULEB128 variable-length integer encoding (satellite of the RPC wire
// format; DESIGN.md §14).
//
// Small values dominate both the RPC headers (request ids, list counts,
// string lengths) and the WAL record framing, so the classic LEB128
// 7-bits-per-byte encoding shrinks them to 1-2 bytes while still covering
// the full u64 range in at most 10. Shared here in src/common so the
// message codec (src/rpc/wire.h) and, later, the WAL can use one
// implementation.
//
// Decoding is total: malformed input (truncation, >10 bytes, non-canonical
// overlong final byte) returns nullopt instead of reading past the buffer
// — the same contract as common::Decoder, because these bytes cross
// process boundaries.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "common/types.h"

namespace lht::common {

/// Longest ULEB128 encoding of a u64 (ceil(64 / 7) bytes).
inline constexpr size_t kMaxVarintBytes = 10;

/// Appends the ULEB128 encoding of `value` to `out`.
void appendVarint(std::string& out, u64 value);

/// Bytes appendVarint would emit for `value` (1..10).
[[nodiscard]] size_t varintSize(u64 value);

/// Decodes one ULEB128 value from `data` starting at `*pos`, advancing
/// `*pos` past it. Returns nullopt (and leaves `*pos` untouched) on
/// truncated, overlong, or out-of-range input.
[[nodiscard]] std::optional<u64> decodeVarint(std::string_view data,
                                              size_t* pos);

}  // namespace lht::common
