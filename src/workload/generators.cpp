#include "workload/generators.h"

#include "common/types.h"

namespace lht::workload {

Distribution parseDistribution(const std::string& name) {
  if (name == "uniform") return Distribution::Uniform;
  if (name == "gaussian") return Distribution::Gaussian;
  if (name == "zipf") return Distribution::Zipf;
  throw common::InvariantError("unknown distribution: " + name);
}

std::string distributionName(Distribution d) {
  switch (d) {
    case Distribution::Uniform: return "uniform";
    case Distribution::Gaussian: return "gaussian";
    case Distribution::Zipf: return "zipf";
  }
  return "?";
}

KeyGenerator::KeyGenerator(Distribution dist, common::u64 seed)
    : dist_(dist), rng_(seed, /*stream=*/0x776bu) {}

double KeyGenerator::next() {
  switch (dist_) {
    case Distribution::Uniform:
      return rng_.nextDouble();
    case Distribution::Gaussian: {
      for (;;) {
        const double v = gaussian_.sample(rng_);
        if (v >= 0.0 && v < 1.0) return v;
      }
    }
    case Distribution::Zipf: {
      // Rank -> grid cell, plus in-cell jitter so keys stay distinct-ish.
      const double cell = static_cast<double>(zipf_.sample(rng_) - 1) / 1024.0;
      return cell + rng_.nextDouble() / 1024.0;
    }
  }
  return 0.0;
}

std::vector<index::Record> makeDataset(Distribution dist, size_t n,
                                       common::u64 seed) {
  KeyGenerator gen(dist, seed);
  std::vector<index::Record> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(index::Record{gen.next(), "r" + std::to_string(i)});
  }
  return out;
}

RangeSpec makeRange(double span, common::Pcg32& rng) {
  common::checkInvariant(span > 0.0 && span <= 1.0, "makeRange: bad span");
  const double lo = rng.nextDouble() * (1.0 - span);
  return RangeSpec{lo, lo + span};
}

}  // namespace lht::workload
