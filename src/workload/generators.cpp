#include "workload/generators.h"

#include <algorithm>
#include <utility>

#include "common/types.h"

namespace lht::workload {

Distribution parseDistribution(const std::string& name) {
  if (name == "uniform") return Distribution::Uniform;
  if (name == "gaussian") return Distribution::Gaussian;
  if (name == "zipf") return Distribution::Zipf;
  throw common::InvariantError("unknown distribution: " + name);
}

std::string distributionName(Distribution d) {
  switch (d) {
    case Distribution::Uniform: return "uniform";
    case Distribution::Gaussian: return "gaussian";
    case Distribution::Zipf: return "zipf";
  }
  return "?";
}

KeyGenerator::KeyGenerator(Distribution dist, common::u64 seed)
    : dist_(dist), rng_(seed, /*stream=*/0x776bu) {}

double KeyGenerator::next() {
  switch (dist_) {
    case Distribution::Uniform:
      return rng_.nextDouble();
    case Distribution::Gaussian: {
      for (;;) {
        const double v = gaussian_.sample(rng_);
        if (v >= 0.0 && v < 1.0) return v;
      }
    }
    case Distribution::Zipf: {
      // Rank -> grid cell, plus in-cell jitter so keys stay distinct-ish.
      const double cell = static_cast<double>(zipf_.sample(rng_) - 1) / 1024.0;
      return cell + rng_.nextDouble() / 1024.0;
    }
  }
  return 0.0;
}

std::vector<index::Record> makeDataset(Distribution dist, size_t n,
                                       common::u64 seed) {
  KeyGenerator gen(dist, seed);
  std::vector<index::Record> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(index::Record{gen.next(), "r" + std::to_string(i)});
  }
  return out;
}

RangeSpec makeRange(double span, common::Pcg32& rng) {
  common::checkInvariant(span > 0.0 && span <= 1.0, "makeRange: bad span");
  const double lo = rng.nextDouble() * (1.0 - span);
  return RangeSpec{lo, lo + span};
}

// ---------------------------------------------------------------------------
// SkewedKeyGenerator
// ---------------------------------------------------------------------------

SkewedKeyGenerator::SkewedKeyGenerator(SkewConfig cfg, common::u64 seed)
    : cfg_(cfg),
      rng_(seed, /*stream=*/0x5ce3u),
      zipf_(std::max<common::u32>(1, cfg.universe), cfg.s) {
  common::checkInvariant(cfg_.universe >= 1,
                         "SkewedKeyGenerator: empty universe");
  if (cfg_.flashJump == 0) cfg_.flashJump = cfg_.universe / 2 + 1;
  // The permutation draws from its own stream, so the placement of the
  // hot cells depends only on the seed, never on how many keys were drawn.
  common::Pcg32 permRng(seed, /*stream=*/0x9e37u);
  perm_.resize(cfg_.universe);
  for (common::u32 i = 0; i < cfg_.universe; ++i) perm_[i] = i;
  for (common::u32 i = cfg_.universe; i > 1; --i) {
    std::swap(perm_[i - 1], perm_[permRng.below(i)]);
  }
}

common::u32 SkewedKeyGenerator::cellOfRank(common::u32 rank) const {
  common::checkInvariant(rank >= 1 && rank <= cfg_.universe,
                         "SkewedKeyGenerator: rank out of range");
  const common::u64 base = perm_[rank - 1];
  const common::u64 offset =
      static_cast<common::u64>(shifts_) * cfg_.flashJump;
  return static_cast<common::u32>((base + offset) % cfg_.universe);
}

double SkewedKeyGenerator::keyOfRank(common::u32 rank) const {
  return (static_cast<double>(cellOfRank(rank)) + 0.5) /
         static_cast<double>(cfg_.universe);
}

double SkewedKeyGenerator::next() {
  if (cfg_.flashEvery > 0 && draws_ > 0 && draws_ % cfg_.flashEvery == 0) {
    shifts_ += 1;
  }
  lastRank_ = zipf_.sample(rng_);
  draws_ += 1;
  return keyOfRank(lastRank_);
}

}  // namespace lht::workload
