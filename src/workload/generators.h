// Workload generation (paper Sec. 9.1).
//
// Uniform datasets: keys ~ U[0, 1).
// Gaussian datasets: keys ~ N(1/2, 1/6), which puts ~99.7% of mass in
// [0, 1]; out-of-range draws are redrawn so keys stay valid (the paper
// says "about 97% fall in [0,1]" — near the 3-sigma bound — and does not
// state the handling; rejection keeps the shape without clamping spikes
// at 0 and 1).
// Zipf datasets (extension): heavy-skew key popularity over a grid.
//
// Range workloads follow the paper: the span u-l is fixed per experiment
// and the lower bound l ~ U[0, 1 - span].
#pragma once

#include <string>
#include <vector>

#include "common/random.h"
#include "index/record.h"

namespace lht::workload {

enum class Distribution { Uniform, Gaussian, Zipf };

/// Parses "uniform" / "gaussian" / "zipf" (case-sensitive, bench CLI use).
Distribution parseDistribution(const std::string& name);
std::string distributionName(Distribution d);

/// Deterministic stream of data keys in [0, 1].
class KeyGenerator {
 public:
  KeyGenerator(Distribution dist, common::u64 seed);
  double next();

 private:
  Distribution dist_;
  common::Pcg32 rng_;
  common::Gaussian gaussian_{0.5, 1.0 / 6.0};
  common::Zipf zipf_{1024, 1.1};
};

/// A full dataset of n records (payloads are short synthetic strings).
std::vector<index::Record> makeDataset(Distribution dist, size_t n,
                                       common::u64 seed);

/// A range query [lo, lo+span) with lo ~ U[0, 1-span].
struct RangeSpec {
  double lo = 0.0;
  double hi = 0.0;
};
RangeSpec makeRange(double span, common::Pcg32& rng);

}  // namespace lht::workload
