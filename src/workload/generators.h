// Workload generation (paper Sec. 9.1).
//
// Uniform datasets: keys ~ U[0, 1).
// Gaussian datasets: keys ~ N(1/2, 1/6), which puts ~99.7% of mass in
// [0, 1]; out-of-range draws are redrawn so keys stay valid (the paper
// says "about 97% fall in [0,1]" — near the 3-sigma bound — and does not
// state the handling; rejection keeps the shape without clamping spikes
// at 0 and 1).
// Zipf datasets (extension): heavy-skew key popularity over a grid.
//
// Range workloads follow the paper: the span u-l is fixed per experiment
// and the lower bound l ~ U[0, 1 - span].
#pragma once

#include <string>
#include <vector>

#include "common/random.h"
#include "index/record.h"

namespace lht::workload {

enum class Distribution { Uniform, Gaussian, Zipf };

/// Parses "uniform" / "gaussian" / "zipf" (case-sensitive, bench CLI use).
Distribution parseDistribution(const std::string& name);
std::string distributionName(Distribution d);

/// Deterministic stream of data keys in [0, 1].
class KeyGenerator {
 public:
  KeyGenerator(Distribution dist, common::u64 seed);
  double next();

 private:
  Distribution dist_;
  common::Pcg32 rng_;
  common::Gaussian gaussian_{0.5, 1.0 / 6.0};
  common::Zipf zipf_{1024, 1.1};
};

/// A full dataset of n records (payloads are short synthetic strings).
std::vector<index::Record> makeDataset(Distribution dist, size_t n,
                                       common::u64 seed);

/// A range query [lo, lo+span) with lo ~ U[0, 1-span].
struct RangeSpec {
  double lo = 0.0;
  double hi = 0.0;
};
RangeSpec makeRange(double span, common::Pcg32& rng);

// Zipfian + flash-crowd key streams (DESIGN.md §13) -------------------------
//
// The skew campaign's workload family: keys live on a `universe`-cell grid
// over [0, 1); a draw samples a zipf rank and maps it through a
// seed-derived random permutation of the cells, so the popular cells land
// at unpredictable positions in key space (a fixed rank->position map
// would always make the leftmost leaf hot). Flash crowds rotate the whole
// rank->cell mapping by `flashJump` cells every `flashEvery` draws: the
// hot set relocates instantaneously, at an exactly known draw index —
// property tests pin the shift timing, and campaigns use it to yank the
// hot set out from under warmed caches and leases.

struct SkewConfig {
  double s = 0.99;           ///< zipf exponent (the acceptance gate's skew)
  common::u32 universe = 1024;  ///< grid cells (= distinct key positions)
  /// Draws between hot-set shifts; 0 = static popularity (no flash crowd).
  size_t flashEvery = 0;
  /// Cells the mapping rotates per shift; 0 picks universe/2 + 1 (odd, so
  /// consecutive hot sets never overlap for universe >= 4).
  common::u32 flashJump = 0;
};

/// Deterministic zipfian key stream with flash-crowd shifts. Emitted keys
/// are cell centers ((cell + 0.5) / universe), so a campaign can preload
/// exactly the keys the stream will query.
class SkewedKeyGenerator {
 public:
  SkewedKeyGenerator(SkewConfig cfg, common::u64 seed);

  /// Next key. Applies a pending hot-set shift first (at draw indexes
  /// flashEvery, 2*flashEvery, ... — draw 0 is pre-shift).
  double next();

  /// Key of zipf rank `rank` (1-based) under the CURRENT hot-set
  /// placement. Consumes no randomness.
  [[nodiscard]] double keyOfRank(common::u32 rank) const;

  [[nodiscard]] const SkewConfig& config() const { return cfg_; }
  [[nodiscard]] common::u32 lastRank() const { return lastRank_; }
  [[nodiscard]] size_t draws() const { return draws_; }
  [[nodiscard]] common::u32 shifts() const { return shifts_; }

 private:
  [[nodiscard]] common::u32 cellOfRank(common::u32 rank) const;

  SkewConfig cfg_;
  common::Pcg32 rng_;
  common::Zipf zipf_;
  std::vector<common::u32> perm_;  ///< rank-1 -> base cell (seed-derived)
  size_t draws_ = 0;
  common::u32 shifts_ = 0;
  common::u32 lastRank_ = 1;
};

}  // namespace lht::workload
