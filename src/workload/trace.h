// Workload traces: a serializable operation log that can be written to
// disk, read back, and replayed against any OrderedIndex. Traces make
// experiments repeatable across machines and let failure cases be captured
// as regression artifacts.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "cost/meter.h"
#include "index/ordered_index.h"
#include "workload/generators.h"

namespace lht::workload {

struct Operation {
  enum class Kind : common::u8 {
    Insert = 0,
    Erase = 1,
    Find = 2,
    Range = 3,
    Min = 4,
    Max = 5,
  };

  Kind kind = Kind::Insert;
  double key = 0.0;      ///< insert/erase/find key, or range lower bound
  double hi = 0.0;       ///< range upper bound (Range only)
  std::string payload;   ///< inserted payload (Insert only)

  friend bool operator==(const Operation&, const Operation&) = default;
};

/// Serializes a trace (versioned binary format) and writes it to `path`.
/// Returns false on I/O failure.
bool writeTrace(const std::string& path, const std::vector<Operation>& ops);

/// Reads a trace written by writeTrace. Returns nullopt on I/O failure or
/// a malformed/incompatible file.
std::optional<std::vector<Operation>> readTrace(const std::string& path);

/// In-memory (de)serialization, exposed for tests and network use.
std::string encodeTrace(const std::vector<Operation>& ops);
std::optional<std::vector<Operation>> decodeTrace(std::string_view bytes);

/// Mix weights for generated traces (normalized internally).
struct TraceMix {
  double insert = 0.6;
  double erase = 0.1;
  double find = 0.2;
  double range = 0.1;
  double minmax = 0.0;
  double rangeSpan = 0.05;  ///< span of generated range queries
};

/// Generates a mixed operation trace with keys drawn from `dist`. Erases
/// and finds target previously inserted keys when any exist.
std::vector<Operation> makeMixedTrace(Distribution dist, size_t ops,
                                      const TraceMix& mix, common::u64 seed);

/// Mix weights for skewed traces (normalized internally): read-heavy by
/// default — the hot-leaf read-balancing scenario.
struct SkewMix {
  double find = 0.9;
  double insert = 0.1;
};

/// Generates a find/insert trace whose keys follow a SkewedKeyGenerator
/// stream (zipfian popularity + optional flash-crowd shifts). Finds hit
/// the drawn cell's center key — exactly what a campaign preloads via
/// keyOfRank — so hot-leaf read traffic is real, not probable misses.
/// Inserts jitter uniformly within the drawn cell (distinct keys), which
/// keeps feeding the hot leaves the records that trigger their splits.
std::vector<Operation> makeSkewedTrace(size_t ops, const SkewConfig& skew,
                                       const SkewMix& mix, common::u64 seed);

/// Aggregate results of replaying a trace.
struct ReplayStats {
  size_t inserts = 0;
  size_t erases = 0;
  size_t finds = 0;
  size_t ranges = 0;
  size_t minmaxes = 0;
  size_t recordsReturned = 0;  ///< across finds + ranges + min/max
  cost::OpStats totals;
};

/// Applies every operation to `index` in order.
ReplayStats replay(index::OrderedIndex& index, const std::vector<Operation>& ops);

}  // namespace lht::workload
