#include "workload/trace.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/codec.h"

namespace lht::workload {

namespace {
constexpr common::u32 kTraceMagic = 0x4C485431;  // "LHT1"
}  // namespace

std::string encodeTrace(const std::vector<Operation>& ops) {
  common::Encoder enc;
  enc.putU32(kTraceMagic);
  enc.putU32(static_cast<common::u32>(ops.size()));
  for (const auto& op : ops) {
    enc.putU8(static_cast<common::u8>(op.kind));
    enc.putDouble(op.key);
    enc.putDouble(op.hi);
    enc.putString(op.payload);
  }
  return std::move(enc).take();
}

std::optional<std::vector<Operation>> decodeTrace(std::string_view bytes) {
  common::Decoder dec(bytes);
  auto magic = dec.getU32();
  auto count = dec.getU32();
  if (!magic || *magic != kTraceMagic || !count) return std::nullopt;
  if (*count > dec.remaining() / 21) return std::nullopt;  // 1+8+8+4 min/op
  std::vector<Operation> ops;
  ops.reserve(*count);
  for (common::u32 i = 0; i < *count; ++i) {
    auto kind = dec.getU8();
    auto key = dec.getDouble();
    auto hi = dec.getDouble();
    auto payload = dec.getString();
    if (!kind || *kind > 5 || !key || !hi || !payload) return std::nullopt;
    ops.push_back(Operation{static_cast<Operation::Kind>(*kind), *key, *hi,
                            std::move(*payload)});
  }
  if (!dec.atEnd()) return std::nullopt;
  return ops;
}

bool writeTrace(const std::string& path, const std::vector<Operation>& ops) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const std::string bytes = encodeTrace(ops);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

std::optional<std::vector<Operation>> readTrace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return decodeTrace(buf.str());
}

std::vector<Operation> makeMixedTrace(Distribution dist, size_t ops,
                                      const TraceMix& mix, common::u64 seed) {
  common::Pcg32 rng(seed, /*stream=*/0x7261u);
  KeyGenerator gen(dist, seed ^ 0x5EEDull);
  std::vector<Operation> out;
  out.reserve(ops);
  std::vector<double> live;  // keys currently expected to be present

  const double total = mix.insert + mix.erase + mix.find + mix.range + mix.minmax;
  common::checkInvariant(total > 0.0, "makeMixedTrace: all weights zero");

  for (size_t i = 0; i < ops; ++i) {
    double pick = rng.nextDouble() * total;
    Operation op;
    if (live.empty() || pick < mix.insert) {
      op.kind = Operation::Kind::Insert;
      op.key = gen.next();
      op.payload = "t" + std::to_string(i);
      live.push_back(op.key);
    } else if ((pick -= mix.insert) < mix.erase) {
      op.kind = Operation::Kind::Erase;
      const size_t at = rng.below(static_cast<common::u32>(live.size()));
      op.key = live[at];
      live[at] = live.back();
      live.pop_back();
    } else if ((pick -= mix.erase) < mix.find) {
      op.kind = Operation::Kind::Find;
      // Half hits, half probable misses.
      op.key = rng.below(2) == 0
                   ? live[rng.below(static_cast<common::u32>(live.size()))]
                   : rng.nextDouble();
    } else if ((pick -= mix.find) < mix.range) {
      op.kind = Operation::Kind::Range;
      auto spec = makeRange(mix.rangeSpan, rng);
      op.key = spec.lo;
      op.hi = spec.hi;
    } else {
      op.kind = rng.below(2) == 0 ? Operation::Kind::Min : Operation::Kind::Max;
    }
    out.push_back(std::move(op));
  }
  return out;
}

std::vector<Operation> makeSkewedTrace(size_t ops, const SkewConfig& skew,
                                       const SkewMix& mix, common::u64 seed) {
  const double total = mix.find + mix.insert;
  common::checkInvariant(total > 0.0, "makeSkewedTrace: all weights zero");
  common::Pcg32 rng(seed, /*stream=*/0x5de7u);
  SkewedKeyGenerator gen(skew, seed ^ 0x5EEDull);
  const double cellWidth = 1.0 / static_cast<double>(gen.config().universe);
  std::vector<Operation> out;
  out.reserve(ops);
  for (size_t i = 0; i < ops; ++i) {
    Operation op;
    const double center = gen.next();
    if (rng.nextDouble() * total < mix.find) {
      op.kind = Operation::Kind::Find;
      op.key = center;
    } else {
      op.kind = Operation::Kind::Insert;
      // Uniform within the drawn cell, nudged off the exact center so
      // inserted keys never collide with the preloaded center records.
      double k = center + (rng.nextDouble() - 0.5) * cellWidth * 0.98;
      if (k == center) k += cellWidth * 0.25;
      op.key = std::min(std::max(k, 0.0), 1.0);
      op.payload = "sk" + std::to_string(i);
    }
    out.push_back(std::move(op));
  }
  return out;
}

ReplayStats replay(index::OrderedIndex& index, const std::vector<Operation>& ops) {
  ReplayStats s;
  for (const auto& op : ops) {
    switch (op.kind) {
      case Operation::Kind::Insert: {
        auto r = index.insert({op.key, op.payload});
        s.totals += r.stats;
        s.inserts += 1;
        break;
      }
      case Operation::Kind::Erase: {
        auto r = index.erase(op.key);
        s.totals += r.stats;
        s.erases += 1;
        break;
      }
      case Operation::Kind::Find: {
        auto r = index.find(op.key);
        s.totals += r.stats;
        s.finds += 1;
        if (r.record) s.recordsReturned += 1;
        break;
      }
      case Operation::Kind::Range: {
        auto r = index.rangeQuery(op.key, op.hi);
        s.totals += r.stats;
        s.ranges += 1;
        s.recordsReturned += r.records.size();
        break;
      }
      case Operation::Kind::Min: {
        auto r = index.minRecord();
        s.totals += r.stats;
        s.minmaxes += 1;
        if (r.record) s.recordsReturned += 1;
        break;
      }
      case Operation::Kind::Max: {
        auto r = index.maxRecord();
        s.totals += r.stats;
        s.minmaxes += 1;
        if (r.record) s.recordsReturned += 1;
        break;
      }
    }
  }
  return s;
}

}  // namespace lht::workload
