// Trie nodes of the PHT baseline (Prefix Hash Tree, [16, 4] in the paper).
//
// Unlike LHT, PHT maps *every* trie node (internal nodes included) into the
// DHT directly under its own label. Leaves carry the records plus B+-tree
// style links to the neighboring leaves; internal nodes are empty markers
// that exist so the binary-search lookup can distinguish "internal" from
// "nonexistent" prefixes.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/label.h"
#include "index/record.h"

namespace lht::pht {

using common::Label;

struct PhtNode {
  enum class Kind : common::u8 { Internal = 0, Leaf = 1 };

  Kind kind = Kind::Leaf;
  Label label;
  std::vector<index::Record> records;  // leaves only
  std::optional<Label> prevLeaf;       // B+ link to the left neighbor leaf
  std::optional<Label> nextLeaf;       // B+ link to the right neighbor leaf

  [[nodiscard]] bool isLeaf() const { return kind == Kind::Leaf; }
  [[nodiscard]] size_t effectiveSize(bool countLabelSlot) const {
    return records.size() + (countLabelSlot ? 1 : 0);
  }

  [[nodiscard]] std::string serialize() const;
  static std::optional<PhtNode> deserialize(std::string_view bytes);
};

}  // namespace lht::pht
