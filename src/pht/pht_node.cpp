#include "pht/pht_node.h"

#include "common/codec.h"

namespace lht::pht {

std::string PhtNode::serialize() const {
  common::Encoder enc;
  enc.putU8(static_cast<common::u8>(kind));
  enc.putLabel(label);
  enc.putU32(static_cast<common::u32>(records.size()));
  for (const auto& r : records) {
    enc.putDouble(r.key);
    enc.putString(r.payload);
  }
  enc.putU8(prevLeaf.has_value() ? 1 : 0);
  if (prevLeaf) enc.putLabel(*prevLeaf);
  enc.putU8(nextLeaf.has_value() ? 1 : 0);
  if (nextLeaf) enc.putLabel(*nextLeaf);
  return std::move(enc).take();
}

std::optional<PhtNode> PhtNode::deserialize(std::string_view bytes) {
  common::Decoder dec(bytes);
  auto kind = dec.getU8();
  auto label = dec.getLabel();
  auto count = dec.getU32();
  if (!kind || !label || !count || *kind > 1) return std::nullopt;
  // Reject implausible record counts before reserving (corrupt values).
  if (*count > dec.remaining() / 12) return std::nullopt;
  PhtNode node;
  node.kind = static_cast<Kind>(*kind);
  node.label = *label;
  node.records.reserve(*count);
  for (common::u32 i = 0; i < *count; ++i) {
    auto key = dec.getDouble();
    auto payload = dec.getString();
    if (!key || !payload) return std::nullopt;
    node.records.push_back(index::Record{*key, std::move(*payload)});
  }
  auto hasPrev = dec.getU8();
  if (!hasPrev) return std::nullopt;
  if (*hasPrev) {
    auto l = dec.getLabel();
    if (!l) return std::nullopt;
    node.prevLeaf = *l;
  }
  auto hasNext = dec.getU8();
  if (!hasNext) return std::nullopt;
  if (*hasNext) {
    auto l = dec.getLabel();
    if (!l) return std::nullopt;
    node.nextLeaf = *l;
  }
  if (!dec.atEnd()) return std::nullopt;
  return node;
}

}  // namespace lht::pht
