#include "pht/pht_index.h"

#include <algorithm>

#include "common/types.h"

namespace lht::pht {

using common::checkInvariant;
using common::Interval;
using common::Label;
using common::u32;
using common::u64;

namespace {

PhtNode decodeNode(const dht::Value& v) {
  auto n = PhtNode::deserialize(v);
  checkInvariant(n.has_value(), "PhtIndex: corrupt node value in DHT");
  return std::move(*n);
}

}  // namespace

PhtIndex::PhtIndex(dht::Dht& dht, Options options) : dht_(dht), opts_(options) {
  checkInvariant(opts_.thetaSplit >= 2, "PhtIndex: thetaSplit must be >= 2");
  if (opts_.maxDepth > Label::kMaxBits) opts_.maxDepth = Label::kMaxBits;
  checkInvariant(opts_.maxDepth >= 2, "PhtIndex: maxDepth must be >= 2");
  if (opts_.mergeThreshold == 0) opts_.mergeThreshold = opts_.thetaSplit;
  PhtNode root;
  root.kind = PhtNode::Kind::Leaf;
  root.label = Label::root();
  dht_.storeDirect(root.label.str(), root.serialize());
}

std::optional<PhtNode> PhtIndex::getNode(const std::string& key, cost::OpStats& st) {
  st.dhtLookups += 1;
  auto v = dht_.get(key);
  if (!v) return std::nullopt;
  return decodeNode(*v);
}

bool PhtIndex::shouldSplit(const PhtNode& n) const {
  if (n.effectiveSize(opts_.countLabelSlot) < opts_.thetaSplit) return false;
  return n.label.length() < opts_.maxDepth;
}

// ---------------------------------------------------------------------------
// Lookup: binary search over all prefix lengths (log D)
// ---------------------------------------------------------------------------

PhtIndex::LookupOutcome PhtIndex::lookup(double key) {
  checkInvariant(key >= 0.0 && key <= 1.0, "PhtIndex::lookup: key outside [0,1]");
  LookupOutcome out;
  const Label mu = Label::fromKey(key, opts_.maxDepth);
  u32 lo = 1, hi = opts_.maxDepth;
  while (lo <= hi) {
    const u32 mid = (lo + hi) / 2;
    const Label x = mu.prefix(mid);
    auto node = getNode(x.str(), out.stats);
    if (!node) {
      if (mid == 1) break;  // not even the root: impossible in a live index
      hi = mid - 1;
    } else if (node->isLeaf()) {
      out.leaf = std::move(node);
      break;
    } else {
      lo = mid + 1;
    }
  }
  out.stats.parallelSteps = out.stats.dhtLookups;
  if (out.leaf) out.stats.bucketsTouched = 1;
  return out;
}

// ---------------------------------------------------------------------------
// Insert + split (Psi_PHT = theta i + 4 j)
// ---------------------------------------------------------------------------

index::UpdateResult PhtIndex::insert(const index::Record& record) {
  checkInvariant(record.key >= 0.0 && record.key <= 1.0,
                 "PhtIndex::insert: key outside [0,1]");
  auto found = lookup(record.key);
  checkInvariant(found.leaf.has_value(), "PhtIndex::insert: no covering leaf");

  index::UpdateResult result;
  result.ok = true;
  result.stats = found.stats;
  meters_.insertion.dhtLookups += found.stats.dhtLookups;

  // Ship the record; on saturation the leaf turns into an internal marker
  // *in place* (free) and both children are captured for re-keyed puts.
  std::optional<PhtNode> splitOld;
  dht_.apply(found.leaf->label.str(), [&](std::optional<dht::Value>& v) {
    checkInvariant(v.has_value(), "PhtIndex::insert: leaf vanished");
    PhtNode n = decodeNode(*v);
    checkInvariant(n.isLeaf(), "PhtIndex::insert: leaf became internal");
    n.records.push_back(record);
    if (shouldSplit(n)) {
      splitOld = n;  // full pre-split state (records + links)
      PhtNode marker;
      marker.kind = PhtNode::Kind::Internal;
      marker.label = n.label;
      v = marker.serialize();
    } else {
      v = n.serialize();
    }
  });
  meters_.insertion.dhtLookups += 1;
  meters_.insertion.recordsMoved += 1;
  result.stats.dhtLookups += 1;
  result.stats.parallelSteps += 1;
  recordCount_ += 1;

  if (splitOld) {
    const Label oldLabel = splitOld->label;
    const Interval iv = oldLabel.interval();
    const double mid = 0.5 * (iv.lo + iv.hi);

    PhtNode left, right;
    left.label = oldLabel.child(0);
    right.label = oldLabel.child(1);
    for (auto& r : splitOld->records) {
      (r.key < mid ? left : right).records.push_back(std::move(r));
    }
    left.prevLeaf = splitOld->prevLeaf;
    left.nextLeaf = right.label;
    right.prevLeaf = left.label;
    right.nextLeaf = splitOld->nextLeaf;

    // Both children land on fresh DHT keys: the whole bucket moves (theta
    // records, 2 DHT-lookups), then the two B+ neighbor links are patched
    // (up to 2 more DHT-lookups). This is Eq. 2's 4 j.
    const size_t moved = left.records.size() + right.records.size();
    dht_.put(left.label.str(), left.serialize());
    dht_.put(right.label.str(), right.serialize());
    meters_.maintenance.dhtLookups += 2;
    meters_.maintenance.recordsMoved += moved;

    if (splitOld->prevLeaf) {
      dht_.apply(splitOld->prevLeaf->str(), [&](std::optional<dht::Value>& v) {
        if (!v) return;  // tolerate a racing merge in churn tests
        PhtNode n = decodeNode(*v);
        n.nextLeaf = left.label;
        v = n.serialize();
      });
      meters_.maintenance.dhtLookups += 1;
    }
    if (splitOld->nextLeaf) {
      dht_.apply(splitOld->nextLeaf->str(), [&](std::optional<dht::Value>& v) {
        if (!v) return;
        PhtNode n = decodeNode(*v);
        n.prevLeaf = right.label;
        v = n.serialize();
      });
      meters_.maintenance.dhtLookups += 1;
    }
    meters_.maintenance.splits += 1;
    result.splitOrMerged = true;
  }
  return result;
}

// ---------------------------------------------------------------------------
// Erase + merge
// ---------------------------------------------------------------------------

index::UpdateResult PhtIndex::erase(double key) {
  checkInvariant(key >= 0.0 && key <= 1.0, "PhtIndex::erase: key outside [0,1]");
  auto found = lookup(key);
  checkInvariant(found.leaf.has_value(), "PhtIndex::erase: no covering leaf");

  index::UpdateResult result;
  result.stats = found.stats;
  meters_.insertion.dhtLookups += found.stats.dhtLookups;

  size_t removed = 0;
  size_t remainingEffective = 0;
  const Label leafLabel = found.leaf->label;
  dht_.apply(leafLabel.str(), [&](std::optional<dht::Value>& v) {
    checkInvariant(v.has_value(), "PhtIndex::erase: leaf vanished");
    PhtNode n = decodeNode(*v);
    auto it = std::remove_if(n.records.begin(), n.records.end(),
                             [&](const index::Record& r) { return r.key == key; });
    removed = static_cast<size_t>(n.records.end() - it);
    n.records.erase(it, n.records.end());
    remainingEffective = n.effectiveSize(opts_.countLabelSlot);
    v = n.serialize();
  });
  meters_.insertion.dhtLookups += 1;
  result.stats.dhtLookups += 1;
  result.stats.parallelSteps += 1;
  recordCount_ -= removed;
  result.ok = removed > 0;

  if (result.ok && opts_.enableMerge && leafLabel.length() >= 2 &&
      remainingEffective < opts_.mergeThreshold) {
    result.splitOrMerged = tryMerge(leafLabel);
  }
  return result;
}

bool PhtIndex::tryMerge(const Label& leafLabel) {
  const Label sib = leafLabel.sibling();
  cost::OpStats st;
  auto sibNode = getNode(sib.str(), st);
  auto ownNode = getNode(leafLabel.str(), st);
  meters_.maintenance.dhtLookups += st.dhtLookups;
  if (!sibNode || !sibNode->isLeaf() || !ownNode || !ownNode->isLeaf()) return false;

  const size_t combined = ownNode->records.size() + sibNode->records.size() +
                          (opts_.countLabelSlot ? 1 : 0);
  if (combined >= opts_.mergeThreshold) return false;

  const PhtNode& left = leafLabel.lastBit() == 0 ? *ownNode : *sibNode;
  const PhtNode& right = leafLabel.lastBit() == 0 ? *sibNode : *ownNode;

  // Rebuild the parent as a leaf holding everything, drop both children,
  // and patch the outer neighbor links. Both children's records move.
  PhtNode parent;
  parent.kind = PhtNode::Kind::Leaf;
  parent.label = leafLabel.parent();
  parent.records = left.records;
  parent.records.insert(parent.records.end(), right.records.begin(),
                        right.records.end());
  parent.prevLeaf = left.prevLeaf;
  parent.nextLeaf = right.nextLeaf;

  dht_.put(parent.label.str(), parent.serialize());
  dht_.remove(left.label.str());
  dht_.remove(right.label.str());
  meters_.maintenance.dhtLookups += 3;
  meters_.maintenance.recordsMoved += parent.records.size();

  if (parent.prevLeaf) {
    dht_.apply(parent.prevLeaf->str(), [&](std::optional<dht::Value>& v) {
      if (!v) return;
      PhtNode n = decodeNode(*v);
      n.nextLeaf = parent.label;
      v = n.serialize();
    });
    meters_.maintenance.dhtLookups += 1;
  }
  if (parent.nextLeaf) {
    dht_.apply(parent.nextLeaf->str(), [&](std::optional<dht::Value>& v) {
      if (!v) return;
      PhtNode n = decodeNode(*v);
      n.prevLeaf = parent.label;
      v = n.serialize();
    });
    meters_.maintenance.dhtLookups += 1;
  }
  meters_.maintenance.merges += 1;
  return true;
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

index::FindResult PhtIndex::find(double key) {
  checkInvariant(key >= 0.0 && key <= 1.0, "PhtIndex::find: key outside [0,1]");
  auto found = lookup(key);
  index::FindResult result;
  result.stats = found.stats;
  meters_.query.dhtLookups += found.stats.dhtLookups;
  if (found.leaf) {
    for (const auto& r : found.leaf->records) {
      if (r.key == key) {
        result.record = r;
        break;
      }
    }
  }
  return result;
}

index::RangeResult PhtIndex::rangeQuery(double lo, double hi) {
  return opts_.rangeMode == RangeMode::Sequential ? rangeSequential(lo, hi)
                                                  : rangeParallel(lo, hi);
}

index::RangeResult PhtIndex::rangeSequential(double lo, double hi) {
  index::RangeResult result;
  if (hi <= lo) return result;
  checkInvariant(lo >= 0.0 && hi <= 1.0, "PhtIndex::rangeSequential: bad bounds");

  // [16]: locate the leaf holding the lower bound, then walk the B+ links
  // rightward. Every hop is a dependent DHT-lookup, so latency equals
  // bandwidth — the order-of-magnitude latency gap of Fig. 10.
  auto found = lookup(lo);
  checkInvariant(found.leaf.has_value(), "rangeSequential: no covering leaf");
  result.stats = found.stats;
  std::optional<PhtNode> leaf = std::move(found.leaf);
  while (leaf) {
    result.stats.bucketsTouched += 1;
    for (const auto& r : leaf->records) {
      if (r.key >= lo && r.key < hi) result.records.push_back(r);
    }
    if (!leaf->nextLeaf || leaf->label.interval().hi >= hi) break;
    leaf = getNode(leaf->nextLeaf->str(), result.stats);
  }
  result.stats.parallelSteps = result.stats.dhtLookups;  // fully sequential
  meters_.query.dhtLookups += result.stats.dhtLookups;
  std::sort(result.records.begin(), result.records.end(), index::recordLess);
  return result;
}

Label PhtIndex::computeLca(const Interval& range) const {
  Label node = Label::root();
  while (node.length() < opts_.maxDepth) {
    const Interval iv = node.interval();
    const double mid = 0.5 * (iv.lo + iv.hi);
    if (range.hi <= mid) {
      node = node.child(0);
    } else if (range.lo >= mid) {
      node = node.child(1);
    } else {
      break;
    }
  }
  return node;
}

u64 PhtIndex::descend(const Label& label, const Interval& range,
                      std::vector<index::Record>& out, cost::OpStats& st) {
  auto node = getNode(label.str(), st);
  if (!node) return 1;  // subtree ends above this label
  if (node->isLeaf()) {
    st.bucketsTouched += 1;
    for (const auto& r : node->records) {
      if (range.contains(r.key)) out.push_back(r);
    }
    return 1;
  }
  // Internal marker: fan out to both children in parallel ([4]).
  u64 deepest = 0;
  for (int b = 0; b < 2; ++b) {
    const Label child = label.child(b);
    if (child.interval().overlaps(range)) {
      deepest = std::max(deepest, descend(child, range, out, st));
    }
  }
  return 1 + deepest;
}

index::RangeResult PhtIndex::rangeParallel(double lo, double hi) {
  index::RangeResult result;
  if (hi <= lo) return result;
  checkInvariant(lo >= 0.0 && hi <= 1.0, "PhtIndex::rangeParallel: bad bounds");
  const Interval range{lo, hi};
  const Label lca = computeLca(range);

  auto node = getNode(lca.str(), result.stats);
  u64 steps = 1;
  if (!node) {
    // The trie stops above the LCA: one leaf covers the whole range.
    auto found = lookup(lo);
    checkInvariant(found.leaf.has_value(), "rangeParallel: no covering leaf");
    result.stats.dhtLookups += found.stats.dhtLookups;
    steps += found.stats.parallelSteps;
    result.stats.bucketsTouched += 1;
    for (const auto& r : found.leaf->records) {
      if (range.contains(r.key)) result.records.push_back(r);
    }
  } else if (node->isLeaf()) {
    result.stats.bucketsTouched += 1;
    for (const auto& r : node->records) {
      if (range.contains(r.key)) result.records.push_back(r);
    }
  } else {
    u64 deepest = 0;
    for (int b = 0; b < 2; ++b) {
      const Label child = lca.child(b);
      if (child.interval().overlaps(range)) {
        deepest = std::max(deepest,
                           descend(child, range, result.records, result.stats));
      }
    }
    steps += deepest;
  }
  result.stats.parallelSteps = steps;
  meters_.query.dhtLookups += result.stats.dhtLookups;
  std::sort(result.records.begin(), result.records.end(), index::recordLess);
  return result;
}

index::FindResult PhtIndex::minRecord() {
  index::FindResult result;
  auto found = lookup(0.0);
  checkInvariant(found.leaf.has_value(), "minRecord: no leftmost leaf");
  result.stats = found.stats;
  std::optional<PhtNode> leaf = std::move(found.leaf);
  while (leaf && leaf->records.empty() && leaf->nextLeaf) {
    leaf = getNode(leaf->nextLeaf->str(), result.stats);
  }
  if (leaf) {
    const index::Record* best = nullptr;
    for (const auto& r : leaf->records) {
      if (best == nullptr || r.key < best->key) best = &r;
    }
    if (best != nullptr) result.record = *best;
  }
  result.stats.parallelSteps = result.stats.dhtLookups;
  meters_.query.dhtLookups += result.stats.dhtLookups;
  return result;
}

index::FindResult PhtIndex::maxRecord() {
  index::FindResult result;
  auto found = lookup(1.0);
  checkInvariant(found.leaf.has_value(), "maxRecord: no rightmost leaf");
  result.stats = found.stats;
  std::optional<PhtNode> leaf = std::move(found.leaf);
  while (leaf && leaf->records.empty() && leaf->prevLeaf) {
    leaf = getNode(leaf->prevLeaf->str(), result.stats);
  }
  if (leaf) {
    const index::Record* best = nullptr;
    for (const auto& r : leaf->records) {
      if (best == nullptr || r.key > best->key) best = &r;
    }
    if (best != nullptr) result.record = *best;
  }
  result.stats.parallelSteps = result.stats.dhtLookups;
  meters_.query.dhtLookups += result.stats.dhtLookups;
  return result;
}

void PhtIndex::forEachLeaf(const std::function<void(const PhtNode&)>& fn) {
  cost::OpStats scratch;
  auto found = lookup(0.0);
  checkInvariant(found.leaf.has_value(), "forEachLeaf: no leftmost leaf");
  std::optional<PhtNode> leaf = std::move(found.leaf);
  while (leaf) {
    fn(*leaf);
    if (!leaf->nextLeaf) break;
    leaf = getNode(leaf->nextLeaf->str(), scratch);
  }
}

}  // namespace lht::pht
