// PHT — the Prefix Hash Tree baseline ([16, 4]; paper Secs. 2, 8.2, 9).
//
// The state-of-the-art over-DHT index the paper compares against. Same
// space-partition trie as LHT, but mapped naively: every node (leaves *and*
// internal markers) sits in the DHT under its own label, and leaves keep
// B+-tree links to their neighbors. Consequences measured in the paper:
//
//  * a split re-keys both children, so both buckets move (theta records)
//    and the neighbor links must be patched: Psi_PHT = theta i + 4 j;
//  * lookup binary-searches all D prefix lengths: ~log D DHT-lookups;
//  * two range algorithms: PHT(sequential) [16] walks the leaf links
//    (near-optimal bandwidth, terrible latency) and PHT(parallel) [4]
//    fans out from the range's LCA through internal markers (good latency,
//    ~2x bandwidth).
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "common/label.h"
#include "dht/dht.h"
#include "index/ordered_index.h"
#include "pht/pht_node.h"

namespace lht::pht {

class PhtIndex final : public index::OrderedIndex {
 public:
  /// Which range-query algorithm rangeQuery() runs.
  enum class RangeMode { Sequential, Parallel };

  struct Options {
    common::u32 thetaSplit = 100;
    common::u32 maxDepth = 20;
    bool countLabelSlot = true;  ///< same capacity accounting as LhtIndex
    common::u32 mergeThreshold = 0;  ///< 0 selects "< thetaSplit"
    bool enableMerge = true;
    RangeMode rangeMode = RangeMode::Sequential;
  };

  PhtIndex(dht::Dht& dht, Options options);

  // OrderedIndex ------------------------------------------------------------
  index::UpdateResult insert(const index::Record& record) override;
  index::UpdateResult erase(double key) override;
  index::FindResult find(double key) override;
  index::RangeResult rangeQuery(double lo, double hi) override;
  index::FindResult minRecord() override;
  index::FindResult maxRecord() override;
  [[nodiscard]] size_t recordCount() const override { return recordCount_; }

  // PHT-specific ------------------------------------------------------------
  struct LookupOutcome {
    std::optional<PhtNode> leaf;
    cost::OpStats stats;
  };

  /// PHT binary-search lookup over prefix lengths 1..D (~log D lookups).
  LookupOutcome lookup(double key);

  /// Explicit-mode range queries (rangeQuery() dispatches on options).
  index::RangeResult rangeSequential(double lo, double hi);
  index::RangeResult rangeParallel(double lo, double hi);

  /// Visits every leaf left-to-right along the B+ links (tests only).
  void forEachLeaf(const std::function<void(const PhtNode&)>& fn);

  [[nodiscard]] const Options& options() const { return opts_; }

 private:
  std::optional<PhtNode> getNode(const std::string& key, cost::OpStats& st);
  [[nodiscard]] bool shouldSplit(const PhtNode& n) const;
  [[nodiscard]] common::Label computeLca(const common::Interval& range) const;
  bool tryMerge(const common::Label& leafLabel);

  /// Parallel descent for rangeParallel; returns the latency of the subtree.
  common::u64 descend(const common::Label& label, const common::Interval& range,
                      std::vector<index::Record>& out, cost::OpStats& st);

  dht::Dht& dht_;
  Options opts_;
  size_t recordCount_ = 0;
};

}  // namespace lht::pht
