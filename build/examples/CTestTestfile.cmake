# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_file_sharing "/root/repo/build/examples/file_sharing" "--files" "800")
set_tests_properties(example_file_sharing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_p2p_database "/root/repo/build/examples/p2p_database" "--rows" "800" "--churn" "6")
set_tests_properties(example_p2p_database PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_spatial_zorder "/root/repo/build/examples/spatial_zorder" "--points" "600")
set_tests_properties(example_spatial_zorder PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_substrate_comparison "/root/repo/build/examples/substrate_comparison" "--records" "800" "--peers" "24")
set_tests_properties(example_substrate_comparison PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_marketplace "/root/repo/build/examples/marketplace" "--listings" "800")
set_tests_properties(example_marketplace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
