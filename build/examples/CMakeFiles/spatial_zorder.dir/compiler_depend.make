# Empty compiler generated dependencies file for spatial_zorder.
# This may be replaced when dependencies are built.
