file(REMOVE_RECURSE
  "CMakeFiles/spatial_zorder.dir/spatial_zorder.cpp.o"
  "CMakeFiles/spatial_zorder.dir/spatial_zorder.cpp.o.d"
  "spatial_zorder"
  "spatial_zorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatial_zorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
