file(REMOVE_RECURSE
  "CMakeFiles/substrate_comparison.dir/substrate_comparison.cpp.o"
  "CMakeFiles/substrate_comparison.dir/substrate_comparison.cpp.o.d"
  "substrate_comparison"
  "substrate_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/substrate_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
