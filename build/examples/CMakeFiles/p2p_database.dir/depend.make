# Empty dependencies file for p2p_database.
# This may be replaced when dependencies are built.
