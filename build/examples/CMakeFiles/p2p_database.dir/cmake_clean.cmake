file(REMOVE_RECURSE
  "CMakeFiles/p2p_database.dir/p2p_database.cpp.o"
  "CMakeFiles/p2p_database.dir/p2p_database.cpp.o.d"
  "p2p_database"
  "p2p_database.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_database.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
