# Empty dependencies file for lht_db.
# This may be replaced when dependencies are built.
