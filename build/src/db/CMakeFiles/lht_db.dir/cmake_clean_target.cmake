file(REMOVE_RECURSE
  "liblht_db.a"
)
