file(REMOVE_RECURSE
  "CMakeFiles/lht_db.dir/table.cpp.o"
  "CMakeFiles/lht_db.dir/table.cpp.o.d"
  "liblht_db.a"
  "liblht_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lht_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
