# Empty dependencies file for lht_dht.
# This may be replaced when dependencies are built.
