file(REMOVE_RECURSE
  "CMakeFiles/lht_dht.dir/can.cpp.o"
  "CMakeFiles/lht_dht.dir/can.cpp.o.d"
  "CMakeFiles/lht_dht.dir/chord.cpp.o"
  "CMakeFiles/lht_dht.dir/chord.cpp.o.d"
  "CMakeFiles/lht_dht.dir/decorators.cpp.o"
  "CMakeFiles/lht_dht.dir/decorators.cpp.o.d"
  "CMakeFiles/lht_dht.dir/dht.cpp.o"
  "CMakeFiles/lht_dht.dir/dht.cpp.o.d"
  "CMakeFiles/lht_dht.dir/kademlia.cpp.o"
  "CMakeFiles/lht_dht.dir/kademlia.cpp.o.d"
  "CMakeFiles/lht_dht.dir/local_dht.cpp.o"
  "CMakeFiles/lht_dht.dir/local_dht.cpp.o.d"
  "CMakeFiles/lht_dht.dir/pastry.cpp.o"
  "CMakeFiles/lht_dht.dir/pastry.cpp.o.d"
  "liblht_dht.a"
  "liblht_dht.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lht_dht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
