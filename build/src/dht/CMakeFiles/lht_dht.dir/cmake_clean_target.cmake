file(REMOVE_RECURSE
  "liblht_dht.a"
)
