
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dht/can.cpp" "src/dht/CMakeFiles/lht_dht.dir/can.cpp.o" "gcc" "src/dht/CMakeFiles/lht_dht.dir/can.cpp.o.d"
  "/root/repo/src/dht/chord.cpp" "src/dht/CMakeFiles/lht_dht.dir/chord.cpp.o" "gcc" "src/dht/CMakeFiles/lht_dht.dir/chord.cpp.o.d"
  "/root/repo/src/dht/decorators.cpp" "src/dht/CMakeFiles/lht_dht.dir/decorators.cpp.o" "gcc" "src/dht/CMakeFiles/lht_dht.dir/decorators.cpp.o.d"
  "/root/repo/src/dht/dht.cpp" "src/dht/CMakeFiles/lht_dht.dir/dht.cpp.o" "gcc" "src/dht/CMakeFiles/lht_dht.dir/dht.cpp.o.d"
  "/root/repo/src/dht/kademlia.cpp" "src/dht/CMakeFiles/lht_dht.dir/kademlia.cpp.o" "gcc" "src/dht/CMakeFiles/lht_dht.dir/kademlia.cpp.o.d"
  "/root/repo/src/dht/local_dht.cpp" "src/dht/CMakeFiles/lht_dht.dir/local_dht.cpp.o" "gcc" "src/dht/CMakeFiles/lht_dht.dir/local_dht.cpp.o.d"
  "/root/repo/src/dht/pastry.cpp" "src/dht/CMakeFiles/lht_dht.dir/pastry.cpp.o" "gcc" "src/dht/CMakeFiles/lht_dht.dir/pastry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lht_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lht_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
