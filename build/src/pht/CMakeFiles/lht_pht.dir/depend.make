# Empty dependencies file for lht_pht.
# This may be replaced when dependencies are built.
