file(REMOVE_RECURSE
  "liblht_pht.a"
)
