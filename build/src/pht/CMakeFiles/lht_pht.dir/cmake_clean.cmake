file(REMOVE_RECURSE
  "CMakeFiles/lht_pht.dir/pht_index.cpp.o"
  "CMakeFiles/lht_pht.dir/pht_index.cpp.o.d"
  "CMakeFiles/lht_pht.dir/pht_node.cpp.o"
  "CMakeFiles/lht_pht.dir/pht_node.cpp.o.d"
  "liblht_pht.a"
  "liblht_pht.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lht_pht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
