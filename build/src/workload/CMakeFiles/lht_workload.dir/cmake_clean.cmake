file(REMOVE_RECURSE
  "CMakeFiles/lht_workload.dir/generators.cpp.o"
  "CMakeFiles/lht_workload.dir/generators.cpp.o.d"
  "CMakeFiles/lht_workload.dir/trace.cpp.o"
  "CMakeFiles/lht_workload.dir/trace.cpp.o.d"
  "liblht_workload.a"
  "liblht_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lht_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
