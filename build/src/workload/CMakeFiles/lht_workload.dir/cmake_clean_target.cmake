file(REMOVE_RECURSE
  "liblht_workload.a"
)
