# Empty dependencies file for lht_workload.
# This may be replaced when dependencies are built.
