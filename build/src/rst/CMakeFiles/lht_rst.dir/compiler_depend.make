# Empty compiler generated dependencies file for lht_rst.
# This may be replaced when dependencies are built.
