file(REMOVE_RECURSE
  "CMakeFiles/lht_rst.dir/rst_index.cpp.o"
  "CMakeFiles/lht_rst.dir/rst_index.cpp.o.d"
  "liblht_rst.a"
  "liblht_rst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lht_rst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
