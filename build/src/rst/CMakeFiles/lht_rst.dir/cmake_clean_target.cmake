file(REMOVE_RECURSE
  "liblht_rst.a"
)
