file(REMOVE_RECURSE
  "CMakeFiles/lht_lpr.dir/lpr_index.cpp.o"
  "CMakeFiles/lht_lpr.dir/lpr_index.cpp.o.d"
  "liblht_lpr.a"
  "liblht_lpr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lht_lpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
