
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lpr/lpr_index.cpp" "src/lpr/CMakeFiles/lht_lpr.dir/lpr_index.cpp.o" "gcc" "src/lpr/CMakeFiles/lht_lpr.dir/lpr_index.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lht_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/lht_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/lht_index.dir/DependInfo.cmake"
  "/root/repo/build/src/dht/CMakeFiles/lht_dht.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lht_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
