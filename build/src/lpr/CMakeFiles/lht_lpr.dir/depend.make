# Empty dependencies file for lht_lpr.
# This may be replaced when dependencies are built.
