file(REMOVE_RECURSE
  "liblht_lpr.a"
)
