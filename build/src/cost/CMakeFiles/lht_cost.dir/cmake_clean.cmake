file(REMOVE_RECURSE
  "CMakeFiles/lht_cost.dir/cost_model.cpp.o"
  "CMakeFiles/lht_cost.dir/cost_model.cpp.o.d"
  "CMakeFiles/lht_cost.dir/meter.cpp.o"
  "CMakeFiles/lht_cost.dir/meter.cpp.o.d"
  "liblht_cost.a"
  "liblht_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lht_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
