file(REMOVE_RECURSE
  "liblht_cost.a"
)
