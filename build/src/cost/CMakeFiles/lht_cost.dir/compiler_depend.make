# Empty compiler generated dependencies file for lht_cost.
# This may be replaced when dependencies are built.
