# Empty dependencies file for lht_core.
# This may be replaced when dependencies are built.
