file(REMOVE_RECURSE
  "CMakeFiles/lht_core.dir/bucket.cpp.o"
  "CMakeFiles/lht_core.dir/bucket.cpp.o.d"
  "CMakeFiles/lht_core.dir/lht_index.cpp.o"
  "CMakeFiles/lht_core.dir/lht_index.cpp.o.d"
  "CMakeFiles/lht_core.dir/local_tree.cpp.o"
  "CMakeFiles/lht_core.dir/local_tree.cpp.o.d"
  "CMakeFiles/lht_core.dir/naming.cpp.o"
  "CMakeFiles/lht_core.dir/naming.cpp.o.d"
  "CMakeFiles/lht_core.dir/tree_stats.cpp.o"
  "CMakeFiles/lht_core.dir/tree_stats.cpp.o.d"
  "CMakeFiles/lht_core.dir/zorder.cpp.o"
  "CMakeFiles/lht_core.dir/zorder.cpp.o.d"
  "liblht_core.a"
  "liblht_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lht_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
