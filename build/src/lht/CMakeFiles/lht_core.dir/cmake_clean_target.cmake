file(REMOVE_RECURSE
  "liblht_core.a"
)
