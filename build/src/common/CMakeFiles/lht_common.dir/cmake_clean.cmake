file(REMOVE_RECURSE
  "CMakeFiles/lht_common.dir/codec.cpp.o"
  "CMakeFiles/lht_common.dir/codec.cpp.o.d"
  "CMakeFiles/lht_common.dir/csv.cpp.o"
  "CMakeFiles/lht_common.dir/csv.cpp.o.d"
  "CMakeFiles/lht_common.dir/flags.cpp.o"
  "CMakeFiles/lht_common.dir/flags.cpp.o.d"
  "CMakeFiles/lht_common.dir/hash.cpp.o"
  "CMakeFiles/lht_common.dir/hash.cpp.o.d"
  "CMakeFiles/lht_common.dir/interval.cpp.o"
  "CMakeFiles/lht_common.dir/interval.cpp.o.d"
  "CMakeFiles/lht_common.dir/label.cpp.o"
  "CMakeFiles/lht_common.dir/label.cpp.o.d"
  "CMakeFiles/lht_common.dir/logging.cpp.o"
  "CMakeFiles/lht_common.dir/logging.cpp.o.d"
  "CMakeFiles/lht_common.dir/random.cpp.o"
  "CMakeFiles/lht_common.dir/random.cpp.o.d"
  "liblht_common.a"
  "liblht_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lht_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
