# Empty compiler generated dependencies file for lht_common.
# This may be replaced when dependencies are built.
