file(REMOVE_RECURSE
  "liblht_common.a"
)
