
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/codec.cpp" "src/common/CMakeFiles/lht_common.dir/codec.cpp.o" "gcc" "src/common/CMakeFiles/lht_common.dir/codec.cpp.o.d"
  "/root/repo/src/common/csv.cpp" "src/common/CMakeFiles/lht_common.dir/csv.cpp.o" "gcc" "src/common/CMakeFiles/lht_common.dir/csv.cpp.o.d"
  "/root/repo/src/common/flags.cpp" "src/common/CMakeFiles/lht_common.dir/flags.cpp.o" "gcc" "src/common/CMakeFiles/lht_common.dir/flags.cpp.o.d"
  "/root/repo/src/common/hash.cpp" "src/common/CMakeFiles/lht_common.dir/hash.cpp.o" "gcc" "src/common/CMakeFiles/lht_common.dir/hash.cpp.o.d"
  "/root/repo/src/common/interval.cpp" "src/common/CMakeFiles/lht_common.dir/interval.cpp.o" "gcc" "src/common/CMakeFiles/lht_common.dir/interval.cpp.o.d"
  "/root/repo/src/common/label.cpp" "src/common/CMakeFiles/lht_common.dir/label.cpp.o" "gcc" "src/common/CMakeFiles/lht_common.dir/label.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/common/CMakeFiles/lht_common.dir/logging.cpp.o" "gcc" "src/common/CMakeFiles/lht_common.dir/logging.cpp.o.d"
  "/root/repo/src/common/random.cpp" "src/common/CMakeFiles/lht_common.dir/random.cpp.o" "gcc" "src/common/CMakeFiles/lht_common.dir/random.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
