# Empty dependencies file for lht_dst.
# This may be replaced when dependencies are built.
