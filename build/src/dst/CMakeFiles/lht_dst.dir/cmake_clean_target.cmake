file(REMOVE_RECURSE
  "liblht_dst.a"
)
