file(REMOVE_RECURSE
  "CMakeFiles/lht_dst.dir/dst_index.cpp.o"
  "CMakeFiles/lht_dst.dir/dst_index.cpp.o.d"
  "liblht_dst.a"
  "liblht_dst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lht_dst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
