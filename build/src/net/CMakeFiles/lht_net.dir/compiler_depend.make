# Empty compiler generated dependencies file for lht_net.
# This may be replaced when dependencies are built.
