file(REMOVE_RECURSE
  "CMakeFiles/lht_net.dir/sim_network.cpp.o"
  "CMakeFiles/lht_net.dir/sim_network.cpp.o.d"
  "liblht_net.a"
  "liblht_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lht_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
