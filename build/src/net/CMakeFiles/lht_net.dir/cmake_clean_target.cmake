file(REMOVE_RECURSE
  "liblht_net.a"
)
