# Empty dependencies file for lht_sim.
# This may be replaced when dependencies are built.
