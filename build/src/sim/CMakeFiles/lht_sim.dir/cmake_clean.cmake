file(REMOVE_RECURSE
  "CMakeFiles/lht_sim.dir/churn.cpp.o"
  "CMakeFiles/lht_sim.dir/churn.cpp.o.d"
  "CMakeFiles/lht_sim.dir/experiment.cpp.o"
  "CMakeFiles/lht_sim.dir/experiment.cpp.o.d"
  "liblht_sim.a"
  "liblht_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lht_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
