file(REMOVE_RECURSE
  "liblht_sim.a"
)
