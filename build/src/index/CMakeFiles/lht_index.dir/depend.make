# Empty dependencies file for lht_index.
# This may be replaced when dependencies are built.
