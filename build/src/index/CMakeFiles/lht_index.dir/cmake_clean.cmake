file(REMOVE_RECURSE
  "CMakeFiles/lht_index.dir/reference_index.cpp.o"
  "CMakeFiles/lht_index.dir/reference_index.cpp.o.d"
  "liblht_index.a"
  "liblht_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lht_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
