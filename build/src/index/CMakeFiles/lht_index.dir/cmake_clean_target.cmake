file(REMOVE_RECURSE
  "liblht_index.a"
)
