# Empty dependencies file for lht_tests.
# This may be replaced when dependencies are built.
