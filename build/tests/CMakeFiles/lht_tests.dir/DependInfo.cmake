
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/can_test.cpp" "tests/CMakeFiles/lht_tests.dir/can_test.cpp.o" "gcc" "tests/CMakeFiles/lht_tests.dir/can_test.cpp.o.d"
  "/root/repo/tests/chord_replication_test.cpp" "tests/CMakeFiles/lht_tests.dir/chord_replication_test.cpp.o" "gcc" "tests/CMakeFiles/lht_tests.dir/chord_replication_test.cpp.o.d"
  "/root/repo/tests/chord_test.cpp" "tests/CMakeFiles/lht_tests.dir/chord_test.cpp.o" "gcc" "tests/CMakeFiles/lht_tests.dir/chord_test.cpp.o.d"
  "/root/repo/tests/chord_vnodes_test.cpp" "tests/CMakeFiles/lht_tests.dir/chord_vnodes_test.cpp.o" "gcc" "tests/CMakeFiles/lht_tests.dir/chord_vnodes_test.cpp.o.d"
  "/root/repo/tests/codec_test.cpp" "tests/CMakeFiles/lht_tests.dir/codec_test.cpp.o" "gcc" "tests/CMakeFiles/lht_tests.dir/codec_test.cpp.o.d"
  "/root/repo/tests/cost_model_test.cpp" "tests/CMakeFiles/lht_tests.dir/cost_model_test.cpp.o" "gcc" "tests/CMakeFiles/lht_tests.dir/cost_model_test.cpp.o.d"
  "/root/repo/tests/cross_substrate_churn_test.cpp" "tests/CMakeFiles/lht_tests.dir/cross_substrate_churn_test.cpp.o" "gcc" "tests/CMakeFiles/lht_tests.dir/cross_substrate_churn_test.cpp.o.d"
  "/root/repo/tests/csv_flags_test.cpp" "tests/CMakeFiles/lht_tests.dir/csv_flags_test.cpp.o" "gcc" "tests/CMakeFiles/lht_tests.dir/csv_flags_test.cpp.o.d"
  "/root/repo/tests/db_table_test.cpp" "tests/CMakeFiles/lht_tests.dir/db_table_test.cpp.o" "gcc" "tests/CMakeFiles/lht_tests.dir/db_table_test.cpp.o.d"
  "/root/repo/tests/decorators_test.cpp" "tests/CMakeFiles/lht_tests.dir/decorators_test.cpp.o" "gcc" "tests/CMakeFiles/lht_tests.dir/decorators_test.cpp.o.d"
  "/root/repo/tests/dst_index_test.cpp" "tests/CMakeFiles/lht_tests.dir/dst_index_test.cpp.o" "gcc" "tests/CMakeFiles/lht_tests.dir/dst_index_test.cpp.o.d"
  "/root/repo/tests/figure_regression_test.cpp" "tests/CMakeFiles/lht_tests.dir/figure_regression_test.cpp.o" "gcc" "tests/CMakeFiles/lht_tests.dir/figure_regression_test.cpp.o.d"
  "/root/repo/tests/hash_test.cpp" "tests/CMakeFiles/lht_tests.dir/hash_test.cpp.o" "gcc" "tests/CMakeFiles/lht_tests.dir/hash_test.cpp.o.d"
  "/root/repo/tests/index_conformance_test.cpp" "tests/CMakeFiles/lht_tests.dir/index_conformance_test.cpp.o" "gcc" "tests/CMakeFiles/lht_tests.dir/index_conformance_test.cpp.o.d"
  "/root/repo/tests/interval_test.cpp" "tests/CMakeFiles/lht_tests.dir/interval_test.cpp.o" "gcc" "tests/CMakeFiles/lht_tests.dir/interval_test.cpp.o.d"
  "/root/repo/tests/kademlia_test.cpp" "tests/CMakeFiles/lht_tests.dir/kademlia_test.cpp.o" "gcc" "tests/CMakeFiles/lht_tests.dir/kademlia_test.cpp.o.d"
  "/root/repo/tests/label_test.cpp" "tests/CMakeFiles/lht_tests.dir/label_test.cpp.o" "gcc" "tests/CMakeFiles/lht_tests.dir/label_test.cpp.o.d"
  "/root/repo/tests/lht_exhaustive_tree_test.cpp" "tests/CMakeFiles/lht_tests.dir/lht_exhaustive_tree_test.cpp.o" "gcc" "tests/CMakeFiles/lht_tests.dir/lht_exhaustive_tree_test.cpp.o.d"
  "/root/repo/tests/lht_extensions_test.cpp" "tests/CMakeFiles/lht_tests.dir/lht_extensions_test.cpp.o" "gcc" "tests/CMakeFiles/lht_tests.dir/lht_extensions_test.cpp.o.d"
  "/root/repo/tests/lht_growth_model_test.cpp" "tests/CMakeFiles/lht_tests.dir/lht_growth_model_test.cpp.o" "gcc" "tests/CMakeFiles/lht_tests.dir/lht_growth_model_test.cpp.o.d"
  "/root/repo/tests/lht_index_test.cpp" "tests/CMakeFiles/lht_tests.dir/lht_index_test.cpp.o" "gcc" "tests/CMakeFiles/lht_tests.dir/lht_index_test.cpp.o.d"
  "/root/repo/tests/lht_maintenance_test.cpp" "tests/CMakeFiles/lht_tests.dir/lht_maintenance_test.cpp.o" "gcc" "tests/CMakeFiles/lht_tests.dir/lht_maintenance_test.cpp.o.d"
  "/root/repo/tests/lht_quantile_snapshot_test.cpp" "tests/CMakeFiles/lht_tests.dir/lht_quantile_snapshot_test.cpp.o" "gcc" "tests/CMakeFiles/lht_tests.dir/lht_quantile_snapshot_test.cpp.o.d"
  "/root/repo/tests/lht_range_property_test.cpp" "tests/CMakeFiles/lht_tests.dir/lht_range_property_test.cpp.o" "gcc" "tests/CMakeFiles/lht_tests.dir/lht_range_property_test.cpp.o.d"
  "/root/repo/tests/lht_topk_test.cpp" "tests/CMakeFiles/lht_tests.dir/lht_topk_test.cpp.o" "gcc" "tests/CMakeFiles/lht_tests.dir/lht_topk_test.cpp.o.d"
  "/root/repo/tests/local_dht_test.cpp" "tests/CMakeFiles/lht_tests.dir/local_dht_test.cpp.o" "gcc" "tests/CMakeFiles/lht_tests.dir/local_dht_test.cpp.o.d"
  "/root/repo/tests/local_tree_test.cpp" "tests/CMakeFiles/lht_tests.dir/local_tree_test.cpp.o" "gcc" "tests/CMakeFiles/lht_tests.dir/local_tree_test.cpp.o.d"
  "/root/repo/tests/logging_test.cpp" "tests/CMakeFiles/lht_tests.dir/logging_test.cpp.o" "gcc" "tests/CMakeFiles/lht_tests.dir/logging_test.cpp.o.d"
  "/root/repo/tests/lpr_index_test.cpp" "tests/CMakeFiles/lht_tests.dir/lpr_index_test.cpp.o" "gcc" "tests/CMakeFiles/lht_tests.dir/lpr_index_test.cpp.o.d"
  "/root/repo/tests/naming_test.cpp" "tests/CMakeFiles/lht_tests.dir/naming_test.cpp.o" "gcc" "tests/CMakeFiles/lht_tests.dir/naming_test.cpp.o.d"
  "/root/repo/tests/paper_examples_test.cpp" "tests/CMakeFiles/lht_tests.dir/paper_examples_test.cpp.o" "gcc" "tests/CMakeFiles/lht_tests.dir/paper_examples_test.cpp.o.d"
  "/root/repo/tests/pastry_test.cpp" "tests/CMakeFiles/lht_tests.dir/pastry_test.cpp.o" "gcc" "tests/CMakeFiles/lht_tests.dir/pastry_test.cpp.o.d"
  "/root/repo/tests/pht_index_test.cpp" "tests/CMakeFiles/lht_tests.dir/pht_index_test.cpp.o" "gcc" "tests/CMakeFiles/lht_tests.dir/pht_index_test.cpp.o.d"
  "/root/repo/tests/random_test.cpp" "tests/CMakeFiles/lht_tests.dir/random_test.cpp.o" "gcc" "tests/CMakeFiles/lht_tests.dir/random_test.cpp.o.d"
  "/root/repo/tests/rst_index_test.cpp" "tests/CMakeFiles/lht_tests.dir/rst_index_test.cpp.o" "gcc" "tests/CMakeFiles/lht_tests.dir/rst_index_test.cpp.o.d"
  "/root/repo/tests/serialization_fuzz_test.cpp" "tests/CMakeFiles/lht_tests.dir/serialization_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/lht_tests.dir/serialization_fuzz_test.cpp.o.d"
  "/root/repo/tests/sim_network_test.cpp" "tests/CMakeFiles/lht_tests.dir/sim_network_test.cpp.o" "gcc" "tests/CMakeFiles/lht_tests.dir/sim_network_test.cpp.o.d"
  "/root/repo/tests/trace_test.cpp" "tests/CMakeFiles/lht_tests.dir/trace_test.cpp.o" "gcc" "tests/CMakeFiles/lht_tests.dir/trace_test.cpp.o.d"
  "/root/repo/tests/workload_test.cpp" "tests/CMakeFiles/lht_tests.dir/workload_test.cpp.o" "gcc" "tests/CMakeFiles/lht_tests.dir/workload_test.cpp.o.d"
  "/root/repo/tests/zorder_test.cpp" "tests/CMakeFiles/lht_tests.dir/zorder_test.cpp.o" "gcc" "tests/CMakeFiles/lht_tests.dir/zorder_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lht_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lht_net.dir/DependInfo.cmake"
  "/root/repo/build/src/dht/CMakeFiles/lht_dht.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/lht_index.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/lht_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/lht/CMakeFiles/lht_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pht/CMakeFiles/lht_pht.dir/DependInfo.cmake"
  "/root/repo/build/src/dst/CMakeFiles/lht_dst.dir/DependInfo.cmake"
  "/root/repo/build/src/rst/CMakeFiles/lht_rst.dir/DependInfo.cmake"
  "/root/repo/build/src/lpr/CMakeFiles/lht_lpr.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/lht_db.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/lht_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lht_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
