file(REMOVE_RECURSE
  "CMakeFiles/fig7_maintenance.dir/fig7_maintenance.cpp.o"
  "CMakeFiles/fig7_maintenance.dir/fig7_maintenance.cpp.o.d"
  "fig7_maintenance"
  "fig7_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
