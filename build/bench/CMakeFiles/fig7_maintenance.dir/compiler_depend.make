# Empty compiler generated dependencies file for fig7_maintenance.
# This may be replaced when dependencies are built.
