file(REMOVE_RECURSE
  "CMakeFiles/table_minmax.dir/table_minmax.cpp.o"
  "CMakeFiles/table_minmax.dir/table_minmax.cpp.o.d"
  "table_minmax"
  "table_minmax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_minmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
