# Empty compiler generated dependencies file for table_minmax.
# This may be replaced when dependencies are built.
