# Empty dependencies file for ablation_cascading.
# This may be replaced when dependencies are built.
