file(REMOVE_RECURSE
  "CMakeFiles/ablation_cascading.dir/ablation_cascading.cpp.o"
  "CMakeFiles/ablation_cascading.dir/ablation_cascading.cpp.o.d"
  "ablation_cascading"
  "ablation_cascading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cascading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
