file(REMOVE_RECURSE
  "CMakeFiles/fig6_alpha.dir/fig6_alpha.cpp.o"
  "CMakeFiles/fig6_alpha.dir/fig6_alpha.cpp.o.d"
  "fig6_alpha"
  "fig6_alpha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
