# Empty compiler generated dependencies file for fig6_alpha.
# This may be replaced when dependencies are built.
