file(REMOVE_RECURSE
  "CMakeFiles/table_load_balance.dir/table_load_balance.cpp.o"
  "CMakeFiles/table_load_balance.dir/table_load_balance.cpp.o.d"
  "table_load_balance"
  "table_load_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_load_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
