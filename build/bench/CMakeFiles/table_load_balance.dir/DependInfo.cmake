
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table_load_balance.cpp" "bench/CMakeFiles/table_load_balance.dir/table_load_balance.cpp.o" "gcc" "bench/CMakeFiles/table_load_balance.dir/table_load_balance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lht_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lht_net.dir/DependInfo.cmake"
  "/root/repo/build/src/dht/CMakeFiles/lht_dht.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/lht_index.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/lht_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/lht/CMakeFiles/lht_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pht/CMakeFiles/lht_pht.dir/DependInfo.cmake"
  "/root/repo/build/src/dst/CMakeFiles/lht_dst.dir/DependInfo.cmake"
  "/root/repo/build/src/rst/CMakeFiles/lht_rst.dir/DependInfo.cmake"
  "/root/repo/build/src/lpr/CMakeFiles/lht_lpr.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/lht_db.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/lht_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lht_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
