# Empty compiler generated dependencies file for fig8_lookup.
# This may be replaced when dependencies are built.
