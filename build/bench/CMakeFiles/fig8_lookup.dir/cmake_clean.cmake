file(REMOVE_RECURSE
  "CMakeFiles/fig8_lookup.dir/fig8_lookup.cpp.o"
  "CMakeFiles/fig8_lookup.dir/fig8_lookup.cpp.o.d"
  "fig8_lookup"
  "fig8_lookup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
