# Empty compiler generated dependencies file for ablation_lookup_depth.
# This may be replaced when dependencies are built.
