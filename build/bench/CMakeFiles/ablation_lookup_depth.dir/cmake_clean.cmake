file(REMOVE_RECURSE
  "CMakeFiles/ablation_lookup_depth.dir/ablation_lookup_depth.cpp.o"
  "CMakeFiles/ablation_lookup_depth.dir/ablation_lookup_depth.cpp.o.d"
  "ablation_lookup_depth"
  "ablation_lookup_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lookup_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
