file(REMOVE_RECURSE
  "CMakeFiles/ablation_dst.dir/ablation_dst.cpp.o"
  "CMakeFiles/ablation_dst.dir/ablation_dst.cpp.o.d"
  "ablation_dst"
  "ablation_dst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
