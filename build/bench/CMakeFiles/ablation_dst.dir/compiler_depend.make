# Empty compiler generated dependencies file for ablation_dst.
# This may be replaced when dependencies are built.
