file(REMOVE_RECURSE
  "CMakeFiles/table_saving_ratio.dir/table_saving_ratio.cpp.o"
  "CMakeFiles/table_saving_ratio.dir/table_saving_ratio.cpp.o.d"
  "table_saving_ratio"
  "table_saving_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_saving_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
