# Empty dependencies file for table_saving_ratio.
# This may be replaced when dependencies are built.
