file(REMOVE_RECURSE
  "CMakeFiles/fig9_range_bandwidth.dir/fig9_range_bandwidth.cpp.o"
  "CMakeFiles/fig9_range_bandwidth.dir/fig9_range_bandwidth.cpp.o.d"
  "fig9_range_bandwidth"
  "fig9_range_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_range_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
