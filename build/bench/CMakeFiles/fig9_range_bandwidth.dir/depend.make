# Empty dependencies file for fig9_range_bandwidth.
# This may be replaced when dependencies are built.
