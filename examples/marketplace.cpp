// Marketplace scenario for the table layer: listings with two indexed
// numeric attributes (price and seller rating), queried like a tiny SQL
// table — every selection is served by an LHT secondary index over one
// shared DHT.
//
//   ./examples/marketplace [--listings 4000]
#include <iomanip>
#include <iostream>

#include "common/flags.h"
#include "common/random.h"
#include "db/table.h"
#include "dht/chord.h"
#include "net/sim_network.h"

int main(int argc, char** argv) {
  using namespace lht;
  common::Flags flags("marketplace", "multi-attribute selections via db::Table");
  flags.define("listings", "4000", "listings inserted");
  flags.define("seed", "11", "rng seed");
  if (!flags.parse(argc, argv)) return 1;

  net::SimNetwork network;
  dht::ChordDht::Options dhtOpts;
  dhtOpts.initialPeers = 48;
  dht::ChordDht dht(network, dhtOpts);

  db::Table::Options opts;
  opts.indexedColumns = {"price", "rating"};
  opts.index.thetaSplit = 100;
  opts.index.maxDepth = 22;
  db::Table listings(dht, opts);

  // Prices in [1, 500] dollars, ratings in [0, 5] stars — normalized into
  // the paper's [0,1] key space per column.
  db::Normalizer price(1.0, 500.0);
  db::Normalizer rating(0.0, 5.0);

  common::Pcg32 rng(static_cast<common::u64>(flags.getInt("seed")));
  common::Gaussian priceDist(120.0, 60.0);
  const auto n = static_cast<size_t>(flags.getInt("listings"));
  for (size_t i = 0; i < n; ++i) {
    double p = priceDist.sample(rng);
    if (p < 1.0 || p > 500.0) p = 1.0 + 499.0 * rng.nextDouble();
    const double stars = 5.0 * rng.nextDouble();
    db::Row row;
    row.values["price"] = price.toKey(p);
    row.values["rating"] = rating.toKey(stars);
    row.payload = "listing-" + std::to_string(i);
    listings.insert(row);
  }
  std::cout << "marketplace holds " << listings.rowCount() << " listings ("
            << listings.indexedColumns().size() << " secondary indexes, one "
            << "shared Chord ring of " << network.peerCount() << " peers)\n\n";

  std::cout << std::fixed << std::setprecision(2);

  // SELECT * WHERE 50 <= price < 100.
  auto budget = listings.selectRange("price", price.toKey(50), price.toKey(100));
  std::cout << "price in [$50, $100): " << budget.rows.size() << " listings, "
            << budget.stats.dhtLookups << " DHT-lookups, "
            << budget.stats.parallelSteps << " parallel steps\n";

  // SELECT COUNT(*) WHERE rating >= 4.5.
  std::cout << "top-rated (>= 4.5 stars): "
            << listings.countRange("rating", rating.toKey(4.5), 1.0)
            << " listings\n";

  // SELECT MIN(price), MAX(rating) — one DHT-lookup each (Theorem 3).
  auto cheapest = listings.selectMin("price");
  auto best = listings.selectMax("rating");
  std::cout << "cheapest: " << cheapest->payload << " at $"
            << price.fromKey(cheapest->values.at("price")) << "\n";
  std::cout << "best-rated: " << best->payload << " with "
            << rating.fromKey(best->values.at("rating")) << " stars\n\n";

  // DELETE a listing by exact price, cleaning both indexes.
  const double victimKey = budget.rows.front().values.at("price");
  std::cout << "deleting " << listings.eraseWhere("price", victimKey)
            << " listing(s); table now " << listings.rowCount() << " rows\n";

  const auto& m = listings.indexOf("price").meters().maintenance;
  std::cout << "\nprice-index maintenance while loading: " << m.splits
            << " splits, " << m.dhtLookups << " DHT-lookups (one per split)\n";
  return 0;
}
