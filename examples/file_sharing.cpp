// File-sharing scenario from the paper's introduction: "find all MP3 files
// published between Jan. 1, 2007 and now" — a range query over publish
// timestamps in a P2P file-sharing network.
//
//   ./examples/file_sharing [--files 5000] [--peers 64]
//
// Publish timestamps are normalized into [0, 1] (the paper's data-key
// space); the demo publishes a synthetic catalogue, then answers several
// "published between ..." queries and compares LHT's cost with the PHT
// baseline on the identical catalogue.
#include <iostream>
#include <string>

#include "common/flags.h"
#include "common/random.h"
#include "dht/chord.h"
#include "lht/lht_index.h"
#include "net/sim_network.h"
#include "pht/pht_index.h"

namespace {

// The catalogue spans two years of publishes; day 0 = 2006-01-01.
constexpr double kDaysSpanned = 730.0;

double dayToKey(double day) { return day / kDaysSpanned; }

std::string describe(const lht::index::Record& r) {
  return r.payload + " (day " + std::to_string(static_cast<int>(r.key * kDaysSpanned)) + ")";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lht;
  common::Flags flags("file_sharing", "range queries over publish dates");
  flags.define("files", "5000", "number of published files");
  flags.define("peers", "64", "peers in the Chord ring");
  flags.define("seed", "1", "rng seed");
  if (!flags.parse(argc, argv)) return 1;

  net::SimNetwork network;
  dht::ChordDht::Options dhtOpts;
  dhtOpts.initialPeers = static_cast<size_t>(flags.getInt("peers"));
  dht::ChordDht dht(network, dhtOpts);

  core::LhtIndex::Options opts;
  opts.thetaSplit = 100;  // the paper's default
  opts.maxDepth = 20;
  core::LhtIndex index(dht, opts);

  // A PHT over its own identical substrate, for the cost comparison.
  net::SimNetwork network2;
  dht::ChordDht dht2(network2, dhtOpts);
  pht::PhtIndex::Options phtOpts;
  phtOpts.thetaSplit = 100;
  phtOpts.maxDepth = 20;
  phtOpts.rangeMode = pht::PhtIndex::RangeMode::Parallel;
  pht::PhtIndex baseline(dht2, phtOpts);

  // Publish: uploads cluster toward "now" (recent files dominate).
  const auto files = static_cast<size_t>(flags.getInt("files"));
  common::Pcg32 rng(static_cast<common::u64>(flags.getInt("seed")));
  for (size_t i = 0; i < files; ++i) {
    const double u = rng.nextDouble();
    const double day = kDaysSpanned * (1.0 - u * u);  // skew toward day 730
    index::Record rec{dayToKey(day), "track-" + std::to_string(i) + ".mp3"};
    index.insert(rec);
    baseline.insert(rec);
  }
  std::cout << "published " << index.recordCount() << " files across "
            << network.peerCount() << " peers\n\n";

  // "All MP3s published between Jan. 1, 2007 (day 365) and now."
  auto hits = index.rangeQuery(dayToKey(365), 1.0);
  std::cout << "since 2007-01-01: " << hits.records.size() << " files, "
            << hits.stats.dhtLookups << " DHT-lookups, "
            << hits.stats.parallelSteps << " parallel steps\n";
  std::cout << "  oldest match: " << describe(hits.records.front()) << "\n";
  std::cout << "  newest match: " << describe(hits.records.back()) << "\n\n";

  // A narrow window: one week in spring 2007.
  auto week = index.rangeQuery(dayToKey(455), dayToKey(462));
  std::cout << "one week window: " << week.records.size() << " files, "
            << week.stats.dhtLookups << " DHT-lookups\n\n";

  // Newest file overall = max query, one DHT-lookup (Theorem 3).
  auto newest = index.maxRecord();
  std::cout << "newest publish: " << describe(*newest.record) << " ("
            << newest.stats.dhtLookups << " DHT-lookup)\n\n";

  // Maintenance comparison on the identical catalogue (paper Fig. 7).
  const auto& ml = index.meters().maintenance;
  const auto& mp = baseline.meters().maintenance;
  std::cout << "maintenance while publishing (LHT vs PHT):\n"
            << "  records moved: " << ml.recordsMoved << " vs " << mp.recordsMoved
            << "\n  DHT-lookups:   " << ml.dhtLookups << " vs " << mp.dhtLookups
            << "\n";
  return 0;
}
