// Spatial scenario for the multi-dimensional extension (paper footnote 1):
// geo-tagged resources indexed through a Z-order curve over LHT, answering
// "everything inside this map tile" rectangle queries.
//
//   ./examples/spatial_zorder [--points 4000]
#include <iostream>

#include "common/flags.h"
#include "common/random.h"
#include "dht/local_dht.h"
#include "lht/zorder.h"

int main(int argc, char** argv) {
  using namespace lht;
  common::Flags flags("spatial_zorder", "2-D rectangle queries via Z-order LHT");
  flags.define("points", "4000", "geo points inserted");
  flags.define("seed", "5", "rng seed");
  if (!flags.parse(argc, argv)) return 1;

  dht::LocalDht dht;
  core::Lht2dIndex::Options opts;
  opts.lht.thetaSplit = 50;
  opts.lht.maxDepth = 26;
  opts.bitsPerDim = 12;
  core::Lht2dIndex map(dht, opts);

  // Synthetic city: two dense clusters plus background noise.
  const auto points = static_cast<size_t>(flags.getInt("points"));
  common::Pcg32 rng(static_cast<common::u64>(flags.getInt("seed")));
  common::Gaussian downtown(0.3, 0.05), harbor(0.75, 0.04);
  for (size_t i = 0; i < points; ++i) {
    double x, y;
    switch (rng.below(3)) {
      case 0:
        x = downtown.sample(rng);
        y = downtown.sample(rng);
        break;
      case 1:
        x = harbor.sample(rng);
        y = harbor.sample(rng);
        break;
      default:
        x = rng.nextDouble();
        y = rng.nextDouble();
    }
    if (x < 0 || x >= 1 || y < 0 || y >= 1) {
      x = rng.nextDouble();
      y = rng.nextDouble();
    }
    map.insert({x, y, "poi-" + std::to_string(i)});
  }
  std::cout << "indexed " << points << " geo points\n\n";

  const core::Rect tiles[] = {
      {0.25, 0.35, 0.25, 0.35},  // downtown tile
      {0.70, 0.80, 0.70, 0.80},  // harbor tile
      {0.45, 0.55, 0.45, 0.55},  // quiet midtown
      {0.00, 1.00, 0.48, 0.52},  // a thin horizontal strip
  };
  for (const auto& tile : tiles) {
    auto res = map.rectQuery(tile);
    std::cout << "rect [" << tile.xlo << "," << tile.xhi << ")x[" << tile.ylo
              << "," << tile.yhi << "): " << res.points.size() << " points via "
              << res.curveRanges << " curve ranges, " << res.stats.dhtLookups
              << " DHT-lookups, " << res.stats.parallelSteps
              << " parallel steps\n";
  }

  const auto& m = map.underlying().meters().maintenance;
  std::cout << "\nunderlying LHT: " << m.splits << " splits, one DHT-lookup each ("
            << m.dhtLookups << " total maintenance lookups)\n";
  return 0;
}
