// Quickstart: build an LHT index over a simulated Chord DHT, insert data,
// and run every query type the paper supports.
//
//   ./examples/quickstart
//
// This is the 5-minute tour of the public API; see file_sharing.cpp and
// p2p_database.cpp for domain scenarios.
#include <iostream>

#include "dht/chord.h"
#include "lht/lht_index.h"
#include "lht/local_tree.h"
#include "net/sim_network.h"

int main() {
  using namespace lht;

  // 1. A simulated network of 32 peers running a Chord ring.
  net::SimNetwork network;
  dht::ChordDht::Options dhtOpts;
  dhtOpts.initialPeers = 32;
  dht::ChordDht dht(network, dhtOpts);

  // 2. An LHT index on top. theta_split = 8 keeps the tree small enough to
  //    watch it grow; D = 20 matches the paper's lookup experiments.
  core::LhtIndex::Options opts;
  opts.thetaSplit = 8;
  opts.maxDepth = 20;
  core::LhtIndex index(dht, opts);

  // 3. Insert a handful of records (keys must lie in [0, 1]).
  for (int i = 0; i < 100; ++i) {
    const double key = (i * 37 % 100) / 100.0;
    index.insert({key, "item-" + std::to_string(i)});
  }
  std::cout << "indexed " << index.recordCount() << " records\n";

  // 4. Exact-match query (paper Sec. 5).
  auto hit = index.find(0.37);
  std::cout << "find(0.37): "
            << (hit.record ? hit.record->payload : std::string("<none>"))
            << " in " << hit.stats.dhtLookups << " DHT-lookups\n";

  // 5. Range query (paper Sec. 6): near-optimal B+3 lookups, parallel fan-out.
  auto range = index.rangeQuery(0.25, 0.40);
  std::cout << "range [0.25, 0.40): " << range.records.size() << " records, "
            << range.stats.dhtLookups << " DHT-lookups, "
            << range.stats.parallelSteps << " parallel steps\n";

  // 6. Min/max queries (paper Sec. 7, Theorem 3): one DHT-lookup each.
  std::cout << "min key: " << index.minRecord().record->key
            << "  max key: " << index.maxRecord().record->key << "\n";

  // 7. Peek at the machinery: the tree structure every leaf can infer
  //    locally from nothing but its own label (paper Sec. 3.3).
  auto lk = index.lookup(0.37);
  std::cout << core::LocalTree(lk.bucket->label).render();

  // 8. Maintenance accounting (paper Sec. 8): splits cost one DHT-lookup
  //    and ~theta/2 record moves each.
  const auto& m = index.meters().maintenance;
  std::cout << "maintenance: " << m.splits << " splits, " << m.dhtLookups
            << " DHT-lookups, " << m.recordsMoved << " records moved\n";
  std::cout << "chord traffic: " << network.stats().messages << " messages, "
            << network.stats().bytes << " bytes\n";
  return 0;
}
