// P2P database scenario (paper Sec. 3.1): tuples indexed by a numeric
// candidate key, with min/max aggregation queries and peer churn while the
// database stays online.
//
//   ./examples/p2p_database [--rows 3000] [--peers 48] [--churn 20]
//
// Demonstrates: insert/erase under churn (Chord hands keys off on
// join/leave, the index never notices), exact-match point reads, min/max
// (Theorem 3), and deletion-driven tree shrinking via merges.
#include <iomanip>
#include <iostream>

#include "common/flags.h"
#include "common/random.h"
#include "dht/chord.h"
#include "lht/lht_index.h"
#include "net/sim_network.h"

int main(int argc, char** argv) {
  using namespace lht;
  common::Flags flags("p2p_database", "min/max + churn over a P2P table");
  flags.define("rows", "3000", "tuples inserted");
  flags.define("peers", "48", "initial Chord peers");
  flags.define("churn", "20", "join/leave events during the run");
  flags.define("seed", "7", "rng seed");
  if (!flags.parse(argc, argv)) return 1;

  net::SimNetwork network;
  dht::ChordDht::Options dhtOpts;
  dhtOpts.initialPeers = static_cast<size_t>(flags.getInt("peers"));
  dhtOpts.seed = static_cast<common::u64>(flags.getInt("seed"));
  dht::ChordDht dht(network, dhtOpts);

  core::LhtIndex::Options opts;
  opts.thetaSplit = 50;
  opts.maxDepth = 22;
  core::LhtIndex table(dht, opts);

  // The table: accounts with normalized balances as the data key.
  const auto rows = static_cast<size_t>(flags.getInt("rows"));
  const auto churnEvents = static_cast<size_t>(flags.getInt("churn"));
  common::Pcg32 rng(dhtOpts.seed);
  std::vector<double> keys;
  keys.reserve(rows);
  size_t churned = 0;
  for (size_t i = 0; i < rows; ++i) {
    const double balance = rng.nextDouble();
    keys.push_back(balance);
    table.insert({balance, "account-" + std::to_string(i)});
    // Peers come and go mid-load; the over-DHT index requires no repair.
    if (churnEvents > 0 && i % (rows / churnEvents + 1) == rows / (2 * churnEvents)) {
      if (rng.below(2) == 0) {
        dht.join("joiner-" + std::to_string(i));
      } else if (dht.nodeIds().size() > 4) {
        auto ids = dht.nodeIds();
        dht.leave(ids[rng.below(static_cast<common::u32>(ids.size()))]);
      }
      ++churned;
    }
  }
  std::cout << "loaded " << table.recordCount() << " rows; " << churned
            << " churn events; ring consistent: " << std::boolalpha
            << dht.checkRing() << "\n\n";

  // Aggregations: SELECT MIN(balance), MAX(balance) — one DHT-lookup each.
  auto mn = table.minRecord();
  auto mx = table.maxRecord();
  std::cout << std::fixed << std::setprecision(6);
  std::cout << "MIN(balance) = " << mn.record->key << " [" << mn.record->payload
            << "], " << mn.stats.dhtLookups << " DHT-lookup\n";
  std::cout << "MAX(balance) = " << mx.record->key << " [" << mx.record->payload
            << "], " << mx.stats.dhtLookups << " DHT-lookup\n\n";

  // Point read.
  auto probe = table.find(keys[rows / 2]);
  std::cout << "point read: " << probe.record->payload << " in "
            << probe.stats.dhtLookups << " DHT-lookups\n\n";

  // DELETE half the rows; merges shrink the tree (dual of splits).
  for (size_t i = 0; i < rows; i += 2) table.erase(keys[i]);
  const auto& m = table.meters().maintenance;
  std::cout << "after deleting half: " << table.recordCount() << " rows, "
            << m.splits << " splits, " << m.merges << " merges\n";

  // Storage load balance across peers (DHT hashing at work).
  size_t maxKeys = 0, totalKeys = 0;
  for (auto id : dht.nodeIds()) {
    maxKeys = std::max(maxKeys, dht.keysOn(id));
    totalKeys += dht.keysOn(id);
  }
  std::cout << "bucket placement: " << totalKeys << " buckets over "
            << dht.nodeIds().size() << " peers (max on one peer: " << maxKeys
            << ")\n";
  return 0;
}
