// Substrate independence demo (paper Sec. 1: LHT "is adaptable to any DHT
// substrates"): the *identical* index code runs over four substrates —
// LocalDht, a Chord ring, a Kademlia XOR space, and a Pastry prefix mesh —
// producing identical query answers while each substrate pays its own
// routing bill.
//
//   ./examples/substrate_comparison [--records 3000] [--peers 64]
#include <iomanip>
#include <iostream>

#include "common/flags.h"
#include "common/random.h"
#include "dht/can.h"
#include "dht/chord.h"
#include "dht/kademlia.h"
#include "dht/local_dht.h"
#include "dht/pastry.h"
#include "lht/lht_index.h"
#include "net/sim_network.h"
#include "workload/generators.h"

namespace {

struct RunResult {
  size_t rangeRecords = 0;
  double minKey = 0.0;
  lht::common::u64 dhtLookups = 0;
  lht::common::u64 hops = 0;
  lht::common::u64 messages = 0;
};

RunResult runWorkload(lht::dht::Dht& dht, const lht::net::SimNetwork* net,
                      const std::vector<lht::index::Record>& data) {
  lht::core::LhtIndex index(dht, {.thetaSplit = 100, .maxDepth = 22});
  for (const auto& r : data) index.insert(r);
  RunResult out;
  out.rangeRecords = index.rangeQuery(0.3, 0.7).records.size();
  out.minKey = index.minRecord().record->key;
  out.dhtLookups = dht.stats().lookups;
  out.hops = dht.stats().hops;
  out.messages = net != nullptr ? lht::common::u64(net->stats().messages) : 0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lht;
  common::Flags flags("substrate_comparison", "one index, four substrates");
  flags.define("records", "3000", "records inserted per substrate");
  flags.define("peers", "64", "peers per simulated substrate");
  if (!flags.parse(argc, argv)) return 1;
  const auto peers = static_cast<size_t>(flags.getInt("peers"));
  auto data = workload::makeDataset(workload::Distribution::Uniform,
                                    static_cast<size_t>(flags.getInt("records")), 42);

  dht::LocalDht local;
  RunResult rLocal = runWorkload(local, nullptr, data);

  net::SimNetwork chordNet;
  dht::ChordDht chord(chordNet, {.initialPeers = peers});
  RunResult rChord = runWorkload(chord, &chordNet, data);

  net::SimNetwork kadNet;
  dht::KademliaDht::Options kopts;
  kopts.initialPeers = peers;
  dht::KademliaDht kad(kadNet, kopts);
  RunResult rKad = runWorkload(kad, &kadNet, data);

  net::SimNetwork pastryNet;
  dht::PastryDht::Options popts;
  popts.initialPeers = peers;
  dht::PastryDht pastry(pastryNet, popts);
  RunResult rPastry = runWorkload(pastry, &pastryNet, data);

  net::SimNetwork canNet;
  dht::CanDht::Options copts;
  copts.initialPeers = peers;
  dht::CanDht can(canNet, copts);
  RunResult rCan = runWorkload(can, &canNet, data);

  std::cout << "same dataset, same LHT code, five substrates (" << peers
            << " peers each):\n\n";
  std::cout << std::left << std::setw(10) << "substrate" << std::right
            << std::setw(14) << "DHT-lookups" << std::setw(12) << "hops"
            << std::setw(12) << "hops/op" << std::setw(12) << "messages"
            << std::setw(14) << "range hits" << std::setw(10) << "min key"
            << "\n";
  auto print = [](const char* name, const RunResult& r) {
    std::cout << std::left << std::setw(10) << name << std::right
              << std::setw(14) << r.dhtLookups << std::setw(12) << r.hops
              << std::setw(12) << std::fixed << std::setprecision(2)
              << static_cast<double>(r.hops) / static_cast<double>(r.dhtLookups)
              << std::setw(12) << r.messages << std::setw(14) << r.rangeRecords
              << std::setw(10) << std::setprecision(4) << r.minKey << "\n";
  };
  print("local", rLocal);
  print("chord", rChord);
  print("kademlia", rKad);
  print("pastry", rPastry);
  print("can-2d", rCan);

  const bool agree = rLocal.rangeRecords == rChord.rangeRecords &&
                     rChord.rangeRecords == rKad.rangeRecords &&
                     rKad.rangeRecords == rPastry.rangeRecords &&
                     rPastry.rangeRecords == rCan.rangeRecords &&
                     rLocal.minKey == rPastry.minKey &&
                     rLocal.minKey == rCan.minKey;
  std::cout << "\nall substrates return identical answers: "
            << (agree ? "yes" : "NO") << "\n";
  std::cout << "DHT-lookup counts are identical by design (the index only "
               "sees put/get); only the routing cost per lookup differs.\n";
  return agree ? 0 : 1;
}
