// Ablation (paper Sec. 5 complexity claim): LHT's binary search over
// candidate *names* costs ~log2(D/2) DHT-lookups, vs ~log2(D) for PHT's
// binary search over all prefix lengths, vs ~D/2 for a naive linear descent
// over distinct names. Sweeps the a-priori depth parameter D.
#include <iostream>

#include "common/csv.h"
#include <cmath>
#include "common/flags.h"
#include "common/random.h"
#include "dht/local_dht.h"
#include "lht/lht_index.h"
#include "pht/pht_index.h"
#include "workload/generators.h"

using namespace lht;

int main(int argc, char** argv) {
  common::Flags flags("ablation_lookup_depth",
                      "lookup cost vs D: binary vs linear vs PHT");
  flags.define("datasize", "16384", "records inserted");
  flags.define("queries", "500", "lookups measured per configuration");
  flags.define("csv", "false", "emit CSV instead of a pretty table");
  if (!flags.parse(argc, argv)) return 1;
  const auto n = static_cast<size_t>(flags.getInt("datasize"));
  const auto queries = static_cast<size_t>(flags.getInt("queries"));

  common::Table t({"D", "lht_binary", "lht_hinted", "lht_linear", "pht_binary",
                   "log2_D_half", "log2_D"});
  for (common::u32 depth : {12u, 16u, 20u, 28u, 36u, 48u}) {
    dht::LocalDht d1, d2, d3;
    core::LhtIndex::Options lo;
    lo.thetaSplit = 100;
    lo.maxDepth = depth;
    core::LhtIndex lht(d1, lo);
    lo.useDepthHint = true;
    core::LhtIndex hinted(d3, lo);
    pht::PhtIndex::Options po;
    po.thetaSplit = 100;
    po.maxDepth = depth;
    pht::PhtIndex pht(d2, po);

    auto data = workload::makeDataset(workload::Distribution::Uniform, n, 1);
    for (const auto& r : data) {
      lht.insert(r);
      hinted.insert(r);
      pht.insert(r);
    }
    common::Pcg32 rng(99);
    double bin = 0, hint = 0, lin = 0, phtCost = 0;
    for (size_t q = 0; q < queries; ++q) {
      const double key = rng.nextDouble();
      bin += static_cast<double>(lht.lookup(key).stats.dhtLookups);
      hint += static_cast<double>(hinted.lookup(key).stats.dhtLookups);
      lin += static_cast<double>(lht.lookupLinear(key).stats.dhtLookups);
      phtCost += static_cast<double>(pht.lookup(key).stats.dhtLookups);
    }
    const double qd = static_cast<double>(queries);
    t.row()
        .add(static_cast<common::i64>(depth))
        .add(bin / qd)
        .add(hint / qd)
        .add(lin / qd)
        .add(phtCost / qd)
        .add(std::log2(depth / 2.0))
        .add(std::log2(static_cast<double>(depth)));
  }
  if (flags.getBool("csv")) {
    t.printCsv(std::cout);
  } else {
    t.printPretty(std::cout,
                  "Ablation: avg DHT-lookups per lookup vs a-priori depth D");
  }
  std::cout << "\npaper claim: LHT binary ~ log2(D/2) < PHT ~ log2(D); the "
               "linear strategy shows what the binary search buys\n";
  return 0;
}
