// Emits BENCH_PR5.json: the cost of durability (DESIGN.md §11).
//
// Three insert configurations over the same workload, same sharded table:
//   mem                — MemEngine, the volatile baseline.
//   durable_buffered   — DurableEngine with syncEachCommit=false: every put
//                        is written to the WAL before the table changes,
//                        but fsync happens on sync()/rotation (one group
//                        commit per segment). This is the mode the ≤2.5x
//                        overhead gate applies to; an fsync per single-
//                        threaded put would measure the disk, not the WAL.
//   durable_synced     — syncEachCommit=true driven by many threads, so
//                        concurrent puts share fsyncs (the group-commit
//                        leader/waiter protocol). Reported per-op cost
//                        shows the amortization; not part of the gate.
//
// Plus a recovery-time curve: populate N records, close, time a cold
// reopen — once with the whole history in the WAL (replay-bound) and once
// after compact() (snapshot-bound, near-empty log).
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/random.h"
#include "store/durable_engine.h"
#include "store/mem_engine.h"

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;
using lht::common::u64;

struct Config {
  size_t n = 20000;          // puts per insert configuration
  size_t valueBytes = 128;   // payload size (below any spill threshold)
  size_t threads = 8;        // writers for the group-commit configuration
  u64 seed = 1;
  std::string dir;           // scratch root
};

std::vector<std::pair<std::string, std::string>> makeWorkload(
    const Config& cfg) {
  lht::common::Pcg32 rng(cfg.seed, /*stream=*/0xD15Cull);
  std::vector<std::pair<std::string, std::string>> kvs;
  kvs.reserve(cfg.n);
  for (size_t i = 0; i < cfg.n; ++i) {
    std::string value(cfg.valueBytes, ' ');
    for (auto& c : value) c = static_cast<char>('a' + rng.below(26));
    kvs.emplace_back("bucket/" + std::to_string(rng.next()) + "/" +
                         std::to_string(i),
                     std::move(value));
  }
  return kvs;
}

double nsPerOp(Clock::time_point t0, Clock::time_point t1, size_t ops) {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                 .count()) /
         static_cast<double>(ops);
}

/// Single-threaded puts into `engine`; returns ns per put.
double measurePuts(lht::store::StorageEngine& engine,
                   const std::vector<std::pair<std::string, std::string>>& kvs) {
  const auto t0 = Clock::now();
  for (const auto& [k, v] : kvs) engine.put(k, v);
  engine.sync();
  const auto t1 = Clock::now();
  return nsPerOp(t0, t1, kvs.size());
}

/// `threads` writers splitting the workload; returns wall-clock ns per put.
double measurePutsThreaded(
    lht::store::StorageEngine& engine,
    const std::vector<std::pair<std::string, std::string>>& kvs,
    size_t threads) {
  const auto t0 = Clock::now();
  std::vector<std::thread> pool;
  for (size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      for (size_t i = t; i < kvs.size(); i += threads) {
        engine.put(kvs[i].first, kvs[i].second);
      }
    });
  }
  for (auto& th : pool) th.join();
  const auto t1 = Clock::now();
  return nsPerOp(t0, t1, kvs.size());
}

lht::store::DurableOptions durableOpts(const std::string& dir,
                                       bool syncEachCommit) {
  lht::store::DurableOptions o;
  o.dir = dir;
  o.syncEachCommit = syncEachCommit;
  o.physicalFsync = true;
  return o;
}

struct RecoveryPoint {
  size_t records = 0;
  double replayMs = 0;          // reopen with the history in the WAL
  u64 replayedRecords = 0;
  double snapshotMs = 0;        // reopen after compact()
  u64 snapshotReplayed = 0;
};

RecoveryPoint measureRecovery(const Config& cfg, size_t records) {
  RecoveryPoint out;
  out.records = records;
  lht::common::Pcg32 rng(cfg.seed ^ records, /*stream=*/0x5EC0ull);
  const std::string dir = cfg.dir + "/recovery_" + std::to_string(records);
  fs::remove_all(dir);

  {
    lht::store::DurableEngine engine(durableOpts(dir, false));
    std::string value(cfg.valueBytes, 'r');
    for (size_t i = 0; i < records; ++i) {
      engine.put("rec/" + std::to_string(rng.next()), value);
    }
    engine.sync();
  }
  {
    const auto t0 = Clock::now();
    lht::store::DurableEngine engine(durableOpts(dir, false));
    const auto t1 = Clock::now();
    out.replayMs =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
                .count()) /
        1000.0;
    out.replayedRecords = engine.recoveryInfo().replayedRecords;
    if (engine.size() != records) {
      std::cerr << "bench_durability: recovery lost records\n";
      std::exit(1);
    }
    engine.compact();
  }
  {
    const auto t0 = Clock::now();
    lht::store::DurableEngine engine(durableOpts(dir, false));
    const auto t1 = Clock::now();
    out.snapshotMs =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
                .count()) /
        1000.0;
    out.snapshotReplayed = engine.recoveryInfo().replayedRecords;
  }
  fs::remove_all(dir);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  lht::common::Flags flags(
      "bench_durability",
      "Emits BENCH_PR5.json: MemEngine vs DurableEngine insert cost and "
      "the crash-recovery time curve");
  flags.define("n", "20000", "puts per engine configuration");
  flags.define("value-bytes", "128", "payload bytes per record");
  flags.define("threads", "8", "writers for the group-commit configuration");
  flags.define("seed", "1", "workload seed");
  flags.define("dir", "", "scratch directory (empty = system temp)");
  flags.define("out", "BENCH_PR5.json", "output path");
  if (!flags.parse(argc, argv)) return 1;

  Config cfg;
  cfg.n = static_cast<size_t>(flags.getInt("n"));
  cfg.valueBytes = static_cast<size_t>(flags.getInt("value-bytes"));
  cfg.threads = static_cast<size_t>(flags.getInt("threads"));
  cfg.seed = static_cast<u64>(flags.getInt("seed"));
  cfg.dir = flags.getString("dir");
  if (cfg.dir.empty()) {
    cfg.dir = (fs::temp_directory_path() / "lht_bench_durability").string();
  }
  fs::remove_all(cfg.dir);
  fs::create_directories(cfg.dir);

  const auto kvs = makeWorkload(cfg);

  double memNs = 0;
  {
    lht::store::MemEngine engine;
    memNs = measurePuts(engine, kvs);
  }
  double bufferedNs = 0;
  {
    lht::store::DurableEngine engine(
        durableOpts(cfg.dir + "/buffered", /*syncEachCommit=*/false));
    bufferedNs = measurePuts(engine, kvs);
  }
  double syncedNs = 0;
  u64 syncedFsyncShare = 0;
  {
    lht::store::DurableEngine engine(
        durableOpts(cfg.dir + "/synced", /*syncEachCommit=*/true));
    syncedNs = measurePutsThreaded(engine, kvs, cfg.threads);
    syncedFsyncShare = engine.durableLsn();  // every put became durable
  }

  const double overhead = bufferedNs / memNs;

  std::vector<RecoveryPoint> curve;
  for (size_t records : {size_t{1000}, size_t{10000}, size_t{50000}}) {
    curve.push_back(measureRecovery(cfg, records));
  }
  fs::remove_all(cfg.dir);

  std::ostringstream os;
  os.precision(6);
  os << "{\n"
     << "  \"bench\": \"lht_durability\",\n"
     << "  \"config\": {\"n\": " << cfg.n
     << ", \"value_bytes\": " << cfg.valueBytes
     << ", \"threads\": " << cfg.threads << ", \"seed\": " << cfg.seed
     << "},\n"
     << "  \"insert\": {\n"
     << "    \"mem_ns_per_op\": " << memNs << ",\n"
     << "    \"durable_buffered_ns_per_op\": " << bufferedNs << ",\n"
     << "    \"durable_synced_group_commit_ns_per_op\": " << syncedNs
     << ",\n"
     << "    \"durable_synced_ops_made_durable\": " << syncedFsyncShare
     << ",\n"
     << "    \"buffered_overhead_vs_mem\": " << overhead << ",\n"
     << "    \"overhead_gate\": 2.5,\n"
     << "    \"overhead_gate_passed\": "
     << (overhead <= 2.5 ? "true" : "false") << ",\n"
     << "    \"note\": \"buffered = WAL written per put, fsync on "
        "sync/rotation (the gated mode); synced = fsync-per-commit shared "
        "across "
     << cfg.threads << " writer threads via group commit\"\n"
     << "  },\n"
     << "  \"recovery\": [\n";
  for (size_t i = 0; i < curve.size(); ++i) {
    const auto& p = curve[i];
    os << "    {\"records\": " << p.records
       << ", \"wal_replay_ms\": " << p.replayMs
       << ", \"replayed_records\": " << p.replayedRecords
       << ", \"post_snapshot_ms\": " << p.snapshotMs
       << ", \"post_snapshot_replayed\": " << p.snapshotReplayed << "}"
       << (i + 1 < curve.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";

  const std::string outPath = flags.getString("out");
  std::ofstream out(outPath);
  if (!out) {
    std::cerr << "bench_durability: cannot write " << outPath << "\n";
    return 1;
  }
  out << os.str();
  std::cout << os.str();
  if (overhead > 2.5) {
    std::cerr << "bench_durability: WARNING buffered overhead " << overhead
              << "x exceeds the 2.5x gate\n";
  }
  return 0;
}
