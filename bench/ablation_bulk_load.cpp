// Ablation (extension): bulk loading vs record-at-a-time insertion.
//
// insertBatch sorts the batch and pays one lookup + one apply per touched
// leaf, with recursive on-peer splits; Theorem 2 still prices every produced
// remote bucket at one DHT-put. This quantifies the saving.
#include <iostream>

#include "common/csv.h"
#include "common/flags.h"
#include "dht/local_dht.h"
#include "lht/lht_index.h"
#include "workload/generators.h"

using namespace lht;

int main(int argc, char** argv) {
  common::Flags flags("ablation_bulk_load", "bulk vs incremental loading");
  flags.define("theta", "100", "leaf split threshold");
  flags.define("dist", "uniform", "uniform | gaussian | zipf");
  flags.define("csv", "false", "emit CSV instead of a pretty table");
  if (!flags.parse(argc, argv)) return 1;
  const auto theta = static_cast<common::u32>(flags.getInt("theta"));
  const auto dist = workload::parseDistribution(flags.getString("dist"));

  common::Table t({"data_size", "incr_lookups", "bulk_lookups", "saving",
                   "incr_moved", "bulk_moved"});
  for (int p = 10; p <= 16; p += 2) {
    const size_t n = size_t{1} << p;
    auto data = workload::makeDataset(dist, n, 1);

    dht::LocalDht d1, d2;
    core::LhtIndex incr(d1, {.thetaSplit = theta, .maxDepth = 26});
    core::LhtIndex bulk(d2, {.thetaSplit = theta, .maxDepth = 26});
    for (const auto& r : data) incr.insert(r);
    bulk.insertBatch(data);

    const auto incrCost = incr.meters().insertion.dhtLookups +
                          incr.meters().maintenance.dhtLookups;
    const auto bulkCost = bulk.meters().insertion.dhtLookups +
                          bulk.meters().maintenance.dhtLookups;
    t.row()
        .add(static_cast<common::i64>(n))
        .add(static_cast<common::i64>(incrCost))
        .add(static_cast<common::i64>(bulkCost))
        .add(1.0 - static_cast<double>(bulkCost) / static_cast<double>(incrCost))
        .add(static_cast<common::i64>(incr.meters().insertion.recordsMoved +
                                      incr.meters().maintenance.recordsMoved))
        .add(static_cast<common::i64>(bulk.meters().insertion.recordsMoved +
                                      bulk.meters().maintenance.recordsMoved));
  }
  if (flags.getBool("csv")) {
    t.printCsv(std::cout);
  } else {
    t.printPretty(std::cout, "Ablation: total DHT-lookups to load a dataset (" +
                                 flags.getString("dist") + ")");
  }
  std::cout << "\nexpected: bulk loading saves the per-record lookup chain; "
               "records-moved stays comparable (splits still ship ~theta/2)\n";
  return 0;
}
