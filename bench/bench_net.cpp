// Emits BENCH_PR9.json: the networked transport's cost profile
// (DESIGN.md §14).
//
// Three phases over the same mixed KV workload (NetDht, replication=2,
// oracle-verified against an in-memory map):
//   * in_process  — NetDht over the SimHub twin (NodeServers inline, no
//     sockets): the protocol's CPU floor.
//   * networked   — the same NetDht over real UDP sockets against
//     fork/exec'd lht_noded daemons on localhost: what a process boundary
//     and the kernel's loopback stack add.
//   * batching    — datagrams spent reading K keys one get() at a time vs
//     one multiGet() round (clean SimHub, deterministic counts).
//
// Gates (checked here and by scripts/diff_bench.py):
//   * every phase verifies against the oracle with zero failed ops;
//   * batching ratio (unbatched / batched datagrams) >= 3.0 — the batch
//     rounds must collapse per-key datagrams into per-node datagrams.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include "common/flags.h"
#include "common/random.h"
#include "dht/net_dht.h"
#include "rpc/node_server.h"
#include "rpc/sim_transport.h"
#include "rpc/udp_transport.h"

using lht::common::u64;
using lht::dht::NetDht;
namespace rpc = lht::rpc;

namespace {

struct WorkloadResult {
  u64 ops = 0;
  u64 opsFailed = 0;
  double nsPerOp = 0.0;
  double opsPerSec = 0.0;
  bool oracleOk = false;
};

/// Mixed KV trace: 50% get / 30% put / 20% apply over a bounded keyspace,
/// verified against an in-memory oracle afterwards. Deterministic per seed.
WorkloadResult runWorkload(lht::dht::Dht& dht, u64 ops, u64 seed) {
  lht::common::Pcg32 rng(seed);
  const size_t keyspace = 512;
  std::map<std::string, std::string> oracle;
  // Preload half the keyspace so gets mostly hit.
  for (size_t i = 0; i < keyspace; i += 2) {
    const std::string k = "k" + std::to_string(i);
    const std::string v = "v" + std::to_string(i);
    dht.put(k, v);
    oracle[k] = v;
  }

  WorkloadResult res;
  res.ops = ops;
  const auto start = std::chrono::steady_clock::now();
  for (u64 i = 0; i < ops; ++i) {
    const std::string k = "k" + std::to_string(rng.below(keyspace));
    const u64 dice = rng.below(10);
    try {
      if (dice < 5) {
        auto got = dht.get(k);
        auto it = oracle.find(k);
        const bool want = it != oracle.end();
        if (got.has_value() != want || (want && *got != it->second)) {
          res.opsFailed += 1;
        }
      } else if (dice < 8) {
        const std::string v = "w" + std::to_string(i);
        dht.put(k, v);
        oracle[k] = v;
      } else {
        dht.apply(k, [](std::optional<lht::dht::Value>& v) {
          v = v.value_or("") + "+";
        });
        oracle[k] += "+";
      }
    } catch (const lht::dht::DhtError& e) {
      res.opsFailed += 1;
    }
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const double ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
  res.nsPerOp = ns / static_cast<double>(ops);
  res.opsPerSec = ops / (ns / 1e9);

  // Full oracle sweep: every key the oracle holds must read back exactly.
  res.oracleOk = res.opsFailed == 0;
  for (const auto& [k, v] : oracle) {
    auto got = dht.get(k);
    if (!got.has_value() || *got != v) {
      res.oracleOk = false;
      break;
    }
  }
  return res;
}

/// N NodeServers inline in a SimHub, ports 6000..6000+N-1.
struct SimCluster {
  rpc::SimHub hub;
  std::vector<std::unique_ptr<rpc::NodeServer>> servers;
  std::vector<rpc::NetAddr> addrs;

  explicit SimCluster(size_t n) {
    for (size_t i = 0; i < n; ++i) {
      auto server = std::make_unique<rpc::NodeServer>();
      const auto port = static_cast<rpc::u16>(6000 + i);
      hub.registerHandler(
          port, [srv = server.get()](const rpc::Datagram& d,
                                     const std::function<void(std::string)>& reply) {
            std::string out = srv->handle(d.from, d.payload);
            if (!out.empty()) reply(std::move(out));
          });
      servers.push_back(std::move(server));
      addrs.push_back(rpc::NetAddr{0, port});
    }
  }

  std::unique_ptr<NetDht> makeDht(size_t replication) {
    NetDht::Options o;
    o.nodes = addrs;
    o.replication = replication;
    return std::make_unique<NetDht>(o, [this] { return hub.makeEndpoint(); });
  }
};

struct Daemon {
  pid_t pid = -1;
  rpc::u16 port = 0;
};

std::string findNoded(const char* argv0) {
  if (const char* env = std::getenv("LHT_NODED_PATH")) {
    if (::access(env, X_OK) == 0) return env;
  }
  std::string dir(argv0);
  const size_t slash = dir.rfind('/');
  dir = slash == std::string::npos ? "." : dir.substr(0, slash);
  for (const char* rel : {"/../src/rpc/lht_noded", "/lht_noded"}) {
    const std::string candidate = dir + rel;
    if (::access(candidate.c_str(), X_OK) == 0) return candidate;
  }
  return {};
}

bool spawnDaemon(const std::string& binary, Daemon& out) {
  int fds[2];
  if (::pipe(fds) != 0) return false;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return false;
  }
  if (pid == 0) {
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[0]);
    ::close(fds[1]);
    char* argv[] = {const_cast<char*>(binary.c_str()),
                    const_cast<char*>("--port=0"),
                    const_cast<char*>("--quiet=true"), nullptr};
    ::execv(binary.c_str(), argv);
    _exit(127);
  }
  ::close(fds[1]);
  FILE* pipe = ::fdopen(fds[0], "r");
  char line[256] = {0};
  const bool gotLine = pipe != nullptr && std::fgets(line, sizeof(line), pipe);
  if (pipe != nullptr) std::fclose(pipe);
  unsigned port = 0;
  if (!gotLine ||
      std::sscanf(line, "lht_noded: ready on 127.0.0.1:%u", &port) != 1 ||
      port == 0 || port > 65535) {
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    return false;
  }
  out.pid = pid;
  out.port = static_cast<rpc::u16>(port);
  return true;
}

void stopDaemons(std::vector<Daemon>& daemons) {
  for (auto& d : daemons) {
    if (d.pid > 0) ::kill(d.pid, SIGTERM);
  }
  for (auto& d : daemons) {
    if (d.pid > 0) ::waitpid(d.pid, nullptr, 0);
    d.pid = -1;
  }
}

void emitWorkload(std::ostringstream& os, const char* name,
                  const WorkloadResult& r, const NetDht::NetStats& net) {
  os << "  \"" << name << "\": {\n"
     << "    \"ops\": " << r.ops << ",\n"
     << "    \"ops_failed\": " << r.opsFailed << ",\n"
     << "    \"ns_per_op\": " << r.nsPerOp << ",\n"
     << "    \"ops_per_sec\": " << r.opsPerSec << ",\n"
     << "    \"datagrams_sent\": " << net.datagramsSent << ",\n"
     << "    \"retransmits\": " << net.retransmits << ",\n"
     << "    \"timeouts\": " << net.timeouts << ",\n"
     << "    \"oracle_ok\": " << (r.oracleOk ? "true" : "false") << "\n"
     << "  },\n";
}

}  // namespace

int main(int argc, char** argv) {
  lht::common::Flags flags(
      "bench_net",
      "Emits BENCH_PR9.json: in-process vs multi-process NetDht throughput "
      "plus the multiGet batching economy, with oracle verification.");
  flags.define("nodes", "8", "cluster size (both phases)");
  flags.define("ops", "4000", "workload operations per phase");
  flags.define("batch-keys", "256", "keys in the batching comparison");
  flags.define("replication", "2", "total copies per key");
  flags.define("seed", "42", "workload seed");
  flags.define("out", "BENCH_PR9.json", "output path");
  if (!flags.parse(argc, argv)) return 2;

  const size_t nodes = static_cast<size_t>(flags.getInt("nodes"));
  const u64 ops = static_cast<u64>(flags.getInt("ops"));
  const size_t batchKeys = static_cast<size_t>(flags.getInt("batch-keys"));
  const size_t replication = static_cast<size_t>(flags.getInt("replication"));
  const u64 seed = static_cast<u64>(flags.getInt("seed"));

  // Phase 1: in-process (SimHub) ---------------------------------------------
  WorkloadResult inProc;
  NetDht::NetStats inProcNet;
  {
    SimCluster cluster(nodes);
    auto dht = cluster.makeDht(replication);
    inProc = runWorkload(*dht, ops, seed);
    inProcNet = dht->netStats();
  }

  // Phase 2: networked (fork/exec lht_noded, real UDP) -----------------------
  const std::string noded = findNoded(argv[0]);
  if (noded.empty()) {
    std::fprintf(stderr,
                 "bench_net: lht_noded binary not found (build it, or set "
                 "LHT_NODED_PATH)\n");
    return 1;
  }
  WorkloadResult networked;
  NetDht::NetStats networkedNet;
  {
    std::vector<Daemon> daemons(nodes);
    for (size_t i = 0; i < nodes; ++i) {
      if (!spawnDaemon(noded, daemons[i])) {
        std::fprintf(stderr, "bench_net: failed to spawn daemon %zu\n", i);
        stopDaemons(daemons);
        return 1;
      }
    }
    NetDht::Options o;
    for (const auto& d : daemons) {
      o.nodes.push_back(rpc::NetAddr{rpc::kLoopbackHost, d.port});
    }
    o.replication = replication;
    NetDht dht(o, [] {
      return std::make_unique<rpc::UdpTransport>(rpc::UdpTransport::Options{});
    });
    if (!dht.pingAll(10'000)) {
      std::fprintf(stderr, "bench_net: cluster did not answer pings\n");
      stopDaemons(daemons);
      return 1;
    }
    networked = runWorkload(dht, ops, seed);
    networkedNet = dht.netStats();
    stopDaemons(daemons);
  }

  // Phase 3: batching economy (clean SimHub, deterministic) ------------------
  u64 unbatchedDatagrams = 0;
  u64 batchedDatagrams = 0;
  u64 batchRounds = 0;
  bool batchOracleOk = true;
  {
    SimCluster cluster(nodes);
    auto dht = cluster.makeDht(replication);
    std::vector<std::string> keys;
    for (size_t i = 0; i < batchKeys; ++i) {
      keys.push_back("batch" + std::to_string(i));
      dht->put(keys.back(), "v" + std::to_string(i));
    }
    const auto afterLoad = dht->netStats();
    for (const auto& k : keys) {
      auto got = dht->get(k);
      if (!got.has_value()) batchOracleOk = false;
    }
    const auto afterSingles = dht->netStats();
    auto outcomes = dht->multiGet(keys);
    const auto afterBatch = dht->netStats();
    for (size_t i = 0; i < outcomes.size(); ++i) {
      if (!outcomes[i].ok || outcomes[i].value != "v" + std::to_string(i)) {
        batchOracleOk = false;
      }
    }
    unbatchedDatagrams = afterSingles.datagramsSent - afterLoad.datagramsSent;
    batchedDatagrams = afterBatch.datagramsSent - afterSingles.datagramsSent;
    batchRounds = 1;
  }
  const double batchRatio =
      batchedDatagrams == 0
          ? 0.0
          : static_cast<double>(unbatchedDatagrams) / batchedDatagrams;

  const bool oracleOk =
      inProc.oracleOk && networked.oracleOk && batchOracleOk;
  const bool batchRatioOk = batchRatio >= 3.0;

  std::ostringstream os;
  os << "{\n"
     << "  \"bench\": \"lht_net\",\n"
     << "  \"config\": {\n"
     << "    \"nodes\": " << nodes << ",\n"
     << "    \"ops\": " << ops << ",\n"
     << "    \"batch_keys\": " << batchKeys << ",\n"
     << "    \"replication\": " << replication << ",\n"
     << "    \"seed\": " << seed << "\n"
     << "  },\n";
  emitWorkload(os, "in_process", inProc, inProcNet);
  emitWorkload(os, "networked", networked, networkedNet);
  os << "  \"batching\": {\n"
     << "    \"keys\": " << batchKeys << ",\n"
     << "    \"unbatched_datagrams\": " << unbatchedDatagrams << ",\n"
     << "    \"batched_datagrams\": " << batchedDatagrams << ",\n"
     << "    \"batch_rounds\": " << batchRounds << ",\n"
     << "    \"ratio\": " << batchRatio << "\n"
     << "  },\n"
     << "  \"gates\": {\n"
     << "    \"oracle_ok\": " << (oracleOk ? "true" : "false") << ",\n"
     << "    \"batch_ratio\": " << batchRatio << ",\n"
     << "    \"batch_ratio_floor\": 3.0,\n"
     << "    \"batch_ratio_ok\": " << (batchRatioOk ? "true" : "false") << "\n"
     << "  }\n"
     << "}\n";

  const std::string outPath = flags.getString("out");
  std::ofstream out(outPath);
  if (!out) {
    std::fprintf(stderr, "bench_net: cannot write %s\n", outPath.c_str());
    return 1;
  }
  out << os.str();
  std::cout << os.str();

  if (!oracleOk) {
    std::fprintf(stderr, "bench_net: GATE FAILED: oracle verification\n");
    return 4;
  }
  if (!batchRatioOk) {
    std::fprintf(stderr,
                 "bench_net: GATE FAILED: batching ratio %.2f < 3.0\n",
                 batchRatio);
    return 5;
  }
  return 0;
}
