// Churn experiment (the paper's motivating setting: "peers frequently
// join/leave the networks"). Runs an insert+query workload on LHT over a
// replicated Chord ring while peers join, leave, and fail, and reports
// query correctness and cost per churn intensity.
#include <iostream>

#include "common/csv.h"
#include "common/flags.h"
#include "dht/chord.h"
#include "index/reference_index.h"
#include "lht/lht_index.h"
#include "net/sim_network.h"
#include "sim/churn.h"
#include "workload/generators.h"

using namespace lht;

int main(int argc, char** argv) {
  common::Flags flags("table_churn", "LHT correctness and cost under churn");
  flags.define("ops", "4000", "insert operations per configuration");
  flags.define("peers", "24", "initial ring size");
  flags.define("replication", "3", "Chord replication factor");
  flags.define("csv", "false", "emit CSV instead of a pretty table");
  if (!flags.parse(argc, argv)) return 1;
  const auto ops = static_cast<size_t>(flags.getInt("ops"));

  common::Table t({"churn_period", "events", "joins", "leaves", "fails",
                   "range_ok", "avg_find_lookups", "net_messages"});
  for (common::u32 period : {0u, 200u, 50u, 20u}) {
    net::SimNetwork net;
    dht::ChordDht::Options dopts;
    dopts.initialPeers = static_cast<size_t>(flags.getInt("peers"));
    dopts.replication = static_cast<size_t>(flags.getInt("replication"));
    dht::ChordDht dht(net, dopts);
    core::LhtIndex idx(dht, {.thetaSplit = 50, .maxDepth = 24});
    index::ReferenceIndex oracle;

    sim::ChurnConfig ccfg;
    ccfg.period = period == 0 ? 1 : period;
    ccfg.joinWeight = 1.0;
    ccfg.leaveWeight = 0.7;
    ccfg.failWeight = 0.3;
    ccfg.minPeers = 8;
    sim::ChurnDriver churn(dht, ccfg);

    workload::KeyGenerator gen(workload::Distribution::Uniform, 17);
    for (size_t i = 0; i < ops; ++i) {
      index::Record r{gen.next(), "r" + std::to_string(i)};
      idx.insert(r);
      oracle.insert(r);
      if (period != 0) churn.maybeChurn();
    }

    // Correctness probe: a large range query must match the oracle exactly.
    auto mine = idx.rangeQuery(0.1, 0.9);
    auto truth = oracle.rangeQuery(0.1, 0.9);
    const bool ok = mine.records.size() == truth.records.size();

    common::Pcg32 rng(23);
    double findCost = 0;
    const int probes = 200;
    for (int q = 0; q < probes; ++q) {
      findCost += static_cast<double>(idx.find(rng.nextDouble()).stats.dhtLookups);
    }

    t.row()
        .add(period == 0 ? std::string("none") : std::to_string(period))
        .add(static_cast<common::i64>(churn.events()))
        .add(static_cast<common::i64>(churn.joins()))
        .add(static_cast<common::i64>(churn.leaves()))
        .add(static_cast<common::i64>(churn.fails()))
        .add(std::string(ok ? "yes" : "NO"))
        .add(findCost / probes)
        .add(static_cast<common::i64>(net.stats().messages));
  }
  if (flags.getBool("csv")) {
    t.printCsv(std::cout);
  } else {
    t.printPretty(std::cout,
                  "LHT over replicated Chord under churn (smaller period = "
                  "heavier churn)");
  }
  std::cout << "\nexpected: range_ok stays yes at every churn level (the DHT "
               "absorbs dynamism; the index needs no repair), query cost is "
               "churn-independent, network messages grow with churn\n";
  return 0;
}
