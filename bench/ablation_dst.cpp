// Ablation (paper Sec. 2 positioning): the query-vs-maintenance trade-off
// across the three index designs. DST replicates records on all ancestors —
// unbeatable range latency, but insert cost scales with tree depth; LHT
// keeps inserts cheap while staying close on query metrics.
#include <iostream>

#include "common/csv.h"
#include "common/flags.h"
#include "sim/experiment.h"

using namespace lht;

int main(int argc, char** argv) {
  common::Flags flags("ablation_dst", "LHT vs PHT vs DST trade-off");
  flags.define("datasize", "8192", "records inserted");
  flags.define("queries", "100", "range queries measured");
  flags.define("span", "0.1", "range span");
  flags.define("csv", "false", "emit CSV instead of a pretty table");
  if (!flags.parse(argc, argv)) return 1;
  const auto n = static_cast<size_t>(flags.getInt("datasize"));
  const auto queries = static_cast<size_t>(flags.getInt("queries"));
  const double span = flags.getDouble("span");

  common::Table t({"index", "insert_lookups_per_record", "records_moved_total",
                   "range_lookups", "range_steps"});
  for (auto kind : {sim::IndexKind::Lht, sim::IndexKind::PhtParallel,
                    sim::IndexKind::Dst}) {
    sim::ExperimentConfig cfg;
    cfg.kind = kind;
    cfg.dataSize = n;
    cfg.theta = 100;
    cfg.maxDepth = 16;
    sim::Experiment exp(cfg);
    exp.build();
    const auto& m = exp.meters();
    const double insertLookups =
        static_cast<double>(m.insertion.dhtLookups + m.maintenance.dhtLookups) /
        static_cast<double>(n);
    auto rq = exp.measureRanges(span, queries);
    t.row()
        .add(sim::indexKindName(kind))
        .add(insertLookups)
        .add(static_cast<common::i64>(m.insertion.recordsMoved +
                                      m.maintenance.recordsMoved))
        .add(rq.dhtLookups)
        .add(rq.parallelSteps);
  }
  if (flags.getBool("csv")) {
    t.printCsv(std::cout);
  } else {
    t.printPretty(std::cout,
                  "Ablation: insert cost vs range performance (n=" +
                      std::to_string(n) + ", span=" + flags.getString("span") + ")");
  }
  std::cout << "\nexpected: DST wins range_steps (=1) but pays D lookups per "
               "insert and replicates every record D times; LHT keeps inserts "
               "near-constant with competitive range cost\n";
  return 0;
}
