// Load-balance experiment (paper Sec. 1: "due to uniform hashes, storage
// load balance in DHTs can be easily achieved"). Measures how evenly LHT's
// leaf buckets and their records spread over Chord peers, and the shape of
// the partition tree that produced them.
#include <algorithm>
#include <iostream>
#include <vector>

#include "common/csv.h"
#include "common/flags.h"
#include "dht/chord.h"
#include "lht/lht_index.h"
#include "lht/tree_stats.h"
#include "net/sim_network.h"
#include "obs/load.h"
#include "workload/generators.h"

using namespace lht;

int main(int argc, char** argv) {
  common::Flags flags("table_load_balance", "bucket placement across peers");
  flags.define("datasize", "16384", "records inserted");
  flags.define("theta", "100", "leaf split threshold");
  flags.define("csv", "false", "emit CSV instead of a pretty table");
  if (!flags.parse(argc, argv)) return 1;
  const auto n = static_cast<size_t>(flags.getInt("datasize"));
  const auto theta = static_cast<common::u32>(flags.getInt("theta"));

  // Alongside storage placement, measure *served-read* balance: a
  // zipfian read stream against the built tree, per-peer reads summarized
  // as the max/mean imbalance ratio (DESIGN.md §13). Virtual nodes are
  // the paper-era comparison arm; the lease/adaptive-split arm lives in
  // bench_skew.
  common::Table t({"dist", "peers", "vnodes", "leaves", "mean_buckets_per_peer",
                   "max_buckets_on_ring_point", "read_max_over_mean",
                   "tree_depth_mean", "tree_depth_max"});
  for (auto dist : {workload::Distribution::Uniform, workload::Distribution::Gaussian,
                    workload::Distribution::Zipf}) {
    for (auto [peers, vnodes] : {std::pair<size_t, size_t>{16, 1},
                                 std::pair<size_t, size_t>{16, 16},
                                 std::pair<size_t, size_t>{64, 1},
                                 std::pair<size_t, size_t>{64, 16}}) {
      net::SimNetwork net;
      dht::ChordDht::Options dopts;
      dopts.initialPeers = peers;
      dopts.virtualNodes = vnodes;
      dht::ChordDht dht(net, dopts);
      core::LhtIndex idx(dht, {.thetaSplit = theta, .maxDepth = 28});
      auto data = workload::makeDataset(dist, n, 1);
      idx.insertBatch(data);

      auto stats = core::TreeStats::collect(idx);
      std::vector<size_t> perPeer;
      for (auto id : dht.nodeIds()) perPeer.push_back(dht.keysOn(id));
      const size_t maxBuckets = *std::max_element(perPeer.begin(), perPeer.end());

      dht.resetReadLoad();
      workload::SkewedKeyGenerator skewed({/*s=*/0.99, /*universe=*/256,
                                           /*flashEvery=*/0, /*flashJump=*/0},
                                          /*seed=*/7);
      for (size_t i = 0; i < 4096; ++i) idx.find(skewed.next());
      const auto readLoad = obs::summarizeLoad(dht.readLoadByPeer());

      t.row()
          .add(workload::distributionName(dist))
          .add(static_cast<common::i64>(peers))
          .add(static_cast<common::i64>(vnodes))
          .add(static_cast<common::i64>(stats.leafCount))
          .add(static_cast<double>(stats.leafCount) / static_cast<double>(peers))
          .add(static_cast<common::i64>(maxBuckets))
          .add(readLoad.maxOverMean)
          .add(stats.meanDepth)
          .add(static_cast<common::i64>(stats.maxDepth));
    }
  }
  if (flags.getBool("csv")) {
    t.printCsv(std::cout);
  } else {
    t.printPretty(std::cout,
                  "Storage load balance: LHT buckets over Chord peers (n=" +
                      std::to_string(n) + ")");
  }
  std::cout << "\nexpected: buckets spread near-uniformly over peers even for "
               "skewed key distributions, because the naming function's "
               "output is uniform-hashed — the paper's load-balance argument.\n"
               "read_max_over_mean: virtual nodes smooth arc-length ownership "
               "but cannot split one hot leaf's reads across peers — that "
               "takes the leased replicated reads measured in bench_skew\n";
  return 0;
}
