// Ablation (paper Sec. 5's anti-cascading rule): one split per insert vs
// cascading splits, under a clustered insertion pattern that makes single
// inserts want to split many levels at once. Measures the worst-case cost
// of a single insert (the rule's target) and the transient overflow the
// rule tolerates in exchange.
#include <algorithm>
#include <iostream>

#include "common/csv.h"
#include "common/flags.h"
#include "common/random.h"
#include "dht/local_dht.h"
#include "lht/lht_index.h"
#include "lht/tree_stats.h"

using namespace lht;

namespace {

struct Outcome {
  common::u64 maxSplitsOneInsert = 0;
  common::u64 totalMaintenanceLookups = 0;
  size_t maxOverfullLeaves = 0;
};

Outcome run(bool cascading, size_t n, common::u32 theta) {
  dht::LocalDht d;
  core::LhtIndex::Options o;
  o.thetaSplit = theta;
  o.maxDepth = 30;
  o.allowCascadingSplits = cascading;
  core::LhtIndex idx(d, o);

  Outcome out;
  common::Pcg32 rng(3);
  common::u64 lastSplits = 0;
  for (size_t i = 0; i < n; ++i) {
    // Clustered keys: narrow bands force deep multi-level splits.
    const double band = static_cast<double>(rng.below(8)) / 8.0;
    const double key = band + rng.nextDouble() / 4096.0;
    idx.insert({key, "c"});
    const common::u64 splits = idx.meters().maintenance.splits;
    out.maxSplitsOneInsert = std::max(out.maxSplitsOneInsert, splits - lastSplits);
    lastSplits = splits;
    if (i % 64 == 0) {
      auto stats = core::TreeStats::collect(idx);
      out.maxOverfullLeaves = std::max(out.maxOverfullLeaves, stats.overfullLeaves);
    }
  }
  out.totalMaintenanceLookups = idx.meters().maintenance.dhtLookups;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  common::Flags flags("ablation_cascading",
                      "one split per insert vs cascading splits");
  flags.define("datasize", "8192", "records inserted (clustered keys)");
  flags.define("theta", "32", "leaf split threshold");
  flags.define("csv", "false", "emit CSV instead of a pretty table");
  if (!flags.parse(argc, argv)) return 1;
  const auto n = static_cast<size_t>(flags.getInt("datasize"));
  const auto theta = static_cast<common::u32>(flags.getInt("theta"));

  common::Table t({"policy", "max_splits_per_insert", "total_maint_lookups",
                   "max_overfull_leaves"});
  auto one = run(false, n, theta);
  auto casc = run(true, n, theta);
  t.addRow({std::string("one-split (paper)"),
            static_cast<common::i64>(one.maxSplitsOneInsert),
            static_cast<common::i64>(one.totalMaintenanceLookups),
            static_cast<common::i64>(one.maxOverfullLeaves)});
  t.addRow({std::string("cascading"),
            static_cast<common::i64>(casc.maxSplitsOneInsert),
            static_cast<common::i64>(casc.totalMaintenanceLookups),
            static_cast<common::i64>(casc.maxOverfullLeaves)});
  if (flags.getBool("csv")) {
    t.printCsv(std::cout);
  } else {
    t.printPretty(std::cout, "Ablation: split policy under clustered inserts");
  }
  std::cout << "\nexpected: the paper's rule caps per-insert structural work "
               "at one split (bounded latency) at the cost of transiently "
               "overfull leaves; cascading clears overflow immediately but a "
               "single insert can trigger a burst of splits. Total work "
               "converges to the same order either way.\n";
  return 0;
}
