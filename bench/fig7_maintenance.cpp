// Reproduces Fig. 7 (paper Sec. 9.2): cumulative maintenance cost while
// progressively larger datasets are inserted, LHT vs PHT, theta = 100.
//
//  Fig. 7a: cumulative moved records vs data size  (LHT ~ 1/2 of PHT)
//  Fig. 7b: cumulative maintenance DHT-lookups      (LHT ~ 1/4 of PHT)
//
// --metrics=true additionally installs the ambient metrics registry over
// the whole sweep and dumps every per-op series (lht.*, dht.*, net.*; see
// DESIGN.md §9) at the end — the full cost attribution behind the table.
#include <iostream>
#include <optional>

#include "common/csv.h"
#include "common/flags.h"
#include "cost/meter.h"
#include "obs/obs.h"
#include "sim/experiment.h"

using namespace lht;

namespace {

cost::Counters maintenanceAfterBuild(sim::IndexKind kind,
                                     workload::Distribution dist, size_t n,
                                     common::u32 theta, int repeats) {
  cost::Counters total;
  for (int rep = 0; rep < repeats; ++rep) {
    sim::ExperimentConfig cfg;
    cfg.kind = kind;
    cfg.dist = dist;
    cfg.dataSize = n;
    cfg.theta = theta;
    cfg.maxDepth = 26;
    cfg.seed = static_cast<common::u64>(rep + 1);
    sim::Experiment exp(cfg);
    exp.build();
    total += exp.meters().maintenance;
  }
  // Average over repeats.
  total.dhtLookups /= repeats;
  total.recordsMoved /= repeats;
  total.splits /= repeats;
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  common::Flags flags("fig7_maintenance", "Fig. 7: cumulative maintenance cost");
  flags.define("repeats", "3", "independent datasets per point");
  flags.define("theta", "100", "leaf split threshold (paper: 100)");
  flags.define("minpow", "10", "smallest data size = 2^minpow");
  flags.define("maxpow", "16", "largest data size = 2^maxpow");
  flags.define("csv", "false", "emit CSV instead of a pretty table");
  flags.define("metrics", "false",
               "dump the ambient metrics registry (all per-op series) after "
               "the sweep");
  if (!flags.parse(argc, argv)) return 1;
  const int repeats = static_cast<int>(flags.getInt("repeats"));
  const auto theta = static_cast<common::u32>(flags.getInt("theta"));

  obs::MetricsRegistry reg;
  std::optional<obs::ScopedObservability> install;
  if (flags.getBool("metrics")) install.emplace(&reg, nullptr);

  for (auto dist : {workload::Distribution::Uniform, workload::Distribution::Gaussian}) {
    common::Table t({"data_size", "lht_moved", "pht_moved", "moved_ratio",
                     "lht_lookups", "pht_lookups", "lookup_ratio"});
    for (int p = static_cast<int>(flags.getInt("minpow"));
         p <= static_cast<int>(flags.getInt("maxpow")); ++p) {
      const size_t n = size_t{1} << p;
      auto lht = maintenanceAfterBuild(sim::IndexKind::Lht, dist, n, theta, repeats);
      auto pht = maintenanceAfterBuild(sim::IndexKind::PhtSequential, dist, n,
                                       theta, repeats);
      t.row()
          .add(static_cast<common::i64>(n))
          .add(static_cast<common::i64>(lht.recordsMoved))
          .add(static_cast<common::i64>(pht.recordsMoved))
          .add(pht.recordsMoved ? static_cast<double>(lht.recordsMoved) /
                                      static_cast<double>(pht.recordsMoved)
                                : 0.0)
          .add(static_cast<common::i64>(lht.dhtLookups))
          .add(static_cast<common::i64>(pht.dhtLookups))
          .add(pht.dhtLookups ? static_cast<double>(lht.dhtLookups) /
                                    static_cast<double>(pht.dhtLookups)
                              : 0.0);
    }
    const std::string title = "Fig. 7 (" + workload::distributionName(dist) +
                              "): cumulative maintenance, theta=" +
                              std::to_string(theta);
    if (flags.getBool("csv")) {
      t.printCsv(std::cout);
    } else {
      t.printPretty(std::cout, title);
    }
    std::cout << "\n";
  }
  std::cout << "paper claim: moved_ratio ~ 0.5 (Fig. 7a), lookup_ratio ~ 0.25 "
               "(Fig. 7b)\n";

  if (flags.getBool("metrics")) {
    std::cout << "\n";
    if (flags.getBool("csv")) {
      reg.writeCsv(std::cout);
    } else {
      reg.toTable().printPretty(
          std::cout, "cost attribution (both indexes, whole sweep)");
    }
  }
  return 0;
}
