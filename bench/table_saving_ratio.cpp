// Reproduces the paper's Sec. 8.2 analysis (Eqs. 1-3): LHT's maintenance
// saving ratio vs PHT as a function of gamma = theta*i/j, validated against
// *measured* split costs from real index builds.
//
// Paper claim: the saving ratio is at least 50% and up to 75%.
#include <iostream>

#include "common/csv.h"
#include "common/flags.h"
#include "cost/cost_model.h"
#include "sim/experiment.h"

using namespace lht;

int main(int argc, char** argv) {
  common::Flags flags("table_saving_ratio",
                      "Eq. 3: maintenance saving ratio, analytic vs measured");
  flags.define("theta", "100", "leaf split threshold");
  flags.define("datasize", "32768", "records inserted for the measured columns");
  flags.define("csv", "false", "emit CSV instead of a pretty table");
  if (!flags.parse(argc, argv)) return 1;
  const auto theta = static_cast<common::u32>(flags.getInt("theta"));

  // Measure per-split averages once from real builds.
  auto measure = [&](sim::IndexKind kind) {
    sim::ExperimentConfig cfg;
    cfg.kind = kind;
    cfg.dataSize = static_cast<size_t>(flags.getInt("datasize"));
    cfg.theta = theta;
    cfg.maxDepth = 26;
    sim::Experiment exp(cfg);
    exp.build();
    return exp.meters().maintenance;
  };
  const auto lht = measure(sim::IndexKind::Lht);
  const auto pht = measure(sim::IndexKind::PhtSequential);

  common::Table t({"gamma", "psi_lht", "psi_pht", "saving_eq3",
                   "saving_measured"});
  for (double gamma : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 50.0, 100.0, 1000.0}) {
    // Fix j = 1 and set i from gamma = theta*i/j.
    cost::CostModel m;
    m.thetaSplit = theta;
    m.j = 1.0;
    m.i = gamma / static_cast<double>(theta);
    // Price the *measured* counters under the same (i, j).
    const double measuredLht =
        m.price(lht) / static_cast<double>(lht.splits ? lht.splits : 1);
    const double measuredPht =
        m.price(pht) / static_cast<double>(pht.splits ? pht.splits : 1);
    t.row()
        .add(gamma)
        .add(m.psiLht())
        .add(m.psiPht())
        .add(m.savingRatio())
        .add(1.0 - measuredLht / measuredPht);
  }
  if (flags.getBool("csv")) {
    t.printCsv(std::cout);
  } else {
    t.printPretty(std::cout,
                  "Eq. 3: saving ratio vs gamma (theta=" + std::to_string(theta) +
                      "), analytic and from measured splits");
  }
  std::cout << "\npaper claim: saving in [50%, 75%], decreasing in gamma\n";
  std::cout << "measured per split: LHT " << lht.dhtLookups / std::max<common::u64>(lht.splits, 1)
            << " lookups / "
            << static_cast<double>(lht.recordsMoved) / std::max<common::u64>(lht.splits, 1)
            << " records; PHT "
            << static_cast<double>(pht.dhtLookups) / std::max<common::u64>(pht.splits, 1)
            << " lookups / "
            << static_cast<double>(pht.recordsMoved) / std::max<common::u64>(pht.splits, 1)
            << " records\n";
  return 0;
}
