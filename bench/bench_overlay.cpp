// Emits BENCH_PR10.json: the self-routing overlay's cost profile
// (DESIGN.md §15).
//
// Every phase runs against REAL overlay daemons — fork/exec'd lht_noded
// --overlay=true processes on localhost UDP, grown from one seed exactly
// the way scripts/run_cluster.sh deploys them — driven by a RoutedNetDht
// client that knows only the seed address:
//   * warm_routing — mixed KV workload (oracle-verified), then a
//     measured read sweep over a settled view: warm lookups must route
//     straight to their owner (mean hops <= 1.2, the ISSUE gate).
//   * live_join   — a new daemon joins the LIVE cluster while the client
//     hammers reads of the preloaded records; availability during the
//     join (+ view heal) must stay >= 0.99.
//   * graceful_leave — SIGUSR1 one member (stream keys out, announce
//     Left, exit); afterwards every record the oracle holds must still
//     read back: lost_keys == 0 through the whole grow/shrink story.
//
// Gates (checked here and by scripts/diff_bench.py):
//   * warm mean hops <= 1.2;
//   * read availability during the live join >= 0.99;
//   * lost_keys == 0 after join AND after leave;
//   * every phase's oracle verification passes.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "common/flags.h"
#include "common/random.h"
#include "dht/routed_net_dht.h"
#include "rpc/udp_transport.h"

using lht::common::u64;
using lht::dht::RoutedNetDht;
namespace rpc = lht::rpc;

namespace {

struct Daemon {
  pid_t pid = -1;
  rpc::u16 port = 0;
};

std::string findNoded(const char* argv0) {
  if (const char* env = std::getenv("LHT_NODED_PATH")) {
    if (::access(env, X_OK) == 0) return env;
  }
  std::string dir(argv0);
  const size_t slash = dir.rfind('/');
  dir = slash == std::string::npos ? "." : dir.substr(0, slash);
  for (const char* rel : {"/../src/rpc/lht_noded", "/lht_noded"}) {
    const std::string candidate = dir + rel;
    if (::access(candidate.c_str(), X_OK) == 0) return candidate;
  }
  return {};
}

/// fork/execs one overlay daemon and blocks until its ready line (which
/// overlay joiners print BEFORE the join handshake — the join itself
/// happens live, which is what the live_join phase measures).
bool spawnDaemon(const std::string& binary,
                 const std::vector<std::string>& extraArgs, Daemon& out) {
  int fds[2];
  if (::pipe(fds) != 0) return false;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return false;
  }
  if (pid == 0) {
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[0]);
    ::close(fds[1]);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(binary.c_str()));
    for (const auto& a : extraArgs) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    ::execv(binary.c_str(), argv.data());
    _exit(127);
  }
  ::close(fds[1]);
  FILE* pipe = ::fdopen(fds[0], "r");
  char line[256] = {0};
  const bool gotLine = pipe != nullptr && std::fgets(line, sizeof(line), pipe);
  if (pipe != nullptr) std::fclose(pipe);
  unsigned port = 0;
  if (!gotLine ||
      std::sscanf(line, "lht_noded: ready on 127.0.0.1:%u", &port) != 1 ||
      port == 0 || port > 65535) {
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    return false;
  }
  out.pid = pid;
  out.port = static_cast<rpc::u16>(port);
  return true;
}

void stopDaemons(std::vector<Daemon>& daemons) {
  for (auto& d : daemons) {
    if (d.pid > 0) ::kill(d.pid, SIGTERM);
  }
  for (auto& d : daemons) {
    if (d.pid > 0) ::waitpid(d.pid, nullptr, 0);
    d.pid = -1;
  }
}

/// One read attempt, churn-tolerant accounting: correct value = available,
/// anything else (miss, stale, DhtError) = an unavailable sample.
bool readOk(RoutedNetDht& dht, const std::string& key,
            const std::string& expect) {
  try {
    auto got = dht.get(key);
    return got.has_value() && *got == expect;
  } catch (const lht::dht::DhtError&) {
    return false;
  }
}

/// Retry-until-deadline read: only a key still wrong at the deadline is
/// actually lost (the run_cluster.sh verify model).
bool eventuallyReads(RoutedNetDht& dht, const std::string& key,
                     const std::string& expect, int deadlineSeconds) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(deadlineSeconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (readOk(dht, key, expect)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

struct WorkloadResult {
  u64 ops = 0;
  u64 opsFailed = 0;
  double nsPerOp = 0.0;
  double opsPerSec = 0.0;
  bool oracleOk = false;
};

/// Mixed KV trace (50% get / 30% put / 20% apply) over a bounded
/// keyspace, oracle-verified afterwards. Deterministic per seed.
WorkloadResult runWorkload(RoutedNetDht& dht, u64 ops, u64 seed,
                           std::map<std::string, std::string>& oracle) {
  lht::common::Pcg32 rng(seed);
  const size_t keyspace = 512;
  for (size_t i = 0; i < keyspace; i += 2) {
    const std::string k = "k" + std::to_string(i);
    const std::string v = "v" + std::to_string(i);
    dht.put(k, v);
    oracle[k] = v;
  }

  WorkloadResult res;
  res.ops = ops;
  const auto start = std::chrono::steady_clock::now();
  for (u64 i = 0; i < ops; ++i) {
    const std::string k = "k" + std::to_string(rng.below(keyspace));
    const u64 dice = rng.below(10);
    try {
      if (dice < 5) {
        auto got = dht.get(k);
        auto it = oracle.find(k);
        const bool want = it != oracle.end();
        if (got.has_value() != want || (want && *got != it->second)) {
          res.opsFailed += 1;
        }
      } else if (dice < 8) {
        const std::string v = "w" + std::to_string(i);
        dht.put(k, v);
        oracle[k] = v;
      } else {
        dht.apply(k, [](std::optional<lht::dht::Value>& v) {
          v = v.value_or("") + "+";
        });
        oracle[k] += "+";
      }
    } catch (const lht::dht::DhtError&) {
      res.opsFailed += 1;
    }
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const double ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
  res.nsPerOp = ns / static_cast<double>(ops);
  res.opsPerSec = ops / (ns / 1e9);

  res.oracleOk = res.opsFailed == 0;
  for (const auto& [k, v] : oracle) {
    auto got = dht.get(k);
    if (!got.has_value() || *got != v) {
      res.oracleOk = false;
      break;
    }
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  lht::common::Flags flags(
      "bench_overlay",
      "Emits BENCH_PR10.json: warm routing hops, availability during a "
      "live join, and zero-loss grow/shrink over real overlay daemons.");
  flags.define("nodes", "8", "initial cluster size");
  flags.define("ops", "3000", "mixed workload operations (warm phase)");
  flags.define("replication", "2", "copies per key (overlay + client)");
  flags.define("seed", "42", "workload seed");
  flags.define("out", "BENCH_PR10.json", "output path");
  if (!flags.parse(argc, argv)) return 2;

  const size_t nodes = static_cast<size_t>(flags.getInt("nodes"));
  const u64 ops = static_cast<u64>(flags.getInt("ops"));
  const size_t replication = static_cast<size_t>(flags.getInt("replication"));
  const u64 seed = static_cast<u64>(flags.getInt("seed"));

  const std::string noded = findNoded(argv[0]);
  if (noded.empty()) {
    std::fprintf(stderr,
                 "bench_overlay: lht_noded binary not found (build it, or "
                 "set LHT_NODED_PATH)\n");
    return 1;
  }

  const std::string repFlag = "--replication=" + std::to_string(replication);
  auto overlayArgs = [&](size_t i, rpc::u16 seedPort) {
    std::vector<std::string> args = {"--port=0", "--quiet=true",
                                     "--overlay=true", repFlag,
                                     "--name=bench-" + std::to_string(i)};
    if (seedPort != 0) {
      args.push_back("--seed-port=" + std::to_string(seedPort));
    }
    return args;
  };

  // Grow the cluster from one seed, the run_cluster.sh way.
  std::vector<Daemon> daemons(nodes);
  if (!spawnDaemon(noded, overlayArgs(0, 0), daemons[0])) {
    std::fprintf(stderr, "bench_overlay: failed to spawn the seed daemon\n");
    return 1;
  }
  bool spawnedAll = true;
  for (size_t i = 1; i < nodes && spawnedAll; ++i) {
    spawnedAll = spawnDaemon(noded, overlayArgs(i, daemons[0].port), daemons[i]);
  }
  if (!spawnedAll) {
    std::fprintf(stderr, "bench_overlay: failed to spawn a member daemon\n");
    stopDaemons(daemons);
    return 1;
  }

  RoutedNetDht::Options ro;
  ro.seed = rpc::NetAddr{rpc::kLoopbackHost, daemons[0].port};
  ro.replication = replication;
  RoutedNetDht dht(ro, [] {
    return std::make_unique<rpc::UdpTransport>(rpc::UdpTransport::Options{});
  });
  // The members may still be mid-join: retry the bootstrap until the
  // client's view holds the whole launch set.
  const auto formDeadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (dht.knownMembers() < nodes &&
         std::chrono::steady_clock::now() < formDeadline) {
    dht.bootstrap(/*deadlineMs=*/2000);
    if (dht.knownMembers() < nodes) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  if (dht.knownMembers() < nodes) {
    std::fprintf(stderr, "bench_overlay: cluster never formed (%zu/%zu)\n",
                 dht.knownMembers(), nodes);
    stopDaemons(daemons);
    return 1;
  }

  // Phase 1: mixed workload, then the measured warm-hop sweep -----------------
  std::map<std::string, std::string> oracle;
  const WorkloadResult warm = runWorkload(dht, ops, seed, oracle);
  const u64 hopsBefore = dht.stats().hops;
  const u64 lookupsBefore = dht.stats().lookups;
  bool warmSweepOk = true;
  for (const auto& [k, v] : oracle) {
    if (!readOk(dht, k, v)) warmSweepOk = false;
  }
  const u64 warmLookups = u64{dht.stats().lookups} - lookupsBefore;
  const u64 warmHops = u64{dht.stats().hops} - hopsBefore;
  const double warmMeanHops =
      warmLookups == 0 ? 0.0
                       : static_cast<double>(warmHops) /
                             static_cast<double>(warmLookups);

  // Phase 2: live join under read load ----------------------------------------
  // The joiner daemon prints its ready line before the join handshake, so
  // the availability loop below runs concurrently with the actual key
  // streaming and ring change, and keeps running until the CLIENT's view
  // has healed to the grown ring (or a generous wall cap).
  Daemon joiner;
  if (!spawnDaemon(noded, overlayArgs(nodes, daemons[0].port), joiner)) {
    std::fprintf(stderr, "bench_overlay: failed to spawn the joiner\n");
    stopDaemons(daemons);
    return 1;
  }
  daemons.push_back(joiner);
  u64 joinReadsOk = 0;
  u64 joinReadsBad = 0;
  std::vector<std::pair<std::string, std::string>> records(oracle.begin(),
                                                           oracle.end());
  const auto joinCap =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  bool joinHealed = false;
  while (true) {
    for (const auto& [k, v] : records) {
      if (readOk(dht, k, v)) {
        joinReadsOk += 1;
      } else {
        joinReadsBad += 1;
      }
    }
    joinHealed = dht.knownMembers() == nodes + 1;
    if (joinHealed || std::chrono::steady_clock::now() > joinCap) break;
  }
  const double joinAvailability =
      joinReadsOk + joinReadsBad == 0
          ? 0.0
          : static_cast<double>(joinReadsOk) /
                static_cast<double>(joinReadsOk + joinReadsBad);
  u64 lostAfterJoin = 0;
  for (const auto& [k, v] : records) {
    if (!eventuallyReads(dht, k, v, 15)) lostAfterJoin += 1;
  }

  // Phase 3: graceful leave ----------------------------------------------------
  // SIGUSR1 the last original member: it streams every key to the new
  // owners, announces Left, and exits 0. Nothing may be lost.
  Daemon& leaver = daemons[nodes - 1];
  ::kill(leaver.pid, SIGUSR1);
  int leaveStatus = -1;
  ::waitpid(leaver.pid, &leaveStatus, 0);
  const bool leaverExitedClean =
      WIFEXITED(leaveStatus) && WEXITSTATUS(leaveStatus) == 0;
  leaver.pid = -1;
  u64 lostAfterLeave = 0;
  for (const auto& [k, v] : records) {
    if (!eventuallyReads(dht, k, v, 15)) lostAfterLeave += 1;
  }

  const auto rs = dht.routedStats();
  stopDaemons(daemons);

  const bool warmHopsOk = warmMeanHops <= 1.2 && warmLookups > 0;
  const bool availabilityOk = joinAvailability >= 0.99 && joinHealed;
  const u64 lostKeys = lostAfterJoin + lostAfterLeave;
  const bool lostKeysOk = lostKeys == 0 && leaverExitedClean;
  const bool oracleOk = warm.oracleOk && warmSweepOk;

  std::ostringstream os;
  os << "{\n"
     << "  \"bench\": \"lht_overlay\",\n"
     << "  \"config\": {\n"
     << "    \"nodes\": " << nodes << ",\n"
     << "    \"ops\": " << ops << ",\n"
     << "    \"replication\": " << replication << ",\n"
     << "    \"seed\": " << seed << "\n"
     << "  },\n"
     << "  \"warm_routing\": {\n"
     << "    \"ops\": " << warm.ops << ",\n"
     << "    \"ops_failed\": " << warm.opsFailed << ",\n"
     << "    \"ns_per_op\": " << warm.nsPerOp << ",\n"
     << "    \"ops_per_sec\": " << warm.opsPerSec << ",\n"
     << "    \"sweep_lookups\": " << warmLookups << ",\n"
     << "    \"sweep_hops\": " << warmHops << ",\n"
     << "    \"mean_hops\": " << warmMeanHops << ",\n"
     << "    \"oracle_ok\": " << (oracleOk ? "true" : "false") << "\n"
     << "  },\n"
     << "  \"live_join\": {\n"
     << "    \"reads_ok\": " << joinReadsOk << ",\n"
     << "    \"reads_bad\": " << joinReadsBad << ",\n"
     << "    \"availability\": " << joinAvailability << ",\n"
     << "    \"view_healed\": " << (joinHealed ? "true" : "false") << ",\n"
     << "    \"lost_keys\": " << lostAfterJoin << "\n"
     << "  },\n"
     << "  \"graceful_leave\": {\n"
     << "    \"leaver_exited_clean\": "
     << (leaverExitedClean ? "true" : "false") << ",\n"
     << "    \"lost_keys\": " << lostAfterLeave << "\n"
     << "  },\n"
     << "  \"client\": {\n"
     << "    \"bootstraps\": " << rs.bootstraps << ",\n"
     << "    \"refreshes\": " << rs.refreshes << ",\n"
     << "    \"redirects_followed\": " << rs.redirectsFollowed << ",\n"
     << "    \"stale_hints\": " << rs.staleHints << ",\n"
     << "    \"retries_after_timeout\": " << rs.retriesAfterTimeout << "\n"
     << "  },\n"
     << "  \"gates\": {\n"
     << "    \"warm_mean_hops\": " << warmMeanHops << ",\n"
     << "    \"warm_mean_hops_ceiling\": 1.2,\n"
     << "    \"warm_hops_ok\": " << (warmHopsOk ? "true" : "false") << ",\n"
     << "    \"join_availability\": " << joinAvailability << ",\n"
     << "    \"join_availability_floor\": 0.99,\n"
     << "    \"availability_ok\": " << (availabilityOk ? "true" : "false")
     << ",\n"
     << "    \"lost_keys\": " << lostKeys << ",\n"
     << "    \"lost_keys_ok\": " << (lostKeysOk ? "true" : "false") << ",\n"
     << "    \"oracle_ok\": " << (oracleOk ? "true" : "false") << "\n"
     << "  }\n"
     << "}\n";

  const std::string outPath = flags.getString("out");
  std::ofstream out(outPath);
  if (!out) {
    std::fprintf(stderr, "bench_overlay: cannot write %s\n", outPath.c_str());
    return 1;
  }
  out << os.str();
  std::cout << os.str();

  if (!oracleOk) {
    std::fprintf(stderr, "bench_overlay: GATE FAILED: oracle verification\n");
    return 4;
  }
  if (!warmHopsOk) {
    std::fprintf(stderr,
                 "bench_overlay: GATE FAILED: warm mean hops %.3f > 1.2\n",
                 warmMeanHops);
    return 5;
  }
  if (!availabilityOk) {
    std::fprintf(
        stderr,
        "bench_overlay: GATE FAILED: join availability %.4f < 0.99 "
        "(healed=%d)\n",
        joinAvailability, joinHealed ? 1 : 0);
    return 6;
  }
  if (!lostKeysOk) {
    std::fprintf(stderr,
                 "bench_overlay: GATE FAILED: %llu keys lost "
                 "(leaver_clean=%d)\n",
                 static_cast<unsigned long long>(lostKeys),
                 leaverExitedClean ? 1 : 0);
    return 7;
  }
  return 0;
}
