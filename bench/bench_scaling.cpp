// Concurrent-fleet scaling sweep (DESIGN.md §10): the SAME mixed
// insert/find/range workload is driven through 1, 2, 4 and 8 concurrent
// clients (one pool worker per client) and the aggregate throughput is
// reported in BOTH time domains:
//
//   ops_per_sim_sec   simulated-time throughput. Each client owns a
//                     private SimClock charged ~10ms per DHT hop by its
//                     LatencyDht, and the fleet's elapsed simulated time
//                     is the MAX over client clocks (the critical path).
//                     Splitting a fixed trace over N clients divides each
//                     clock's share of the work, so this axis measures
//                     real concurrency of the engine and is the primary
//                     scaling metric — deterministic, machine-independent.
//   ops_per_wall_sec  wall-clock throughput, reported for context. On the
//                     single-core CI container it does NOT scale with
//                     threads and is never gated on.
//
// Per-op-kind latency percentiles (p50/p95/p99, simulated ms) come from
// the fleet's merged "fleet.op.*.sim_ms" histograms. The "scaling" block
// asserts threads=8 achieves > 2.5x the threads=1 sim throughput.
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <vector>

#include "common/flags.h"
#include "dht/decorators.h"
#include "dht/local_dht.h"
#include "exec/client_fleet.h"
#include "exec/thread_pool.h"
#include "workload/trace.h"

using namespace lht;

namespace {

struct SweepPoint {
  size_t threads = 0;
  exec::FleetResult result;
};

void emitKind(std::ostream& os, const obs::MetricsRegistry& reg,
              const char* kind, bool& first) {
  const std::string series = std::string("fleet.op.") + kind + ".sim_ms";
  const auto* h = reg.findHistogram(series);
  if (h == nullptr || h->count() == 0) return;
  if (!first) os << ",\n";
  first = false;
  os << "        \"" << kind << "\": {\"count\": " << h->count()
     << ", \"p50\": " << h->quantile(0.50)
     << ", \"p95\": " << h->quantile(0.95)
     << ", \"p99\": " << h->quantile(0.99) << "}";
}

}  // namespace

int main(int argc, char** argv) {
  common::Flags flags("bench_scaling",
                      "Emits BENCH_PR4.json: fleet throughput vs client "
                      "count in the simulated-time domain");
  flags.define("ops", "6000", "operations in the shared trace");
  flags.define("theta", "32", "bucket split threshold");
  flags.define("seed", "41", "workload + decorator seed");
  flags.define("base-ms", "10", "per-hop simulated latency");
  flags.define("jitter-ms", "4", "per-hop simulated jitter");
  flags.define("out", "BENCH_PR4.json", "output path");
  if (!flags.parse(argc, argv)) return 1;

  const size_t ops = static_cast<size_t>(flags.getInt("ops"));
  const common::u64 seed = static_cast<common::u64>(flags.getInt("seed"));
  const common::u64 baseMs = static_cast<common::u64>(flags.getInt("base-ms"));
  const common::u64 jitterMs =
      static_cast<common::u64>(flags.getInt("jitter-ms"));

  workload::TraceMix mix;
  mix.insert = 0.50;
  mix.erase = 0.0;  // grow-only: splits dominate the structural churn
  mix.find = 0.35;
  mix.range = 0.15;
  mix.minmax = 0.0;
  mix.rangeSpan = 0.02;
  const auto trace =
      workload::makeMixedTrace(workload::Distribution::Uniform, ops, mix, seed);

  std::vector<SweepPoint> sweep;
  for (const size_t threads : {1u, 2u, 4u, 8u}) {
    dht::LocalDht base;
    exec::FleetOptions opts;
    opts.clients = threads;
    opts.chunkSize = 16;
    opts.clientSeedBase = 1000 + seed;
    opts.index.thetaSplit = static_cast<common::u32>(flags.getInt("theta"));
    opts.index.crashConsistentSplits = true;  // concurrent splits stay atomic
    exec::ClientFleet fleet(
        [&](size_t i, net::SimClock& clock) {
          exec::ClientStack stack;
          auto latency = std::make_unique<dht::LatencyDht>(
              base, clock,
              dht::LatencyDht::Options{.baseMs = baseMs,
                                       .jitterMs = jitterMs,
                                       .seed = seed * 31 + i});
          stack.top = latency.get();
          stack.layers.push_back(std::move(latency));
          return stack;
        },
        opts);
    exec::WorkStealingPool pool(threads);
    SweepPoint point;
    point.threads = threads;
    point.result = fleet.run(trace, pool);
    std::cerr << "threads=" << threads
              << " sim_ms=" << point.result.elapsedSimMs
              << " wall_ms=" << point.result.elapsedWallMs
              << " steals=" << point.result.steals << "\n";
    sweep.push_back(std::move(point));
  }

  const auto simOpsPerSec = [](const SweepPoint& p) {
    return 1000.0 * static_cast<double>(p.result.opsTotal) /
           static_cast<double>(p.result.elapsedSimMs);
  };
  const double scale = simOpsPerSec(sweep.back()) / simOpsPerSec(sweep.front());
  const double threshold = 2.5;

  std::ostringstream os;
  os.precision(6);
  os << "{\n"
     << "  \"bench\": \"lht_concurrent_scaling\",\n"
     << "  \"config\": {\"ops\": " << ops << ", \"theta\": "
     << flags.getInt("theta") << ", \"seed\": " << seed
     << ", \"base_ms\": " << baseMs << ", \"jitter_ms\": " << jitterMs
     << "},\n"
     << "  \"sweep\": [\n";
  for (size_t i = 0; i < sweep.size(); ++i) {
    const auto& p = sweep[i];
    os << "    {\"threads\": " << p.threads
       << ", \"clients\": " << p.threads
       << ", \"ops\": " << p.result.opsTotal
       << ", \"ops_failed\": " << p.result.opsFailed
       << ", \"steals\": " << p.result.steals << ",\n"
       << "     \"elapsed_sim_ms\": " << p.result.elapsedSimMs
       << ", \"elapsed_wall_ms\": " << p.result.elapsedWallMs << ",\n"
       << "     \"ops_per_sim_sec\": " << simOpsPerSec(p)
       << ", \"ops_per_wall_sec\": "
       << 1000.0 * static_cast<double>(p.result.opsTotal) /
              p.result.elapsedWallMs
       << ",\n"
       << "     \"latency_sim_ms\": {\n";
    bool first = true;
    for (const char* kind : {"insert", "find", "range"}) {
      emitKind(os, p.result.metrics, kind, first);
    }
    os << "\n     }}" << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"scaling\": {\"threads8_vs_1_sim\": " << scale
     << ", \"threshold\": " << threshold
     << ", \"pass\": " << (scale > threshold ? "true" : "false") << "}\n"
     << "}\n";

  const std::string path = flags.getString("out");
  std::ofstream f(path);
  if (!f) {
    std::cerr << "bench_scaling: cannot write " << path << "\n";
    return 1;
  }
  f << os.str();
  std::cout << os.str();
  std::cout << "wrote " << path << "\n";
  if (scale <= threshold) {
    std::cerr << "bench_scaling: FAIL: threads=8 sim speedup " << scale
              << " <= " << threshold << "\n";
    return 1;
  }
  return 0;
}
