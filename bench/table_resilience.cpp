// Resilience overhead tables (beyond the paper, DESIGN.md "Failure model &
// recovery"):
//
//  1. What crash-consistent structural changes cost: the same workload run
//     with legacy (in-memory) splits/merges and with the durable state
//     machines, comparing maintenance DHT-lookups per structural change.
//  2. What lost replies cost the client: a sweep over reply-loss rates with
//     retries + backoff, verifying the index still matches an oracle
//     exactly (idempotence tokens absorb every re-executed mutation) and
//     reporting the retry traffic the loss rate induces.
#include <iostream>
#include <string>

#include "common/csv.h"
#include "common/flags.h"
#include "dht/decorators.h"
#include "dht/local_dht.h"
#include "index/reference_index.h"
#include "lht/lht_index.h"
#include "net/sim_clock.h"
#include "workload/generators.h"

using namespace lht;

namespace {

struct WorkloadResult {
  cost::Counters maintenance;
  common::u64 splits = 0;
  common::u64 merges = 0;
  bool matchesOracle = false;
};

WorkloadResult runWorkload(dht::Dht& substrate, bool durable, size_t ops,
                           common::u32 theta) {
  core::LhtIndex idx(substrate, {.thetaSplit = theta,
                                 .maxDepth = 24,
                                 .crashConsistentSplits = durable});
  index::ReferenceIndex oracle;
  workload::KeyGenerator gen(workload::Distribution::Uniform, 29);

  std::vector<double> keys;
  for (size_t i = 0; i < ops; ++i) {
    index::Record r{gen.next(), "r" + std::to_string(i)};
    idx.insert(r);
    oracle.insert(r);
    keys.push_back(r.key);
  }
  // Erase half the keys so merges are part of the measured traffic too.
  common::Pcg32 rng(31);
  for (size_t i = 0; i < ops / 2; ++i) {
    const size_t pick = rng.below(static_cast<common::u32>(keys.size()));
    idx.erase(keys[pick]);
    oracle.erase(keys[pick]);
  }

  WorkloadResult out;
  out.maintenance = idx.meters().maintenance;
  out.splits = idx.meters().maintenance.splits;
  out.merges = idx.meters().maintenance.merges;
  auto mine = idx.rangeQuery(0.0, 1.0);
  auto truth = oracle.rangeQuery(0.0, 1.0);
  out.matchesOracle = mine.records.size() == truth.records.size();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  common::Flags flags("table_resilience",
                      "overhead of the crash-consistency and retry layers");
  flags.define("ops", "4000", "insert operations per configuration");
  flags.define("theta", "50", "leaf split threshold");
  flags.define("csv", "false", "emit CSV instead of a pretty table");
  if (!flags.parse(argc, argv)) return 1;
  const auto ops = static_cast<size_t>(flags.getInt("ops"));
  const auto theta = static_cast<common::u32>(flags.getInt("theta"));
  const bool csv = flags.getBool("csv");

  // Table 1: durable structural changes vs the paper's bare protocol.
  common::Table t1({"split_mode", "splits", "merges", "maint_lookups",
                    "lookups_per_change", "records_moved", "oracle_ok"});
  for (const bool durable : {false, true}) {
    dht::LocalDht store;
    const WorkloadResult r = runWorkload(store, durable, ops, theta);
    const double changes = static_cast<double>(r.splits + r.merges);
    t1.row()
        .add(std::string(durable ? "crash-consistent" : "legacy"))
        .add(static_cast<common::i64>(r.splits))
        .add(static_cast<common::i64>(r.merges))
        .add(static_cast<common::i64>(r.maintenance.dhtLookups))
        .add(changes == 0.0
                 ? 0.0
                 : static_cast<double>(r.maintenance.dhtLookups) / changes)
        .add(static_cast<common::i64>(r.maintenance.recordsMoved))
        .add(std::string(r.matchesOracle ? "yes" : "NO"));
  }

  // Table 2: reply-loss sweep through the full client stack. Every routed
  // operation may execute and then lose its acknowledgement; the retry
  // layer re-issues it and the bucket op tokens keep effects exactly-once.
  common::Table t2({"loss_rate", "lost_replies", "retries", "exhausted",
                    "backoff_ms", "sim_ms", "oracle_ok"});
  for (const double rate : {0.0, 0.05, 0.10, 0.20}) {
    net::SimClock clock;
    dht::LocalDht store;
    dht::LatencyDht latency(store, clock, {.baseMs = 10, .jitterMs = 5, .seed = 2});
    dht::LostReplyDht lossy(latency, rate, 3);
    dht::RetryingDht::Options ropts;
    ropts.maxAttempts = 16;
    ropts.baseBackoffMs = 20;
    ropts.clock = &clock;
    dht::RetryingDht retrying(lossy, ropts);

    const WorkloadResult r = runWorkload(retrying, /*durable=*/true, ops, theta);
    t2.row()
        .add(rate)
        .add(static_cast<common::i64>(lossy.injectedLostReplies()))
        .add(static_cast<common::i64>(retrying.retries()))
        .add(static_cast<common::i64>(retrying.exhausted()))
        .add(static_cast<common::i64>(retrying.backoffWaitedMs()))
        .add(static_cast<common::i64>(clock.nowMs()))
        .add(std::string(r.matchesOracle ? "yes" : "NO"));
  }

  if (csv) {
    t1.printCsv(std::cout);
    std::cout << "\n";
    t2.printCsv(std::cout);
  } else {
    t1.printPretty(std::cout,
                   "Durable split/merge state machines vs the paper's bare "
                   "protocol (same workload)");
    std::cout << "\n";
    t2.printPretty(std::cout,
                   "Reply-loss sweep: retries + backoff over a lossy "
                   "substrate, crash-consistent index");
  }
  std::cout << "\nexpected: crash-consistent mode costs ~1 extra lookup per "
               "split and ~2 per merge, moves the same records, and stays "
               "oracle-exact; under reply loss retries grow with the rate "
               "while oracle_ok stays yes (idempotence tokens make retried "
               "mutations no-ops)\n";
  return 0;
}
