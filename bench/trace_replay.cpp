// Trace-driven comparison: replays one mixed operation trace (insert /
// erase / find / range / min-max) through every index implementation and
// reports aggregate bandwidth and latency. Traces can also be loaded from
// a file recorded with workload::writeTrace (--trace PATH), making any
// captured workload a reproducible benchmark.
#include <iostream>
#include <memory>

#include "common/csv.h"
#include "common/flags.h"
#include "dht/local_dht.h"
#include "store/durable_engine.h"
#include "dst/dst_index.h"
#include "lht/lht_index.h"
#include "pht/pht_index.h"
#include "rst/rst_index.h"
#include "workload/trace.h"

using namespace lht;

int main(int argc, char** argv) {
  common::Flags flags("trace_replay", "replay one trace through every index");
  flags.define("ops", "20000", "operations in the generated trace");
  flags.define("dist", "uniform", "uniform | gaussian | zipf");
  flags.define("trace", "", "path of a recorded trace to replay instead");
  flags.define("csv", "false", "emit CSV instead of a pretty table");
  flags.define("durable", "",
               "back the LHT row with a durable bucket store (WAL + "
               "snapshots) at this directory; state survives across runs "
               "(empty = in-memory)");
  if (!flags.parse(argc, argv)) return 1;

  std::vector<workload::Operation> ops;
  if (!flags.getString("trace").empty()) {
    auto loaded = workload::readTrace(flags.getString("trace"));
    if (!loaded) {
      std::cerr << "cannot read trace: " << flags.getString("trace") << "\n";
      return 1;
    }
    ops = std::move(*loaded);
  } else {
    workload::TraceMix mix;
    mix.insert = 0.55;
    mix.erase = 0.1;
    mix.find = 0.2;
    mix.range = 0.13;
    mix.minmax = 0.02;
    ops = workload::makeMixedTrace(
        workload::parseDistribution(flags.getString("dist")),
        static_cast<size_t>(flags.getInt("ops")), mix, 7);
  }

  common::Table t({"index", "total_lookups", "maint_lookups", "total_steps",
                   "records_returned", "final_records"});
  auto report = [&](const std::string& name, index::OrderedIndex& idx) {
    auto s = workload::replay(idx, ops);
    t.row()
        .add(name)
        .add(static_cast<common::i64>(s.totals.dhtLookups))
        .add(static_cast<common::i64>(idx.meters().maintenance.dhtLookups))
        .add(static_cast<common::i64>(s.totals.parallelSteps))
        .add(static_cast<common::i64>(s.recordsReturned))
        .add(static_cast<common::i64>(idx.recordCount()));
  };

  {
    const std::string durableDir = flags.getString("durable");
    std::unique_ptr<dht::LocalDht> d;
    bool attach = false;
    if (!durableDir.empty()) {
      store::DurableOptions o;
      o.dir = durableDir;
      auto engine = std::make_unique<store::DurableEngine>(std::move(o));
      const auto& r = engine->recoveryInfo();
      attach = engine->size() > 0;  // resume the index a prior run built
      std::cerr << "durable store " << durableDir << ": recovered "
                << engine->size() << " buckets (snapshot lsn "
                << r.snapshotLsn << ", " << r.replayedRecords
                << " WAL records replayed)\n";
      d = std::make_unique<dht::LocalDht>(std::move(engine));
    } else {
      d = std::make_unique<dht::LocalDht>();
    }
    core::LhtIndex idx(
        *d, {.thetaSplit = 100, .maxDepth = 22, .attachExisting = attach});
    report("LHT", idx);
    if (!durableDir.empty()) d->compactStorage();  // seal: snapshot + truncate
  }
  {
    dht::LocalDht d;
    pht::PhtIndex::Options o;
    o.thetaSplit = 100;
    o.maxDepth = 22;
    o.rangeMode = pht::PhtIndex::RangeMode::Sequential;
    pht::PhtIndex idx(d, o);
    report("PHT(seq)", idx);
  }
  {
    dht::LocalDht d;
    pht::PhtIndex::Options o;
    o.thetaSplit = 100;
    o.maxDepth = 22;
    o.rangeMode = pht::PhtIndex::RangeMode::Parallel;
    pht::PhtIndex idx(d, o);
    report("PHT(par)", idx);
  }
  {
    dht::LocalDht d;
    dst::DstIndex idx(d, {.depth = 14});
    report("DST", idx);
  }
  {
    dht::LocalDht d;
    rst::RstIndex::Options o;
    o.thetaSplit = 100;
    o.maxDepth = 22;
    o.peerCount = 64;
    rst::RstIndex idx(d, o);
    report("RST N=64", idx);
  }

  if (flags.getBool("csv")) {
    t.printCsv(std::cout);
  } else {
    t.printPretty(std::cout, "Mixed-trace replay (" + std::to_string(ops.size()) +
                                 " ops, " + flags.getString("dist") + ")");
  }
  std::cout << "\nnote: records_returned is identical across rows — every "
               "implementation answers the trace exactly; only the cost "
               "columns differ\n";
  return 0;
}
