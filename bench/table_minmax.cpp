// Reproduces Theorem 3 (paper Sec. 7) as a measured table: min/max queries
// cost exactly one DHT-lookup in LHT regardless of data size, vs the
// baseline's binary-search cost.
#include <iostream>

#include "common/csv.h"
#include "common/flags.h"
#include "sim/experiment.h"

using namespace lht;

namespace {

struct MinMaxCost {
  double minLookups = 0.0;
  double maxLookups = 0.0;
};

MinMaxCost measure(sim::IndexKind kind, size_t n, int repeats) {
  MinMaxCost out;
  for (int rep = 0; rep < repeats; ++rep) {
    sim::ExperimentConfig cfg;
    cfg.kind = kind;
    cfg.dataSize = n;
    cfg.theta = 100;
    cfg.maxDepth = 24;
    cfg.seed = static_cast<common::u64>(rep + 1);
    sim::Experiment exp(cfg);
    exp.build();
    out.minLookups += static_cast<double>(exp.idx().minRecord().stats.dhtLookups);
    out.maxLookups += static_cast<double>(exp.idx().maxRecord().stats.dhtLookups);
  }
  out.minLookups /= repeats;
  out.maxLookups /= repeats;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  common::Flags flags("table_minmax", "Theorem 3: min/max query cost");
  flags.define("repeats", "3", "independent datasets per point");
  flags.define("csv", "false", "emit CSV instead of a pretty table");
  if (!flags.parse(argc, argv)) return 1;
  const int repeats = static_cast<int>(flags.getInt("repeats"));

  common::Table t({"data_size", "lht_min", "lht_max", "pht_min", "pht_max"});
  for (int p = 10; p <= 16; p += 2) {
    const size_t n = size_t{1} << p;
    auto lht = measure(sim::IndexKind::Lht, n, repeats);
    auto pht = measure(sim::IndexKind::PhtSequential, n, repeats);
    t.row()
        .add(static_cast<common::i64>(n))
        .add(lht.minLookups)
        .add(lht.maxLookups)
        .add(pht.minLookups)
        .add(pht.maxLookups);
  }
  if (flags.getBool("csv")) {
    t.printCsv(std::cout);
  } else {
    t.printPretty(std::cout, "Theorem 3: DHT-lookups per min/max query");
  }
  std::cout << "\npaper claim: LHT min/max = exactly 1 DHT-lookup at any data "
               "size; the baseline pays its ~log D lookup\n";
  return 0;
}
