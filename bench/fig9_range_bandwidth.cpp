// Reproduces Fig. 9 (paper Sec. 9.4): range-query bandwidth — DHT-lookups
// per range query — for LHT, PHT(sequential) and PHT(parallel).
//
//  Fig. 9a: vs data size at a fixed span.
//  Fig. 9b: vs range span at a fixed data size.
//
// Paper claims: PHT(parallel) is the most expensive; LHT and PHT(sequential)
// are near-optimal and nearly tied, LHT slightly lower.
#include <iostream>

#include "common/csv.h"
#include "common/flags.h"
#include "sim/experiment.h"

using namespace lht;

namespace {

double avgRangeLookups(sim::IndexKind kind, workload::Distribution dist,
                       size_t n, double span, size_t queries, int repeats) {
  double sum = 0.0;
  for (int rep = 0; rep < repeats; ++rep) {
    sim::ExperimentConfig cfg;
    cfg.kind = kind;
    cfg.dist = dist;
    cfg.dataSize = n;
    cfg.theta = 100;
    cfg.maxDepth = 24;
    cfg.seed = static_cast<common::u64>(rep + 1);
    sim::Experiment exp(cfg);
    exp.build();
    sum += exp.measureRanges(span, queries).dhtLookups;
  }
  return sum / repeats;
}

}  // namespace

int main(int argc, char** argv) {
  common::Flags flags("fig9_range_bandwidth", "Fig. 9: range-query bandwidth");
  flags.define("repeats", "3", "independent datasets per point");
  flags.define("queries", "100", "range queries per dataset");
  flags.define("span", "0.1", "fixed span for the data-size sweep");
  flags.define("minpow", "10", "smallest data size = 2^minpow");
  flags.define("maxpow", "15", "largest data size = 2^maxpow");
  flags.define("sizepow", "14", "fixed data size = 2^sizepow for the span sweep");
  flags.define("dist", "uniform", "uniform | gaussian | zipf");
  flags.define("csv", "false", "emit CSV instead of a pretty table");
  if (!flags.parse(argc, argv)) return 1;
  const int repeats = static_cast<int>(flags.getInt("repeats"));
  const auto queries = static_cast<size_t>(flags.getInt("queries"));
  const auto dist = workload::parseDistribution(flags.getString("dist"));
  const double span = flags.getDouble("span");

  common::Table a({"data_size", "lht", "pht_seq", "pht_par"});
  for (int p = static_cast<int>(flags.getInt("minpow"));
       p <= static_cast<int>(flags.getInt("maxpow")); ++p) {
    const size_t n = size_t{1} << p;
    a.row()
        .add(static_cast<common::i64>(n))
        .add(avgRangeLookups(sim::IndexKind::Lht, dist, n, span, queries, repeats))
        .add(avgRangeLookups(sim::IndexKind::PhtSequential, dist, n, span, queries, repeats))
        .add(avgRangeLookups(sim::IndexKind::PhtParallel, dist, n, span, queries, repeats));
  }

  common::Table b({"span", "lht", "pht_seq", "pht_par"});
  const size_t fixedN = size_t{1} << flags.getInt("sizepow");
  for (double s : {0.015625, 0.03125, 0.0625, 0.125, 0.25, 0.5}) {
    b.row()
        .add(s)
        .add(avgRangeLookups(sim::IndexKind::Lht, dist, fixedN, s, queries, repeats))
        .add(avgRangeLookups(sim::IndexKind::PhtSequential, dist, fixedN, s, queries, repeats))
        .add(avgRangeLookups(sim::IndexKind::PhtParallel, dist, fixedN, s, queries, repeats));
  }

  if (flags.getBool("csv")) {
    a.printCsv(std::cout);
    std::cout << "\n";
    b.printCsv(std::cout);
  } else {
    a.printPretty(std::cout, "Fig. 9a (" + flags.getString("dist") +
                                 "): DHT-lookups per range query vs data size, span=" +
                                 flags.getString("span"));
    std::cout << "\n";
    b.printPretty(std::cout, "Fig. 9b (" + flags.getString("dist") +
                                 "): DHT-lookups per range query vs span, n=2^" +
                                 flags.getString("sizepow"));
  }
  std::cout << "\npaper claim: pht_par highest; lht <= pht_seq, both near the "
               "optimal B lookups\n";
  return 0;
}
