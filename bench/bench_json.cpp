// Machine-readable perf baseline for the client-side features introduced
// with the batched pipeline: leaf-location cache, decoded-bucket store,
// and batched range fan-out. Runs the SAME workload twice in one process —
// once with everything off (paper-faithful engine) and once with
// everything on — and emits both sides plus the speedups as JSON, so CI
// can diff against the committed BENCH_PR2.json without parsing tables.
//
// Metrics per phase:
//   lookup    exact-match finds: avg DHT-lookups, avg rounds, wall ns/op
//   range     fixed-span queries: avg DHT-lookups, avg rounds, max rounds,
//             max B+3 bound (rounds must stay within it), wall ns/op
//   bulk      one insertBatch of fresh records into a built index: wall
//             ns/record and DHT batch rounds used
//
// Each side also carries a "cost_attribution" block: the ambient metrics
// registry (per-op counters/histograms, see DESIGN.md §9) plus the paper's
// cost model pricing of the measured category meters. With --trace=PATH the
// whole run additionally records a causal op trace and writes it as Chrome
// trace-event JSON (load in chrome://tracing or ui.perfetto.dev). Tracing
// adds per-op span bookkeeping, so traced ns/op numbers are for inspection,
// not for baseline comparison.
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/flags.h"
#include "common/random.h"
#include "cost/cost_model.h"
#include "dht/local_dht.h"
#include "lht/lht_index.h"
#include "obs/obs.h"
#include "workload/generators.h"

using namespace lht;

namespace {

using Clock = std::chrono::steady_clock;

struct PhaseStats {
  double dhtLookups = 0.0;  ///< mean per operation
  double rounds = 0.0;      ///< mean parallelSteps per operation
  double nsPerOp = 0.0;
  common::u64 maxRounds = 0;
  common::u64 maxBound = 0;  ///< max over queries of bucketsTouched + 3
};

struct Config {
  size_t n = 0;
  common::u32 theta = 0;
  size_t lookups = 0;
  size_t rangeQueries = 0;
  double span = 0.0;
  size_t bulk = 0;
  common::u64 seed = 0;
};

core::LhtIndex::Options indexOpts(const Config& cfg, bool optimized) {
  core::LhtIndex::Options o;
  o.thetaSplit = cfg.theta;
  o.useLeafCache = optimized;
  o.cacheDecodedBuckets = optimized;
  o.batchFanout = optimized;
  return o;
}

PhaseStats measureLookups(core::LhtIndex& idx, const Config& cfg) {
  // One untimed warm pass so the optimized side measures the steady state
  // (cache populated), not the fill; the baseline is unaffected.
  common::Pcg32 warm(cfg.seed ^ 0xF00Dull, /*stream=*/7);
  for (size_t i = 0; i < cfg.lookups; ++i) idx.find(warm.nextDouble());

  common::Pcg32 rng(cfg.seed ^ 0xF00Dull, /*stream=*/7);
  PhaseStats out;
  const auto t0 = Clock::now();
  for (size_t i = 0; i < cfg.lookups; ++i) {
    auto res = idx.find(rng.nextDouble());
    out.dhtLookups += static_cast<double>(res.stats.dhtLookups);
    out.rounds += static_cast<double>(res.stats.parallelSteps);
  }
  const auto t1 = Clock::now();
  const double n = static_cast<double>(cfg.lookups);
  out.dhtLookups /= n;
  out.rounds /= n;
  out.nsPerOp = static_cast<double>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                        .count()) /
                n;
  return out;
}

PhaseStats measureRanges(core::LhtIndex& idx, const Config& cfg) {
  common::Pcg32 rng(cfg.seed ^ 0xBEEFull, /*stream=*/11);
  PhaseStats out;
  const auto t0 = Clock::now();
  for (size_t i = 0; i < cfg.rangeQueries; ++i) {
    const auto spec = workload::makeRange(cfg.span, rng);
    auto res = idx.rangeQuery(spec.lo, spec.hi);
    out.dhtLookups += static_cast<double>(res.stats.dhtLookups);
    out.rounds += static_cast<double>(res.stats.parallelSteps);
    out.maxRounds = std::max(out.maxRounds, res.stats.parallelSteps);
    out.maxBound = std::max(out.maxBound, res.stats.bucketsTouched + 3);
  }
  const auto t1 = Clock::now();
  const double n = static_cast<double>(cfg.rangeQueries);
  out.dhtLookups /= n;
  out.rounds /= n;
  out.nsPerOp = static_cast<double>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                        .count()) /
                n;
  return out;
}

/// Bulk-loads `cfg.bulk` fresh records into an index already holding the
/// base dataset. Returns {ns per record, DHT batch rounds used}.
std::pair<double, common::u64> measureBulk(const Config& cfg, bool optimized) {
  dht::LocalDht store;
  core::LhtIndex idx(store, indexOpts(cfg, optimized));
  for (const auto& r : workload::makeDataset(workload::Distribution::Uniform,
                                             cfg.n, cfg.seed)) {
    idx.insert(r);
  }
  auto fresh = workload::makeDataset(workload::Distribution::Uniform, cfg.bulk,
                                     cfg.seed ^ 0xB01Dull);
  const auto before = store.stats().batchRounds;
  const auto t0 = Clock::now();
  auto result = idx.insertBatch(std::move(fresh));
  const auto t1 = Clock::now();
  if (!result.ok) {
    std::cerr << "bench_json: bulk load failed\n";
    std::exit(1);
  }
  const double ns = static_cast<double>(
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            t1 - t0)
                            .count()) /
                    static_cast<double>(cfg.bulk);
  return {ns, store.stats().batchRounds - before};
}

/// Rebuilds the category meters from the ambient registry's lht.cost.*
/// counters; the conformance suite asserts these track MeterSet exactly.
cost::MeterSet metersFromRegistry(const obs::MetricsRegistry& reg) {
  cost::MeterSet m;
  m.insertion.dhtLookups = reg.counterValue("lht.cost.insertion.dht_lookups");
  m.insertion.recordsMoved =
      reg.counterValue("lht.cost.insertion.records_moved");
  m.maintenance.dhtLookups =
      reg.counterValue("lht.cost.maintenance.dht_lookups");
  m.maintenance.recordsMoved =
      reg.counterValue("lht.cost.maintenance.records_moved");
  m.maintenance.splits = reg.counterValue("lht.cost.maintenance.splits");
  m.maintenance.merges = reg.counterValue("lht.cost.maintenance.merges");
  m.query.dhtLookups = reg.counterValue("lht.cost.query.dht_lookups");
  return m;
}

void emitCostAttribution(std::ostream& os, const obs::MetricsRegistry& reg,
                         const Config& cfg) {
  const cost::CostModel model{1.0, 1.0, cfg.theta};
  const auto b = model.breakdown(metersFromRegistry(reg));
  os << "    \"cost_attribution\": {\n"
     << "      \"model\": {\"i\": " << model.i << ", \"j\": " << model.j
     << ", \"theta\": " << model.thetaSplit
     << ", \"psi_lht\": " << model.psiLht() << "},\n"
     << "      \"breakdown\": {\"insertion\": " << b.insertion
     << ", \"maintenance\": " << b.maintenance << ", \"query\": " << b.query
     << ", \"total\": " << b.total
     << ", \"maintenance_per_split\": " << b.maintenancePerSplit << "},\n"
     << "      \"metrics\":\n";
  reg.writeJson(os, "      ");
  os << "\n    }\n";
}

void emitPhase(std::ostream& os, const char* indent, const PhaseStats& s,
               bool withBound) {
  os << indent << "\"dht_lookups_per_op\": " << s.dhtLookups << ",\n"
     << indent << "\"rounds_per_op\": " << s.rounds << ",\n";
  if (withBound) {
    os << indent << "\"max_rounds\": " << s.maxRounds << ",\n"
       << indent << "\"max_b_plus_3\": " << s.maxBound << ",\n";
  }
  os << indent << "\"ns_per_op\": " << s.nsPerOp << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  common::Flags flags("bench_json",
                      "Emits BENCH_PR2.json: baseline vs cached+batched "
                      "client, measured in one run");
  flags.define("n", "16384", "records in the base dataset");
  flags.define("theta", "100", "bucket split threshold");
  flags.define("lookups", "20000", "exact-match finds per side");
  flags.define("ranges", "300", "range queries per side");
  flags.define("span", "0.05", "range-query span");
  flags.define("bulk", "8192", "records per insertBatch for the bulk phase");
  flags.define("seed", "1", "workload seed");
  flags.define("out", "BENCH_PR2.json", "output path");
  flags.define("trace", "",
               "write a Chrome trace-event JSON of the whole run to this "
               "path (empty = tracing off)");
  if (!flags.parse(argc, argv)) return 1;

  Config cfg;
  cfg.n = static_cast<size_t>(flags.getInt("n"));
  cfg.theta = static_cast<common::u32>(flags.getInt("theta"));
  cfg.lookups = static_cast<size_t>(flags.getInt("lookups"));
  cfg.rangeQueries = static_cast<size_t>(flags.getInt("ranges"));
  cfg.span = flags.getDouble("span");
  cfg.bulk = static_cast<size_t>(flags.getInt("bulk"));
  cfg.seed = static_cast<common::u64>(flags.getInt("seed"));

  const auto dataset =
      workload::makeDataset(workload::Distribution::Uniform, cfg.n, cfg.seed);

  const std::string tracePath = flags.getString("trace");
  obs::Tracer tracerStore;
  obs::Tracer* tracerPtr = tracePath.empty() ? nullptr : &tracerStore;

  PhaseStats lookup[2], range[2];
  double bulkNs[2];
  common::u64 bulkRounds[2];
  obs::MetricsRegistry reg[2];
  for (int side = 0; side < 2; ++side) {
    const bool optimized = side == 1;
    obs::ScopedObservability install(&reg[side], tracerPtr);
    obs::SpanScope sideSpan(optimized ? "bench.optimized" : "bench.baseline",
                            "bench");
    dht::LocalDht store;
    core::LhtIndex idx(store, indexOpts(cfg, optimized));
    for (const auto& r : dataset) idx.insert(r);
    lookup[side] = measureLookups(idx, cfg);
    range[side] = measureRanges(idx, cfg);
    std::tie(bulkNs[side], bulkRounds[side]) = measureBulk(cfg, optimized);
  }

  std::ostringstream os;
  os.precision(6);
  os << "{\n"
     << "  \"bench\": \"lht_client_features\",\n"
     << "  \"config\": {\"n\": " << cfg.n << ", \"theta\": " << cfg.theta
     << ", \"lookups\": " << cfg.lookups << ", \"ranges\": " << cfg.rangeQueries
     << ", \"span\": " << cfg.span << ", \"bulk\": " << cfg.bulk
     << ", \"seed\": " << cfg.seed << "},\n";
  for (int side = 0; side < 2; ++side) {
    const char* name = side == 0 ? "baseline" : "optimized";
    os << "  \"" << name << "\": {\n"
       << "    \"lookup\": {\n";
    emitPhase(os, "      ", lookup[side], false);
    os << "    },\n"
       << "    \"range\": {\n";
    emitPhase(os, "      ", range[side], true);
    os << "    },\n"
       << "    \"bulk\": {\"ns_per_record\": " << bulkNs[side]
       << ", \"batch_rounds\": " << bulkRounds[side] << "},\n";
    emitCostAttribution(os, reg[side], cfg);
    os << "  },\n";
  }
  os << "  \"speedup\": {\n"
     << "    \"lookup_ns\": " << lookup[0].nsPerOp / lookup[1].nsPerOp << ",\n"
     << "    \"lookup_dht\": " << lookup[0].dhtLookups / lookup[1].dhtLookups
     << ",\n"
     << "    \"range_ns\": " << range[0].nsPerOp / range[1].nsPerOp << ",\n"
     << "    \"range_rounds\": " << range[0].rounds / range[1].rounds << ",\n"
     << "    \"bulk_ns\": " << bulkNs[0] / bulkNs[1] << "\n"
     << "  },\n"
     << "  \"range_bound_holds\": "
     << (range[1].maxRounds <= range[1].maxBound ? "true" : "false") << "\n"
     << "}\n";

  const std::string path = flags.getString("out");
  std::ofstream f(path);
  if (!f) {
    std::cerr << "bench_json: cannot write " << path << "\n";
    return 1;
  }
  f << os.str();
  std::cout << os.str();
  std::cout << "wrote " << path << "\n";

  if (tracerPtr != nullptr) {
    std::ofstream tf(tracePath);
    if (!tf) {
      std::cerr << "bench_json: cannot write " << tracePath << "\n";
      return 1;
    }
    tracerPtr->writeChromeTrace(tf);
    std::cout << "wrote " << tracePath << " ("
              << tracerPtr->spans().size() << " spans)\n";
  }
  return 0;
}
