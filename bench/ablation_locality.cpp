// Ablation (paper Sec. 2): the over-DHT paradigm vs the locality-
// preserving (LSH) paradigm. LPR gets range queries almost for free but
// "DHTs with LSH have to sacrifice their load balance": under skewed keys
// the dense-arc peers drown. LHT pays a small tree overhead and keeps the
// uniform-hash balance at any skew.
#include <algorithm>
#include <iostream>
#include <map>

#include "common/csv.h"
#include "common/flags.h"
#include "dht/chord.h"
#include "lht/lht_index.h"
#include "lht/naming.h"
#include "lpr/lpr_index.h"
#include "net/sim_network.h"
#include "workload/generators.h"

using namespace lht;

namespace {

/// Max share of all records stored on one Chord peer under LHT.
double lhtMaxPeerShare(workload::Distribution dist, size_t n, size_t peers) {
  net::SimNetwork net;
  dht::ChordDht::Options dopts;
  dopts.initialPeers = peers;
  dopts.virtualNodes = 8;
  dht::ChordDht dht(net, dopts);
  core::LhtIndex idx(dht, {.thetaSplit = 100, .maxDepth = 28});
  idx.insertBatch(workload::makeDataset(dist, n, 1));

  std::map<common::u64, size_t> perRingPoint;
  idx.forEachBucket([&](const core::LeafBucket& b) {
    perRingPoint[dht.ownerOf(core::dhtKeyFor(b.label))] += b.records.size();
  });
  size_t best = 0;
  for (const auto& [id, cnt] : perRingPoint) best = std::max(best, cnt);
  return static_cast<double>(best) / static_cast<double>(n);
}

double lprMaxPeerShare(workload::Distribution dist, size_t n, size_t peers) {
  lpr::LprIndex idx({.peers = peers, .seed = 1});
  for (const auto& r : workload::makeDataset(dist, n, 1)) idx.insert(r);
  return idx.maxPeerShare();
}

double lprRangeCost(workload::Distribution dist, size_t n, size_t peers) {
  lpr::LprIndex idx({.peers = peers, .seed = 1});
  for (const auto& r : workload::makeDataset(dist, n, 1)) idx.insert(r);
  common::Pcg32 rng(2);
  double total = 0;
  for (int q = 0; q < 100; ++q) {
    auto spec = workload::makeRange(0.1, rng);
    total += static_cast<double>(idx.rangeQuery(spec.lo, spec.hi).stats.dhtLookups);
  }
  return total / 100.0;
}

}  // namespace

int main(int argc, char** argv) {
  common::Flags flags("ablation_locality",
                      "over-DHT (LHT) vs locality-preserving (LPR) paradigm");
  flags.define("datasize", "16384", "records inserted");
  flags.define("peers", "32", "peers per configuration");
  flags.define("csv", "false", "emit CSV instead of a pretty table");
  if (!flags.parse(argc, argv)) return 1;
  const auto n = static_cast<size_t>(flags.getInt("datasize"));
  const auto peers = static_cast<size_t>(flags.getInt("peers"));
  const double fair = 1.0 / static_cast<double>(peers);

  common::Table t({"dist", "lht_max_share", "lpr_max_share", "fair_share",
                   "lpr_range_lookups"});
  for (auto dist : {workload::Distribution::Uniform, workload::Distribution::Gaussian,
                    workload::Distribution::Zipf}) {
    t.row()
        .add(workload::distributionName(dist))
        .add(lhtMaxPeerShare(dist, n, peers))
        .add(lprMaxPeerShare(dist, n, peers))
        .add(fair)
        .add(lprRangeCost(dist, n, peers));
  }
  if (flags.getBool("csv")) {
    t.printCsv(std::cout);
  } else {
    t.printPretty(std::cout, "Paradigm ablation: storage balance vs key skew (n=" +
                                 std::to_string(n) + ", " +
                                 std::to_string(peers) + " peers)");
  }
  std::cout << "\nexpected: LHT's max share stays near the fair share at any "
               "skew (uniform hashing of bucket names); LPR's explodes under "
               "gaussian/zipf keys even though its range queries are cheap — "
               "the paper's argument for staying over the DHT\n";
  return 0;
}
