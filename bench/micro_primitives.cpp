// Google-benchmark micro-benchmarks on the hot primitives: the naming
// functions, label algebra, bucket serialization, and end-to-end index
// operations on a warm LocalDht. These quantify the CPU-side cost of the
// scheme (the paper's metrics are bandwidth; this shows compute is trivial).
#include <benchmark/benchmark.h>

#include "common/hash.h"
#include "common/random.h"
#include "dht/local_dht.h"
#include "lht/bucket.h"
#include "lht/lht_index.h"
#include "lht/naming.h"
#include "lht/zorder.h"
#include "obs/obs.h"
#include "pht/pht_index.h"
#include "workload/generators.h"

using namespace lht;
using common::Label;

namespace {

Label randomLeaf(common::Pcg32& rng, common::u32 depth) {
  Label l = Label::root();
  while (l.length() < depth) l = l.child(static_cast<int>(rng.below(2)));
  return l;
}

void BM_NamingFunction(benchmark::State& state) {
  common::Pcg32 rng(1);
  std::vector<Label> leaves;
  for (int i = 0; i < 1024; ++i) leaves.push_back(randomLeaf(rng, 20));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::name(leaves[i++ & 1023]));
  }
}
BENCHMARK(BM_NamingFunction);

void BM_RightNeighbor(benchmark::State& state) {
  common::Pcg32 rng(2);
  std::vector<Label> leaves;
  for (int i = 0; i < 1024; ++i) leaves.push_back(randomLeaf(rng, 20));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::rightNeighbor(leaves[i++ & 1023]));
  }
}
BENCHMARK(BM_RightNeighbor);

void BM_LabelFromKey(benchmark::State& state) {
  common::Pcg32 rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Label::fromKey(rng.nextDouble(), 20));
  }
}
BENCHMARK(BM_LabelFromKey);

void BM_XxHash64Key(benchmark::State& state) {
  std::string key = "#01101001110";
  for (auto _ : state) {
    benchmark::DoNotOptimize(common::hash::xxhash64(key));
  }
}
BENCHMARK(BM_XxHash64Key);

void BM_BucketSerializeRoundTrip(benchmark::State& state) {
  core::LeafBucket b{*Label::parse("#0110"), {}};
  common::Pcg32 rng(4);
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    b.records.push_back({0.75 + rng.nextDouble() / 8, "payload-" + std::to_string(i)});
  }
  for (auto _ : state) {
    auto bytes = b.serialize();
    auto back = core::LeafBucket::deserialize(bytes);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_BucketSerializeRoundTrip)->Arg(10)->Arg(100);

void BM_LhtInsert(benchmark::State& state) {
  dht::LocalDht d;
  core::LhtIndex idx(d, {.thetaSplit = 100, .maxDepth = 24});
  common::Pcg32 rng(5);
  for (auto _ : state) {
    idx.insert({rng.nextDouble(), "x"});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LhtInsert);

void BM_LhtFindWarm(benchmark::State& state) {
  dht::LocalDht d;
  core::LhtIndex idx(d, {.thetaSplit = 100, .maxDepth = 24});
  auto data = workload::makeDataset(workload::Distribution::Uniform, 1 << 14, 6);
  for (const auto& r : data) idx.insert(r);
  common::Pcg32 rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx.find(rng.nextDouble()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LhtFindWarm);

// Same workload as BM_LhtFindWarm with observability sinks installed:
// the delta against the plain bench is the enabled-instrumentation cost
// (metrics only, then metrics + span tracing). BM_LhtFindWarm itself runs
// with nothing installed and must stay within 2% of its pre-obs baseline.
void BM_LhtFindWarmObs(benchmark::State& state) {
  dht::LocalDht d;
  core::LhtIndex idx(d, {.thetaSplit = 100, .maxDepth = 24});
  auto data = workload::makeDataset(workload::Distribution::Uniform, 1 << 14, 6);
  for (const auto& r : data) idx.insert(r);
  common::Pcg32 rng(7);
  obs::MetricsRegistry reg;
  obs::Tracer tracer;
  const bool trace = state.range(0) != 0;
  obs::ScopedObservability install(&reg, trace ? &tracer : nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx.find(rng.nextDouble()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LhtFindWarmObs)->Arg(0)->Arg(1);

void BM_LhtRangeQueryWarm(benchmark::State& state) {
  dht::LocalDht d;
  core::LhtIndex idx(d, {.thetaSplit = 100, .maxDepth = 24});
  auto data = workload::makeDataset(workload::Distribution::Uniform, 1 << 14, 8);
  for (const auto& r : data) idx.insert(r);
  common::Pcg32 rng(9);
  for (auto _ : state) {
    auto spec = workload::makeRange(0.05, rng);
    benchmark::DoNotOptimize(idx.rangeQuery(spec.lo, spec.hi));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LhtRangeQueryWarm);

void BM_ZOrderEncode(benchmark::State& state) {
  common::Pcg32 rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::zEncode(rng.nextDouble(), rng.nextDouble(), 12));
  }
}
BENCHMARK(BM_ZOrderEncode);

void BM_NextName(benchmark::State& state) {
  common::Pcg32 rng(12);
  std::vector<Label> mus;
  for (int i = 0; i < 1024; ++i) mus.push_back(Label::fromKey(rng.nextDouble(), 24));
  size_t i = 0;
  for (auto _ : state) {
    const Label& mu = mus[i++ & 1023];
    benchmark::DoNotOptimize(core::nextName(mu.prefix(6), mu));
  }
}
BENCHMARK(BM_NextName);

void BM_LhtLookupHintedWarm(benchmark::State& state) {
  dht::LocalDht d;
  core::LhtIndex idx(
      d, {.thetaSplit = 100, .maxDepth = 24, .useDepthHint = true});
  auto data = workload::makeDataset(workload::Distribution::Uniform, 1 << 14, 13);
  for (const auto& r : data) idx.insert(r);
  common::Pcg32 rng(14);
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx.lookup(rng.nextDouble()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LhtLookupHintedWarm);

void BM_PhtInsert(benchmark::State& state) {
  dht::LocalDht d;
  pht::PhtIndex::Options o;
  o.thetaSplit = 100;
  o.maxDepth = 24;
  pht::PhtIndex idx(d, o);
  common::Pcg32 rng(10);
  for (auto _ : state) {
    idx.insert({rng.nextDouble(), "x"});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PhtInsert);

}  // namespace
