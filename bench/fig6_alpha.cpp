// Reproduces Fig. 6 (paper Sec. 9.2): the average split fraction alpha.
//
//  Fig. 6a: average alpha vs data size, theta_split in {40, 160},
//           uniform and gaussian data.
//  Fig. 6b: average alpha vs theta_split at a fixed data size.
//
// Paper claim: alpha approaches 1/2; with the leaf label occupying one
// record slot the uniform-data value is exactly 1/2 + 1/(2 theta).
#include <iostream>

#include "common/csv.h"
#include "common/flags.h"
#include "sim/experiment.h"

using namespace lht;

namespace {

double averageAlpha(sim::IndexKind kind, workload::Distribution dist, size_t n,
                    common::u32 theta, int repeats) {
  double sum = 0.0;
  for (int rep = 0; rep < repeats; ++rep) {
    sim::ExperimentConfig cfg;
    cfg.kind = kind;
    cfg.dist = dist;
    cfg.dataSize = n;
    cfg.theta = theta;
    cfg.maxDepth = 26;
    cfg.seed = static_cast<common::u64>(rep + 1);
    sim::Experiment exp(cfg);
    exp.build();
    sum += exp.meters().alpha.mean();
  }
  return sum / repeats;
}

}  // namespace

int main(int argc, char** argv) {
  common::Flags flags("fig6_alpha", "Fig. 6: average alpha of LHT splits");
  flags.define("repeats", "3", "independent datasets per point");
  flags.define("minpow", "9", "smallest data size = 2^minpow");
  flags.define("maxpow", "15", "largest data size = 2^maxpow");
  flags.define("csv", "false", "emit CSV instead of a pretty table");
  if (!flags.parse(argc, argv)) return 1;
  const int repeats = static_cast<int>(flags.getInt("repeats"));
  const int minPow = static_cast<int>(flags.getInt("minpow"));
  const int maxPow = static_cast<int>(flags.getInt("maxpow"));

  // Fig. 6a: alpha vs data size.
  common::Table a({"data_size", "uniform_t40", "uniform_t160", "gaussian_t40",
                   "gaussian_t160", "closed_form_t40", "closed_form_t160"});
  for (int p = minPow; p <= maxPow; ++p) {
    const size_t n = size_t{1} << p;
    a.row()
        .add(static_cast<common::i64>(n))
        .add(averageAlpha(sim::IndexKind::Lht, workload::Distribution::Uniform, n, 40, repeats))
        .add(averageAlpha(sim::IndexKind::Lht, workload::Distribution::Uniform, n, 160, repeats))
        .add(averageAlpha(sim::IndexKind::Lht, workload::Distribution::Gaussian, n, 40, repeats))
        .add(averageAlpha(sim::IndexKind::Lht, workload::Distribution::Gaussian, n, 160, repeats))
        .add(0.5 + 0.5 / 40.0)
        .add(0.5 + 0.5 / 160.0);
  }

  // Fig. 6b: alpha vs theta at fixed data size 2^maxpow.
  common::Table b({"theta_split", "uniform", "gaussian", "closed_form"});
  for (common::u32 theta : {25u, 50u, 100u, 200u, 400u}) {
    const size_t n = size_t{1} << maxPow;
    b.row()
        .add(static_cast<common::i64>(theta))
        .add(averageAlpha(sim::IndexKind::Lht, workload::Distribution::Uniform, n, theta, repeats))
        .add(averageAlpha(sim::IndexKind::Lht, workload::Distribution::Gaussian, n, theta, repeats))
        .add(0.5 + 0.5 / theta);
  }

  if (flags.getBool("csv")) {
    a.printCsv(std::cout);
    std::cout << "\n";
    b.printCsv(std::cout);
  } else {
    a.printPretty(std::cout, "Fig. 6a: average alpha vs data size");
    std::cout << "\n";
    b.printPretty(std::cout, "Fig. 6b: average alpha vs theta_split (n = 2^" +
                                 std::to_string(maxPow) + ")");
  }
  return 0;
}
