// Reproduces Fig. 8 (paper Sec. 9.3): average DHT-lookups per LHT lookup
// operation vs data size, D = 20, LHT vs PHT, uniform (8a) and gaussian (8b).
//
// Paper claims: both curves fluctuate with "valley points" where the tree
// depth hits a binary-search sweet spot (e.g. uniform data size 2^12 ->
// 2 lookups, 2^16 -> 3, 2^20 -> 1 for PHT-style search over D=20);
// LHT averages ~20% below PHT on uniform data and ~30% on gaussian.
#include <iostream>

#include "common/csv.h"
#include "common/flags.h"
#include "sim/experiment.h"

using namespace lht;

namespace {

double avgLookupCost(sim::IndexKind kind, workload::Distribution dist, size_t n,
                     common::u32 depth, size_t queries, int repeats) {
  double sum = 0.0;
  for (int rep = 0; rep < repeats; ++rep) {
    sim::ExperimentConfig cfg;
    cfg.kind = kind;
    cfg.dist = dist;
    cfg.dataSize = n;
    cfg.theta = 100;  // the paper's default
    cfg.maxDepth = depth;
    cfg.seed = static_cast<common::u64>(rep + 1);
    sim::Experiment exp(cfg);
    exp.build();
    sum += exp.measureLookups(queries).dhtLookups;
  }
  return sum / repeats;
}

}  // namespace

int main(int argc, char** argv) {
  common::Flags flags("fig8_lookup", "Fig. 8: lookup performance, D=20");
  flags.define("repeats", "3", "independent datasets per point");
  flags.define("queries", "1000", "lookups per dataset (paper: 1000)");
  flags.define("depth", "20", "a-priori maximum depth D (paper: 20)");
  flags.define("minpow", "10", "smallest data size = 2^minpow");
  flags.define("maxpow", "16", "largest data size = 2^maxpow");
  flags.define("csv", "false", "emit CSV instead of a pretty table");
  if (!flags.parse(argc, argv)) return 1;
  const int repeats = static_cast<int>(flags.getInt("repeats"));
  const auto queries = static_cast<size_t>(flags.getInt("queries"));
  const auto depth = static_cast<common::u32>(flags.getInt("depth"));

  for (auto dist : {workload::Distribution::Uniform, workload::Distribution::Gaussian}) {
    common::Table t({"data_size", "lht", "pht", "saving"});
    for (int p = static_cast<int>(flags.getInt("minpow"));
         p <= static_cast<int>(flags.getInt("maxpow")); ++p) {
      const size_t n = size_t{1} << p;
      const double lht =
          avgLookupCost(sim::IndexKind::Lht, dist, n, depth, queries, repeats);
      const double pht = avgLookupCost(sim::IndexKind::PhtSequential, dist, n,
                                       depth, queries, repeats);
      t.row()
          .add(static_cast<common::i64>(n))
          .add(lht)
          .add(pht)
          .add(pht > 0 ? 1.0 - lht / pht : 0.0);
    }
    const std::string title = "Fig. 8 (" + workload::distributionName(dist) +
                              "): avg DHT-lookups per lookup, D=" +
                              std::to_string(depth);
    if (flags.getBool("csv")) {
      t.printCsv(std::cout);
    } else {
      t.printPretty(std::cout, title);
    }
    std::cout << "\n";
  }
  std::cout << "paper claim: LHT ~log2(D/2), PHT ~log2(D); saving ~20% "
               "(uniform) / ~30% (gaussian), with valley points at data sizes "
               "2^12 and 2^16\n";
  return 0;
}
