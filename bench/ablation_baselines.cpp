// The full design-space ablation behind the paper's Sec. 2 positioning:
// all four over-DHT index designs on the identical workload.
//
//   LHT  — one-lookup splits (Thm. 2), log(D/2) lookups, B+3 ranges
//   PHT  — re-keyed splits + B+ links, log(D) lookups, near-optimal ranges
//   DST  — records replicated on all ancestors: 1-step ranges, D-cost inserts
//   RST  — structure replicated on all peers: 1-hop everything, but every
//          split broadcasts to N peers ("extremely high bandwidth cost")
//
// RST is additionally swept over the network size to expose the
// scalability cliff the paper calls out.
#include <iostream>

#include "common/csv.h"
#include "common/flags.h"
#include "sim/experiment.h"

using namespace lht;

namespace {

struct Row {
  std::string name;
  sim::IndexKind kind;
  size_t rstPeers = 0;
};

}  // namespace

int main(int argc, char** argv) {
  common::Flags flags("ablation_baselines",
                      "LHT vs PHT vs DST vs RST on one workload");
  flags.define("datasize", "8192", "records inserted");
  flags.define("queries", "100", "queries measured per type");
  flags.define("span", "0.1", "range span");
  flags.define("csv", "false", "emit CSV instead of a pretty table");
  if (!flags.parse(argc, argv)) return 1;
  const auto n = static_cast<size_t>(flags.getInt("datasize"));
  const auto queries = static_cast<size_t>(flags.getInt("queries"));
  const double span = flags.getDouble("span");

  const Row rows[] = {
      {"LHT", sim::IndexKind::Lht, 0},
      {"PHT(seq)", sim::IndexKind::PhtSequential, 0},
      {"PHT(par)", sim::IndexKind::PhtParallel, 0},
      {"DST", sim::IndexKind::Dst, 0},
      {"RST N=32", sim::IndexKind::Rst, 32},
      {"RST N=256", sim::IndexKind::Rst, 256},
      {"RST N=2048", sim::IndexKind::Rst, 2048},
  };

  common::Table t({"index", "insert_lookups_per_rec", "maint_lookups",
                   "maint_moved", "find_lookups", "range_lookups",
                   "range_steps"});
  for (const Row& row : rows) {
    sim::ExperimentConfig cfg;
    cfg.kind = row.kind;
    cfg.dataSize = n;
    cfg.theta = 100;
    cfg.maxDepth = 16;
    if (row.rstPeers != 0) cfg.rstPeerCount = row.rstPeers;
    sim::Experiment exp(cfg);
    exp.build();
    const auto& m = exp.meters();
    auto finds = exp.measureLookups(queries);
    auto ranges = exp.measureRanges(span, queries);
    t.row()
        .add(row.name)
        .add(static_cast<double>(m.insertion.dhtLookups) / static_cast<double>(n))
        .add(static_cast<common::i64>(m.maintenance.dhtLookups))
        .add(static_cast<common::i64>(m.maintenance.recordsMoved))
        .add(finds.dhtLookups)
        .add(ranges.dhtLookups)
        .add(ranges.parallelSteps);
  }
  if (flags.getBool("csv")) {
    t.printCsv(std::cout);
  } else {
    t.printPretty(std::cout, "Design-space ablation (n=" + std::to_string(n) +
                                 ", theta=100, span=" + flags.getString("span") +
                                 ")");
  }
  std::cout << "\nexpected: RST/DST win the query columns but lose maintenance "
               "badly — RST's maintenance grows linearly with network size "
               "while LHT's is constant; LHT is the only design cheap on "
               "every column\n";
  return 0;
}
