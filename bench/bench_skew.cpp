// Emits BENCH_PR8.json: hot-leaf read load balance under zipfian skew
// (DESIGN.md §13).
//
// Runs the skew campaign twice over the same seeds and traces — once with
// lease-based replicated reads + access-adaptive splits ON, once with both
// OFF (same ring, same replication, same leaf cache) — and reports the
// per-peer served-read load summaries (max / mean / p99 / imbalance) plus
// the lease-protocol accounting.
//
// Gates (checked here and by scripts/diff_bench.py):
//   * imbalance improvement off.max_over_mean_avg / on.max_over_mean_avg
//     >= 3.0 — the balancing features must flatten the hot-leaf bottleneck
//     by at least 3x, not marginally.
//   * Both runs verify every seed against the oracle with zero failed ops
//     (report.ok()), and the ON run actually served lease reads.
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/flags.h"
#include "sim/skew_campaign.h"

using lht::common::u64;
using lht::sim::SkewCampaignConfig;
using lht::sim::SkewReport;

namespace {

void emitSide(std::ostringstream& os, const char* name,
              const SkewReport& rep) {
  os << "  \"" << name << "\": {\n"
     << "    \"ops_total\": " << rep.opsTotal << ",\n"
     << "    \"ops_failed\": " << rep.opsFailed << ",\n"
     << "    \"reads_total\": " << rep.readsTotal << ",\n"
     << "    \"node_reads_max_sum\": " << rep.readsMaxSum << ",\n"
     << "    \"max_over_mean_avg\": " << rep.maxOverMeanAvg << ",\n"
     << "    \"max_over_mean_worst\": " << rep.maxOverMeanWorst << ",\n"
     << "    \"node_reads_p99_avg\": " << rep.p99Avg << ",\n"
     << "    \"effective_parallelism\": " << rep.effectiveParallelism << ",\n"
     << "    \"lease_grants\": " << rep.leaseGrants << ",\n"
     << "    \"lease_reads\": " << rep.leaseReads << ",\n"
     << "    \"lease_stale\": " << rep.leaseStale << ",\n"
     << "    \"lease_expired\": " << rep.leaseExpired << ",\n"
     << "    \"lease_drops\": " << rep.leaseDrops << ",\n"
     << "    \"splits\": " << rep.splits << ",\n"
     << "    \"oracle_ok\": " << (rep.ok() ? "true" : "false") << "\n"
     << "  }";
}

}  // namespace

int main(int argc, char** argv) {
  lht::common::Flags flags(
      "bench_skew",
      "Emits BENCH_PR8.json: per-peer read-load balance under zipfian skew "
      "with leased reads + adaptive splits on vs off");
  flags.define("seeds", "8", "independent runs per configuration");
  flags.define("base-seed", "1", "first seed");
  flags.define("ops", "4000", "trace length per seed");
  flags.define("out", "BENCH_PR8.json", "output path");
  if (!flags.parse(argc, argv)) return 1;

  SkewCampaignConfig cfg;  // defaults: 16 peers, replication 4, zipf 0.99
  cfg.seeds = static_cast<size_t>(flags.getInt("seeds"));
  cfg.baseSeed = static_cast<u64>(flags.getInt("base-seed"));
  cfg.opsPerSeed = static_cast<size_t>(flags.getInt("ops"));

  cfg.leasedReads = true;
  cfg.adaptiveSplits = true;
  const SkewReport on = runSkewCampaign(cfg);

  cfg.leasedReads = false;
  cfg.adaptiveSplits = false;
  const SkewReport off = runSkewCampaign(cfg);

  const double floor = 3.0;
  const double improvement =
      on.maxOverMeanAvg > 0.0 ? off.maxOverMeanAvg / on.maxOverMeanAvg : 0.0;
  const bool gateImprove = improvement >= floor;
  const bool gateOn = on.ok() && on.leaseReads > 0;
  const bool gateOff = off.ok() && off.leaseReads == 0;

  std::ostringstream os;
  os.precision(6);
  os << "{\n"
     << "  \"bench\": \"lht_skew\",\n"
     << "  \"config\": {\"seeds\": " << cfg.seeds
     << ", \"base_seed\": " << cfg.baseSeed << ", \"peers\": " << cfg.peers
     << ", \"replication\": " << cfg.replication
     << ", \"theta_split\": " << cfg.thetaSplit
     << ", \"zipf_s\": " << cfg.skew.s
     << ", \"universe\": " << cfg.skew.universe
     << ", \"ops_per_seed\": " << cfg.opsPerSeed
     << ", \"clients\": " << cfg.clients
     << ", \"find_weight\": " << cfg.mix.find
     << ", \"insert_weight\": " << cfg.mix.insert
     << ", \"lease_ttl_ms\": " << cfg.leaseTtlMs
     << ", \"hot_leaf_reads\": " << cfg.hotLeafReads
     << ", \"hot_split_divisor\": " << cfg.hotSplitDivisor << "},\n";
  emitSide(os, "balanced_on", on);
  os << ",\n";
  emitSide(os, "balanced_off", off);
  os << ",\n"
     << "  \"gates\": {\n"
     << "    \"improvement_floor\": " << floor << ",\n"
     << "    \"imbalance_improvement\": " << improvement << ",\n"
     << "    \"improvement_meets_floor\": " << (gateImprove ? "true" : "false")
     << ",\n"
     << "    \"on_ok\": " << (gateOn ? "true" : "false") << ",\n"
     << "    \"off_ok\": " << (gateOff ? "true" : "false") << "\n"
     << "  }\n}\n";

  const std::string outPath = flags.getString("out");
  std::ofstream out(outPath);
  if (!out) {
    std::cerr << "bench_skew: cannot write " << outPath << "\n";
    return 1;
  }
  out << os.str();
  std::cout << os.str();

  for (const auto& f : on.failures) std::cerr << "ON:  " << f << "\n";
  for (const auto& f : off.failures) std::cerr << "OFF: " << f << "\n";
  if (!gateImprove || !gateOn || !gateOff) {
    std::cerr << "bench_skew: GATE FAILURE (improvement=" << improvement
              << " floor=" << floor << ", on_ok=" << (gateOn ? "true" : "false")
              << ", off_ok=" << (gateOff ? "true" : "false") << ")\n";
    return 1;
  }
  return 0;
}
