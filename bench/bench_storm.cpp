// Emits BENCH_PR6.json: churn-storm survival (DESIGN.md §12).
//
// Runs the storm campaign twice over the same seeds — once with replica
// failover + hedged reads ON, once with both OFF (the baseline decorator
// stack is otherwise identical) — and reports mid-storm query
// availability, failover/hedging traffic, and anti-entropy convergence.
//
// Gates (checked here and by scripts/diff_bench.py):
//   * ON availability >= 0.99 (the floor; the run actually reaches 1.0
//     deterministically: crash spacing + replication guarantee a live
//     holder for every read).
//   * OFF availability strictly below ON — the feature must be measurably
//     load-bearing, not vacuously green.
//   * Both runs repair to zero replica deficit after every wave with zero
//     lost keys (report.ok()).
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/flags.h"
#include "sim/storm_campaign.h"

using lht::common::u64;
using lht::sim::StormConfig;
using lht::sim::StormReport;

namespace {

void emitSide(std::ostringstream& os, const char* name,
              const StormReport& rep) {
  os << "  \"" << name << "\": {\n"
     << "    \"availability\": " << rep.availability << ",\n"
     << "    \"ops_total\": " << rep.opsTotal << ",\n"
     << "    \"ops_failed\": " << rep.opsFailed << ",\n"
     << "    \"failover_attempts\": " << rep.failoverAttempts << ",\n"
     << "    \"rescues\": " << rep.rescues << ",\n"
     << "    \"hedges_fired\": " << rep.hedgesFired << ",\n"
     << "    \"hedge_wins\": " << rep.hedgeWins << ",\n"
     << "    \"waves\": " << rep.waves << ",\n"
     << "    \"crashes_applied\": " << rep.crashesApplied << ",\n"
     << "    \"repair_ticks_total\": " << rep.repairTicks << ",\n"
     << "    \"repair_ticks_worst_wave\": " << rep.maxTicksToConverge << ",\n"
     << "    \"dht_repair_actions\": " << rep.dhtRepairActions << ",\n"
     << "    \"index_repairs\": " << rep.indexRepairs << ",\n"
     << "    \"lost_keys\": " << rep.lostKeys << ",\n"
     << "    \"converged_every_wave\": " << (rep.ok() ? "true" : "false")
     << "\n"
     << "  }";
}

}  // namespace

int main(int argc, char** argv) {
  lht::common::Flags flags(
      "bench_storm",
      "Emits BENCH_PR6.json: mid-storm query availability with replica "
      "failover + hedged reads on vs off, plus anti-entropy convergence");
  flags.define("seeds", "16", "independent storms per configuration");
  flags.define("base-seed", "1", "first seed");
  flags.define("waves", "3", "churn-storm waves per seed");
  flags.define("out", "BENCH_PR6.json", "output path");
  if (!flags.parse(argc, argv)) return 1;

  StormConfig cfg;  // defaults: 24 peers, replication 3, 160 keys
  cfg.seeds = static_cast<size_t>(flags.getInt("seeds"));
  cfg.baseSeed = static_cast<u64>(flags.getInt("base-seed"));
  cfg.waves = static_cast<size_t>(flags.getInt("waves"));

  cfg.failover = true;
  cfg.hedging = true;
  const StormReport on = runStormCampaign(cfg);

  cfg.failover = false;
  cfg.hedging = false;
  const StormReport off = runStormCampaign(cfg);

  const double floor = 0.99;
  const bool gateOn = on.availability >= floor && on.ok();
  const bool gateOff = off.availability < on.availability && off.ok();

  std::ostringstream os;
  os.precision(6);
  os << "{\n"
     << "  \"bench\": \"lht_churn_storm\",\n"
     << "  \"config\": {\"seeds\": " << cfg.seeds
     << ", \"base_seed\": " << cfg.baseSeed << ", \"peers\": " << cfg.peers
     << ", \"replication\": " << cfg.replication
     << ", \"keys\": " << cfg.keys << ", \"waves\": " << cfg.waves
     << ", \"wave_joins\": " << cfg.wave.joins
     << ", \"wave_leaves\": " << cfg.wave.leaves
     << ", \"wave_crashes\": " << cfg.wave.crashes
     << ", \"queries_per_wave\": " << cfg.queriesPerWave
     << ", \"clients\": " << cfg.clients << "},\n";
  emitSide(os, "failover_on", on);
  os << ",\n";
  emitSide(os, "failover_off", off);
  os << ",\n"
     << "  \"gates\": {\n"
     << "    \"availability_floor\": " << floor << ",\n"
     << "    \"on_meets_floor\": " << (gateOn ? "true" : "false") << ",\n"
     << "    \"off_measurably_worse\": " << (gateOff ? "true" : "false")
     << "\n"
     << "  }\n}\n";

  const std::string outPath = flags.getString("out");
  std::ofstream out(outPath);
  if (!out) {
    std::cerr << "bench_storm: cannot write " << outPath << "\n";
    return 1;
  }
  out << os.str();
  std::cout << os.str();

  for (const auto& f : on.failures) std::cerr << "ON:  " << f << "\n";
  for (const auto& f : off.failures) std::cerr << "OFF: " << f << "\n";
  if (!gateOn || !gateOff) {
    std::cerr << "bench_storm: GATE FAILURE (on_meets_floor="
              << (gateOn ? "true" : "false") << ", off_measurably_worse="
              << (gateOff ? "true" : "false") << ")\n";
    return 1;
  }
  return 0;
}
