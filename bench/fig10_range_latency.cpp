// Reproduces Fig. 10 (paper Sec. 9.4): range-query latency measured in
// *paralleled DHT-lookup steps* (the longest dependent lookup chain), for
// LHT, PHT(sequential) and PHT(parallel).
//
//  Fig. 10a: vs data size at a fixed span (uniform and gaussian).
//  Fig. 10b: vs range span at a fixed data size.
//
// Paper claims: PHT(sequential) is an order of magnitude slower (the axis
// breaks in the figure); LHT is the fastest, ~18% below PHT(parallel),
// whose latency deteriorates on skewed (gaussian) data.
//
// --trace=PATH additionally records one LHT build + range-query run (at the
// span-sweep data size) with the causal op tracer installed and writes it as
// Chrome trace-event JSON — load in chrome://tracing or ui.perfetto.dev to
// see the fan-out rounds under each rangeQuery span.
#include <fstream>
#include <iostream>

#include "common/csv.h"
#include "common/flags.h"
#include "obs/obs.h"
#include "sim/experiment.h"

using namespace lht;

namespace {

bool gBatched = false;  ///< --batched: LHT issues fan-out rounds as multiGet

double avgRangeSteps(sim::IndexKind kind, workload::Distribution dist, size_t n,
                     double span, size_t queries, int repeats) {
  double sum = 0.0;
  for (int rep = 0; rep < repeats; ++rep) {
    sim::ExperimentConfig cfg;
    cfg.kind = kind;
    cfg.dist = dist;
    cfg.dataSize = n;
    cfg.theta = 100;
    cfg.maxDepth = 24;
    cfg.lhtBatchFanout = gBatched;
    cfg.seed = static_cast<common::u64>(rep + 1);
    sim::Experiment exp(cfg);
    exp.build();
    sum += exp.measureRanges(span, queries).parallelSteps;
  }
  return sum / repeats;
}

}  // namespace

int main(int argc, char** argv) {
  common::Flags flags("fig10_range_latency", "Fig. 10: range-query latency");
  flags.define("repeats", "3", "independent datasets per point");
  flags.define("queries", "100", "range queries per dataset");
  flags.define("span", "0.1", "fixed span for the data-size sweep");
  flags.define("minpow", "10", "smallest data size = 2^minpow");
  flags.define("maxpow", "15", "largest data size = 2^maxpow");
  flags.define("sizepow", "14", "fixed data size = 2^sizepow for the span sweep");
  flags.define("csv", "false", "emit CSV instead of a pretty table");
  flags.define("batched", "false",
               "issue LHT fan-out rounds as one multiGet per BFS level "
               "(same DHT-lookup totals; parallelSteps = rounds)");
  flags.define("trace", "",
               "write a Chrome trace-event JSON of one traced LHT run to "
               "this path (empty = off)");
  if (!flags.parse(argc, argv)) return 1;
  gBatched = flags.getBool("batched");
  const int repeats = static_cast<int>(flags.getInt("repeats"));
  const auto queries = static_cast<size_t>(flags.getInt("queries"));
  const double span = flags.getDouble("span");

  const std::string tracePath = flags.getString("trace");
  if (!tracePath.empty()) {
    obs::MetricsRegistry reg;
    obs::Tracer tracer;
    {
      obs::ScopedObservability install(&reg, &tracer);
      sim::ExperimentConfig cfg;
      cfg.kind = sim::IndexKind::Lht;
      cfg.dist = workload::Distribution::Uniform;
      cfg.dataSize = size_t{1} << flags.getInt("sizepow");
      cfg.theta = 100;
      cfg.maxDepth = 24;
      cfg.lhtBatchFanout = gBatched;
      cfg.seed = 1;
      sim::Experiment exp(cfg);
      exp.build();
      exp.measureRanges(span, queries);
    }
    std::ofstream tf(tracePath);
    if (!tf) {
      std::cerr << "fig10_range_latency: cannot write " << tracePath << "\n";
      return 1;
    }
    tracer.writeChromeTrace(tf);
    std::cout << "wrote " << tracePath << " (" << tracer.spans().size()
              << " spans; load in chrome://tracing or ui.perfetto.dev)\n\n";
  }

  for (auto dist : {workload::Distribution::Uniform, workload::Distribution::Gaussian}) {
    common::Table a({"data_size", "lht", "pht_seq", "pht_par", "lht_vs_par"});
    for (int p = static_cast<int>(flags.getInt("minpow"));
         p <= static_cast<int>(flags.getInt("maxpow")); ++p) {
      const size_t n = size_t{1} << p;
      const double lht = avgRangeSteps(sim::IndexKind::Lht, dist, n, span, queries, repeats);
      const double seq = avgRangeSteps(sim::IndexKind::PhtSequential, dist, n, span, queries, repeats);
      const double par = avgRangeSteps(sim::IndexKind::PhtParallel, dist, n, span, queries, repeats);
      a.row()
          .add(static_cast<common::i64>(n))
          .add(lht)
          .add(seq)
          .add(par)
          .add(par > 0 ? 1.0 - lht / par : 0.0);
    }
    if (flags.getBool("csv")) {
      a.printCsv(std::cout);
    } else {
      a.printPretty(std::cout, "Fig. 10a (" + workload::distributionName(dist) +
                                   "): parallel steps per range query, span=" +
                                   flags.getString("span"));
    }
    std::cout << "\n";
  }

  common::Table b({"span", "lht", "pht_seq", "pht_par"});
  const size_t fixedN = size_t{1} << flags.getInt("sizepow");
  for (double s : {0.015625, 0.03125, 0.0625, 0.125, 0.25, 0.5}) {
    b.row()
        .add(s)
        .add(avgRangeSteps(sim::IndexKind::Lht, workload::Distribution::Uniform, fixedN, s, queries, repeats))
        .add(avgRangeSteps(sim::IndexKind::PhtSequential, workload::Distribution::Uniform, fixedN, s, queries, repeats))
        .add(avgRangeSteps(sim::IndexKind::PhtParallel, workload::Distribution::Uniform, fixedN, s, queries, repeats));
  }
  if (flags.getBool("csv")) {
    b.printCsv(std::cout);
  } else {
    b.printPretty(std::cout, "Fig. 10b (uniform): parallel steps vs span, n=2^" +
                                 flags.getString("sizepow"));
  }
  std::cout << "\npaper claim: pht_seq ~10x worse; lht fastest (~18% below "
               "pht_par), pht_par degrades on gaussian data\n";
  return 0;
}
